#!/usr/bin/env python3
"""Quickstart: find undetectable DFM fault clusters and resynthesize
them away.

Builds one benchmark circuit, runs the full design flow (placement,
routing, DFM guideline checking, exact ATPG, clustering), then applies
the paper's two-phase resynthesis procedure and prints before/after
metrics.

Run:  python3 examples/quickstart.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro.bench import BENCHMARKS, build_benchmark
from repro.core import (
    ResynthesisConfig,
    resynthesize_for_coverage,
)
from repro.library import osu018_library
from repro.utils import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sparc_tlu"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; try: {sorted(BENCHMARKS)}")

    library = osu018_library()
    print(f"Building benchmark '{name}' on the {len(library)}-cell library...")
    circuit = build_benchmark(name, library)
    print(f"  {len(circuit)} gates, {len(circuit.inputs)} inputs, "
          f"{len(circuit.outputs)} outputs")

    config = ResynthesisConfig(q_max=3, max_iterations_per_phase=8)
    print("Running the two-phase resynthesis procedure (q = 0..3)...")
    result = resynthesize_for_coverage(circuit, library, config)

    orig, final = result.original, result.final
    rows = [
        ["faults F", orig.n_faults, final.n_faults],
        ["undetectable U", orig.u_total, final.u_total],
        ["coverage %", f"{100 * orig.coverage:.2f}",
         f"{100 * final.coverage:.2f}"],
        ["largest cluster S_max", orig.smax_size, final.smax_size],
        ["%Smax_all", f"{100 * orig.smax_fraction_of_f:.2f}",
         f"{100 * final.smax_fraction_of_f:.2f}"],
        ["tests T", len(orig.tests), len(final.tests)],
        ["delay (rel.)", "100.0%",
         f"{100 * final.delay / orig.delay:.1f}%"],
        ["power (rel.)", "100.0%",
         f"{100 * final.power / orig.power:.1f}%"],
    ]
    print()
    print(format_table(["metric", "original", "resynthesized"], rows,
                       title=f"{name}: q used = {result.q_used}%"))
    print(f"\naccepted iterations: "
          f"{sum(1 for h in result.history if 'accepted' in h.status)}"
          f" of {len(result.history)}; relative runtime "
          f"{result.relative_runtime:.1f}x one flow iteration")


if __name__ == "__main__":
    main()
