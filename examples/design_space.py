#!/usr/bin/env python3
"""Design-space exploration: coverage vs. the delay/power budget q.

The paper sweeps the maximum acceptable increase in delay and power from
q = 0% to q = 5%, applying the resynthesis procedure at each step on top
of the previous solution.  This example reports the whole trade-off
curve for one circuit: how much coverage each extra percent of budget
buys, and what the layout actually pays.

Run:  python3 examples/design_space.py [benchmark-name] [q_max]
"""

from __future__ import annotations

import sys

from repro.bench import BENCHMARKS, build_benchmark
from repro.core import ResynthesisConfig, resynthesize_for_coverage
from repro.library import osu018_library
from repro.utils import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sparc_lsu"
    q_max = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; try: {sorted(BENCHMARKS)}")
    library = osu018_library()
    circuit = build_benchmark(name, library)
    print(f"Sweeping q = 0..{q_max} on '{name}' ({len(circuit)} gates)...")
    result = resynthesize_for_coverage(
        circuit, library,
        ResynthesisConfig(q_max=q_max, max_iterations_per_phase=8),
    )
    orig = result.original
    rows = [[
        "orig", orig.n_faults, orig.u_total,
        f"{100 * orig.coverage:.2f}", orig.smax_size, "100.0", "100.0",
    ]]
    for q in sorted(result.per_q):
        st = result.per_q[q]
        rows.append([
            f"q={q}%", st.n_faults, st.u_total,
            f"{100 * st.coverage:.2f}", st.smax_size,
            f"{100 * st.delay / orig.delay:.1f}",
            f"{100 * st.power / orig.power:.1f}",
        ])
    print()
    print(format_table(
        ["budget", "F", "U", "Cov%", "Smax", "Delay%", "Power%"], rows,
        title="coverage vs. delay/power budget",
    ))
    print(f"\nsmallest budget reaching final coverage: q = {result.q_used}%")


if __name__ == "__main__":
    main()
