#!/usr/bin/env python3
"""Working with custom standard cells and their DFM defect models.

Shows the switch-level machinery that underpins the cell-aware (UDFM)
faults: define a cell from its transistor-level pull-down network,
derive its truth table, enumerate its DFM-flagged internal defects, and
extract the UDFM detection patterns — then compare the internal fault
population across the shipped OSU-like library.

Run:  python3 examples/custom_library.py
"""

from __future__ import annotations

from repro.library import (
    StandardCell,
    SwitchNetwork,
    Stage,
    extract_udfm,
    lit,
    osu018_library,
    par,
    ser,
)
from repro.utils import format_table


def main() -> None:
    # --- define a custom AOI31 cell from its transistor netlist --------
    # Y = NOT((A AND B AND C) OR D): PDN = (A*B*C) + D, PUN is the dual.
    network = SwitchNetwork(
        inputs=("A", "B", "C", "D"),
        stages=(Stage("Y", par(ser(lit("A"), lit("B"), lit("C")),
                               lit("D"))),),
    )
    aoi31 = StandardCell(
        name="AOI31X1",
        input_pins=("A", "B", "C", "D"),
        output_pin="Y",
        network=network,
        area=18.0, input_cap=2.0, drive_res=2.9,
        intrinsic_delay=50.0, leakage=2.5,
        drive=1, flag_rate=62,
    )
    print(f"custom cell {aoi31.name}: tt=0x{aoi31.tt:04x}, "
          f"{network.transistor_count()} transistors, "
          f"{aoi31.internal_fault_count} DFM-flagged internal defects")

    udfm = extract_udfm(aoi31)
    static = [e for e in udfm if e.kind == "static"][:4]
    print("\nfirst UDFM entries (cell input pattern -> faulty output):")
    for e in static:
        pattern = "".join(str(b) for b in e.test_pattern)
        print(f"  {e.defect_id:22s} ABCD={pattern}  good={e.good_output} "
              f"faulty={e.faulty_output}")

    # --- the shipped library's internal fault ordering ------------------
    library = osu018_library()
    rows = []
    for cell in library.order_by_internal_faults():
        defects = cell.internal_defects()
        dynamic = sum(1 for d in defects if d.kind == "dynamic")
        rows.append([
            cell.name, cell.n_inputs,
            cell.network.transistor_count(),
            cell.internal_fault_count, dynamic, f"{cell.area:.0f}",
        ])
    print()
    print(format_table(
        ["cell", "inputs", "transistors", "int.faults", "dynamic", "area"],
        rows,
        title="library cells ordered by internal DFM faults "
              "(the paper's cell_0 .. cell_m-1)",
    ))
    print("\nThe resynthesis procedure excludes a growing prefix of this "
          "list:\ncells at the top are avoided first, the nearly-clean "
          "cells at the bottom\nalways remain available.")


if __name__ == "__main__":
    main()
