#!/usr/bin/env python3
"""Cluster analysis (Section II of the paper): where do undetectable
DFM faults sit, and how strongly do they cluster?

Runs the design flow on a benchmark, prints the Table-I style row, the
cluster size distribution, and an ASCII die map marking the gates that
correspond to undetectable faults (G_U) and the largest cluster (G_max).

Run:  python3 examples/cluster_analysis.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro.bench import BENCHMARKS, build_benchmark
from repro.core import analyze_design, table1_row
from repro.library import osu018_library
from repro.utils import format_table


def die_map(state) -> str:
    """ASCII map of the die: '#' = G_max gate, 'u' = other G_U gate,
    '.' = clean gate, ' ' = empty sites."""
    layout = state.physical.layout
    gmax = state.clusters.gmax
    gu = state.clusters.gates_u
    rows = []
    for y in range(layout.die_rows):
        line = [" "] * layout.die_width
        for gate in layout.gates.values():
            if gate.y != y:
                continue
            mark = "."
            if gate.name in gmax:
                mark = "#"
            elif gate.name in gu:
                mark = "u"
            for x in range(gate.x, min(gate.x + gate.width,
                                       layout.die_width)):
                line[x] = mark
        rows.append("".join(line).rstrip())
    return "\n".join(rows)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sparc_lsu"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; try: {sorted(BENCHMARKS)}")
    library = osu018_library()
    circuit = build_benchmark(name, library)
    print(f"Analyzing '{name}' ({len(circuit)} gates)...")
    state = analyze_design(circuit, library)

    row = table1_row(name, state)
    print()
    print(format_table(list(row.keys()), [list(row.values())],
                       title="Table I row (clustered undetectable faults)"))

    sizes = state.clusters.sizes()
    print(f"\ncluster size distribution ({len(sizes)} clusters): "
          f"{sizes[:12]}{'...' if len(sizes) > 12 else ''}")
    if state.u_total:
        share = 100.0 * state.smax_size / state.u_total
        print(f"S_max holds {share:.1f}% of all undetectable faults")

    print("\nDie map ('#' = G_max, 'u' = other gates with undetectable "
          "faults, '.' = clean):\n")
    print(die_map(state))


if __name__ == "__main__":
    main()
