"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper.  The
expensive computations (full design flow + exact ATPG + resynthesis) are
cached per session so the printed report and the timing measurement use
one computation.

Environment knobs (all optional):

* ``REPRO_BENCH_CIRCUITS`` — comma-separated subset of benchmark names
  for Table I / Table II (default: the paper's full list).
* ``REPRO_QMAX`` — q sweep bound for Table II (default 3; paper uses 5).
* ``REPRO_MAX_ITER`` — per-phase iteration cap (default 6).
* ``REPRO_SCALE`` — benchmark circuit scale factor (default 1).
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.bench import build_benchmark
from repro.core import (
    DesignState,
    ResynthesisConfig,
    ResynthesisResult,
    analyze_design,
    resynthesize_for_coverage,
)
from repro.library import Library, osu018_library

_ANALYSES: Dict[str, DesignState] = {}
_RESYNTHESES: Dict[str, ResynthesisResult] = {}
_LIBRARY: Library | None = None


def get_library() -> Library:
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = osu018_library()
    return _LIBRARY


def bench_scale() -> int:
    return int(os.environ.get("REPRO_SCALE", "1"))


def bench_circuits(default: list) -> list:
    raw = os.environ.get("REPRO_BENCH_CIRCUITS")
    if not raw:
        return default
    return [name.strip() for name in raw.split(",") if name.strip()]


def get_analysis(name: str) -> DesignState:
    """Design-flow analysis of one benchmark (cached)."""
    if name not in _ANALYSES:
        library = get_library()
        circuit = build_benchmark(name, library, scale=bench_scale())
        _ANALYSES[name] = analyze_design(circuit, library)
    return _ANALYSES[name]


def get_resynthesis(name: str) -> ResynthesisResult:
    """Full two-phase resynthesis of one benchmark (cached)."""
    if name not in _RESYNTHESES:
        library = get_library()
        circuit = build_benchmark(name, library, scale=bench_scale())
        config = ResynthesisConfig(
            q_max=int(os.environ.get("REPRO_QMAX", "3")),
            max_iterations_per_phase=int(
                os.environ.get("REPRO_MAX_ITER", "6")
            ),
        )
        result = resynthesize_for_coverage(circuit, library, config)
        _RESYNTHESES[name] = result
        # Reuse the original-design analysis for Table I as well.
        _ANALYSES.setdefault(name, result.original)
    return _RESYNTHESES[name]


@pytest.fixture(scope="session")
def library():
    return get_library()


# ----------------------------------------------------------------------
# Report collection: benchmark tables are printed inside tests (captured
# by pytest) *and* echoed in the terminal summary + written to
# benchmarks/results/, so `pytest benchmarks/ --benchmark-only | tee ...`
# preserves them.
# ----------------------------------------------------------------------
_REPORTS: list = []


def emit_report(name: str, text: str) -> None:
    """Print a report table and remember it for the session summary."""
    print()
    print(text)
    _REPORTS.append((name, text))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction reports")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
