"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper.  All
expensive computations (full design flow + exact ATPG + resynthesis) are
driven through the experiment orchestrator (:mod:`repro.runner`): every
analysis/resynthesis runs as a journaled task of one per-session run
under ``benchmarks/results/runs/<run_id>/``, so an interrupted benchmark
session leaves a resumable journal behind and the tests can assert on
what was durably recorded, not just on in-memory objects.  Rich result
objects (``DesignState`` / ``ResynthesisResult``) come back via the
runner's in-process store; Table rows come from the journaled payloads.

Environment knobs (all optional):

* ``REPRO_BENCH_CIRCUITS`` — comma-separated subset of benchmark names
  for Table I / Table II (default: the paper's full list).
* ``REPRO_QMAX`` — q sweep bound for Table II (default 3; paper uses 5).
* ``REPRO_MAX_ITER`` — per-phase iteration cap (default 6).
* ``REPRO_SCALE`` — benchmark circuit scale factor (default 1).
* ``REPRO_RUN_ID`` — fixed run id for the orchestrator run (default:
  ``bench-<epoch>-<pid>``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

import pytest

from repro.core import DesignState, ResynthesisResult
from repro.library import Library, osu018_library
from repro.runner import Runner, TaskSpec, read_journal
from repro.runner.model import CampaignSpec

_LIBRARY: Library | None = None
_RUNNER: Runner | None = None

RUNS_ROOT = os.path.join(os.path.dirname(__file__), "results", "runs")


def get_library() -> Library:
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = osu018_library()
    return _LIBRARY


def bench_scale() -> int:
    return int(os.environ.get("REPRO_SCALE", "1"))


def bench_circuits(default: list) -> list:
    raw = os.environ.get("REPRO_BENCH_CIRCUITS")
    if not raw:
        return default
    return [name.strip() for name in raw.split(",") if name.strip()]


# ----------------------------------------------------------------------
# Orchestrated execution: one runner per pytest session
# ----------------------------------------------------------------------

def bench_runner() -> Runner:
    """The session's orchestrator run (created on first use)."""
    global _RUNNER
    if _RUNNER is None:
        run_id = os.environ.get("REPRO_RUN_ID") or (
            f"bench-{int(time.time())}-{os.getpid()}"
        )
        campaign = CampaignSpec(
            run_id=run_id,
            meta={"kind": "pytest-bench", "scale": bench_scale()},
        )
        _RUNNER = Runner(campaign, root=RUNS_ROOT, store={})
    return _RUNNER


def _run_task(task_id: str, kind: str, params: dict):
    runner = bench_runner()
    outcome = runner.outcomes.get(task_id)
    if outcome is None:
        outcome = runner.execute_spec(
            TaskSpec(task_id=task_id, kind=kind, params=params)
        )
    if not outcome.ok:
        raise RuntimeError(f"task {task_id} failed: {outcome.error}")
    return outcome


def _analyze_params(name: str) -> dict:
    return {"circuit": name, "scale": bench_scale(), "variant": "full"}


def _resynthesize_params(name: str) -> dict:
    return {
        **_analyze_params(name),
        "q_max": int(os.environ.get("REPRO_QMAX", "3")),
        "max_iterations_per_phase": int(
            os.environ.get("REPRO_MAX_ITER", "6")
        ),
    }


def get_analysis(name: str) -> DesignState:
    """Design-flow analysis of one benchmark (journaled, cached)."""
    store = bench_runner().store
    key = f"analysis:full:{name}"
    if key not in store:  # a prior resynthesis seeds its original design
        _run_task(f"analyze:full:{name}", "analyze", _analyze_params(name))
    return store[key]


def get_resynthesis(name: str) -> ResynthesisResult:
    """Full two-phase resynthesis of one benchmark (journaled, cached)."""
    store = bench_runner().store
    key = f"resynthesis:full:{name}"
    if key not in store:
        _run_task(
            f"resynthesize:full:{name}", "resynthesize",
            _resynthesize_params(name),
        )
    return store[key]


def get_table1_row(name: str) -> dict:
    """The Table I row the orchestrator journaled for *name*."""
    outcomes = bench_runner().outcomes
    outcome = outcomes.get(f"analyze:full:{name}")
    if outcome is not None and outcome.ok:
        return outcome.payload["row"]
    outcome = outcomes[f"resynthesize:full:{name}"]
    return outcome.payload["original_row"]


def get_table2_rows(name: str) -> List[dict]:
    """The Table II row pair the orchestrator journaled for *name*."""
    return bench_runner().outcomes[f"resynthesize:full:{name}"].payload["rows"]


def journal_payload(task_id: str) -> Optional[dict]:
    """The payload durably recorded in the on-disk journal for a task."""
    runner = bench_runner()
    payload = None
    for event in read_journal(runner.journal_path):
        if (
            event.get("event") == "task_end"
            and event.get("task") == task_id
            and event.get("status") == "ok"
        ):
            payload = event.get("payload")
    return payload


@pytest.fixture(scope="session")
def library():
    return get_library()


# ----------------------------------------------------------------------
# Report collection: benchmark tables are printed inside tests (captured
# by pytest) *and* echoed in the terminal summary + written to
# benchmarks/results/, so `pytest benchmarks/ --benchmark-only | tee ...`
# preserves them.
# ----------------------------------------------------------------------
_REPORTS: list = []


def emit_report(name: str, text: str) -> None:
    """Print a report table and remember it for the session summary."""
    print()
    print(text)
    _REPORTS.append((name, text))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _RUNNER is not None and _RUNNER.outcomes:
        _RUNNER.finalize()
        terminalreporter.section("orchestrator run")
        terminalreporter.write_line(
            f"run {_RUNNER.campaign.run_id}: journal + report under "
            f"{_RUNNER.run_dir}"
        )
        terminalreporter.write_line(
            f"inspect with: python -m repro.runner report "
            f"{_RUNNER.campaign.run_id} --out {RUNS_ROOT}"
        )
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction reports")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
