"""Experiment E2 — Table II: the resynthesis procedure's results.

Regenerates the paper's Table II: for every circuit, one row for the
original design and one for the resynthesized design (columns F, U,
Cov, T, Smax, %Smax_all, Smax_I, %Smax_I, Delay, Power, Rtime), plus
the average row.  The reproduction targets are the paper's *shapes*:

* the number of undetectable faults drops sharply (paper: ~10x average);
* %Smax_all falls to around the p1 = 1% target;
* the internal share of S_max collapses (paper: 88% -> 6% average);
* delay and power stay within (1 + q) of the original design on the
  original floorplan;
* the test set size T stays in the same ballpark.

Set ``REPRO_BENCH_CIRCUITS=sparc_tlu,sparc_lsu`` for a quick run.
"""

from __future__ import annotations

from benchmarks.conftest import (
    bench_circuits,
    get_resynthesis,
    get_table2_rows,
    journal_payload,
)
from repro.core import table2_row
from repro.core.metrics import average_rows
from repro.utils import format_table

TABLE2_CIRCUITS = [
    "tv80", "systemcaes", "aes_core", "wb_conmax", "des_perf",
    "sparc_spu", "sparc_ffu", "sparc_exu", "sparc_ifu", "sparc_tlu",
    "sparc_lsu", "sparc_fpu",
]


def _results():
    return {
        name: get_resynthesis(name)
        for name in bench_circuits(TABLE2_CIRCUITS)
    }


def test_table2_report(benchmark):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    all_rows = []
    orig_rows = []
    resyn_rows = []
    for name in results:
        # The rows the orchestrator journaled for this circuit's task.
        rows = get_table2_rows(name)
        all_rows.extend(rows)
        orig_rows.append(rows[0])
        resyn_rows.append(rows[1])
    avg_orig = average_rows(orig_rows)
    avg_orig["MaxInc"] = "orig"
    avg_resyn = average_rows(resyn_rows)
    avg_resyn["MaxInc"] = "resyn"
    all_rows.extend([avg_orig, avg_resyn])
    header = list(all_rows[0].keys())
    from benchmarks.conftest import emit_report
    emit_report("table2", format_table(
        header, [list(r.values()) for r in all_rows],
        title="TABLE II. EXPERIMENTAL RESULTS",
    ))
    assert avg_resyn["U"] < avg_orig["U"]


def test_undetectable_faults_reduced():
    """U must fall in aggregate and never rise per circuit.

    The paper reports ~10x average reduction; this substrate's guard
    clusters are observation-blocked (cell choice shrinks their fault
    population but cannot make them detectable), so the reproduced
    reduction is smaller — the direction and the per-circuit
    monotonicity guarantee are the asserted shapes (see EXPERIMENTS.md).
    """
    total_before = total_after = 0
    for name, result in _results().items():
        total_before += result.original.u_total
        total_after += result.final.u_total
        assert result.final.u_total <= result.original.u_total, name
    assert total_after < total_before, (total_before, total_after)


def test_coverage_improves_everywhere():
    for name, result in _results().items():
        assert result.final.coverage >= result.original.coverage, name


def test_smax_share_falls():
    """%Smax_all after resynthesis approaches the p1 target."""
    improved = 0
    for name, result in _results().items():
        before = result.original.smax_fraction_of_f
        after = result.final.smax_fraction_of_f
        if after < before:
            improved += 1
    assert improved >= len(_results()) // 2


def test_constraints_hold_on_original_floorplan():
    for name, result in _results().items():
        orig, final = result.original, result.final
        limit = 1.0 + result.q_used / 100.0 + 1e-9
        assert final.physical.floorplan == orig.physical.floorplan, name
        assert final.delay <= orig.delay * limit, name
        assert final.power <= orig.power * limit, name


def test_rows_match_journal_and_recomputation():
    """The on-disk journal recorded exactly the row pairs used for
    Table II, and they agree with a recomputation from the result."""
    for name, result in _results().items():
        payload = journal_payload(f"resynthesize:full:{name}")
        assert payload is not None, name
        assert payload["rows"] == get_table2_rows(name), name
        assert table2_row(name, result) == get_table2_rows(name), name


def test_resynthesized_circuits_equivalent():
    """Functional equivalence of original vs. final (random sampling)."""
    import random

    from benchmarks.conftest import get_library
    from repro.netlist import simulate_patterns

    cells = {c.name: c for c in get_library()}
    rng = random.Random(2024)
    for name, result in _results().items():
        a, b = result.original.circuit, result.final.circuit
        pats = [
            {pi: rng.getrandbits(1) for pi in a.inputs}
            for _ in range(96)
        ]
        r0 = simulate_patterns(a, cells, pats)
        r1 = simulate_patterns(b, cells, pats)
        for x, y in zip(r0, r1):
            for po in a.outputs:
                assert x[po] == y[po], (name, po)
