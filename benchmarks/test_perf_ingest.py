"""Engine throughput on an ingested ≥5k-gate foreign benchmark.

The bundled ``mul32`` array multiplier (ISCAS ``.bench``, ~6k mapped
gates) is ingested end to end — parse, link-check, technology-map,
lint — and then pushed through the two heavy engines:

* wide-backend fault simulation at full batch width, once serial and
  once process-parallel over shared-memory arrays; the detect words
  must agree bit for bit, and the fault-pattern throughput of both
  modes is recorded;
* ``run_atpg`` on a fault sample, once serial and once with
  process-sharded batches; the classification must be identical.

A trajectory point lands in ``benchmarks/results/BENCH_ingest.json``.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_ingest.py -s``

Knobs: ``REPRO_PERF_INGEST_CIRCUIT`` (default ``mul32``),
``REPRO_PERF_INGEST_PATTERNS`` (default 4096),
``REPRO_PERF_INGEST_FAULTS`` (fault-sim sample, default 300),
``REPRO_PERF_INGEST_ATPG_FAULTS`` (ATPG sample, default 48).
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import List

import pytest

from benchmarks.conftest import emit_report, get_library
from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import run_atpg
from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.model import FALL, RISE, StuckAtFault, TransitionFault
from repro.faults.sites import enumerate_internal_faults
from repro.netlist.ingest import bundled_path, ingest_file
from repro.netlist.simulator import CompiledCircuit
from repro.utils.observability import EngineStats

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUIT = os.environ.get("REPRO_PERF_INGEST_CIRCUIT", "mul32")
N_PATTERNS = int(os.environ.get("REPRO_PERF_INGEST_PATTERNS", "4096"))
N_FAULTS = int(os.environ.get("REPRO_PERF_INGEST_FAULTS", "300"))
N_ATPG_FAULTS = int(os.environ.get("REPRO_PERF_INGEST_ATPG_FAULTS", "48"))


def _fault_sample(circuit, library, n: int, seed: int = 2026) -> List:
    rng = random.Random(seed)
    faults = list(enumerate_internal_faults(circuit, library))
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    for net in rng.sample(nets, min(150, len(nets))):
        faults.append(StuckAtFault(f"sa0:{net}", "g", net=net, value=0))
        faults.append(StuckAtFault(f"sa1:{net}", "g", net=net, value=1))
        faults.append(TransitionFault(f"tr:{net}", "g", net=net, slow_to=RISE))
        faults.append(TransitionFault(f"tf:{net}", "g", net=net, slow_to=FALL))
    if len(faults) > n:
        faults = rng.sample(faults, n)
    return faults


def _clear_good_cache(circuit, cells) -> None:
    plan = CompiledCircuit.get(circuit, cells)
    plan.good_cache.clear()
    plan.good_sums.clear()


def test_ingested_benchmark_throughput():
    library = get_library()
    cells = {c.name: c for c in library}

    # --- ingestion itself: parse + link + map + lint ---------------
    path = bundled_path(CIRCUIT)
    t0 = time.perf_counter()
    design = ingest_file(path, cells=cells)
    t_ingest = time.perf_counter() - t0
    assert design.ok, design.report.render()
    circuit = design.circuit
    n_gates = len(circuit.gates)
    assert n_gates >= 5000, (
        f"perf harness needs a >=5k-gate design, {CIRCUIT} mapped to "
        f"{n_gates} gates"
    )

    # --- wide fault simulation, serial vs process ------------------
    faults = _fault_sample(circuit, library, N_FAULTS)
    batch = PatternBatch.random(circuit, N_PATTERNS, seed=7)

    _clear_good_cache(circuit, cells)
    t0 = time.perf_counter()
    serial_words = fault_simulate(
        circuit, cells, faults, batch,
        backend="wide", exec_mode="serial", workers=1,
    )
    t_serial = time.perf_counter() - t0

    proc_stats = EngineStats()
    _clear_good_cache(circuit, cells)
    t0 = time.perf_counter()
    process_words = fault_simulate(
        circuit, cells, faults, batch,
        backend="wide", exec_mode="process", workers=2, stats=proc_stats,
    )
    t_process = time.perf_counter() - t0

    assert process_words == serial_words, (
        "process-parallel wide fault simulation diverged from serial "
        "on the ingested circuit"
    )
    fp = len(faults) * batch.n

    # --- ATPG, serial vs process-sharded batches -------------------
    atpg_faults = _fault_sample(circuit, library, N_ATPG_FAULTS, seed=11)
    budget = AtpgBudget(deadline_ms=2000.0)

    t0 = time.perf_counter()
    serial_res = run_atpg(
        circuit, cells, atpg_faults, seed=3, random_rounds=4,
        backend="wide", exec_mode="serial", workers=1, budget=budget,
    )
    t_atpg = time.perf_counter() - t0

    process_res = run_atpg(
        circuit, cells, atpg_faults, seed=3, random_rounds=4,
        backend="wide", exec_mode="process", workers=2, budget=budget,
    )
    assert process_res.detected == serial_res.detected
    assert process_res.undetectable == serial_res.undetectable
    assert process_res.aborted == serial_res.aborted

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "circuit": CIRCUIT,
        "source": os.path.basename(path),
        "gates": n_gates,
        "inputs": len(circuit.inputs),
        "outputs": len(circuit.outputs),
        "ingest_seconds": round(t_ingest, 4),
        "ingest_gates_per_second": round(n_gates / t_ingest),
        "widesim": {
            "faults": len(faults),
            "patterns": batch.n,
            "serial_seconds": round(t_serial, 4),
            "process_seconds": round(t_process, 4),
            "serial_fault_patterns_per_second": round(fp / t_serial),
            "process_fault_patterns_per_second": round(fp / t_process),
            "bit_identical": process_words == serial_words,
            "process_stats": proc_stats.as_dict(),
        },
        "atpg": {
            "faults": len(atpg_faults),
            "serial_seconds": round(t_atpg, 4),
            "detected": len(serial_res.detected),
            "undetectable": len(serial_res.undetectable),
            "aborted": len(serial_res.aborted),
            "tests": len(serial_res.tests),
            "sat_calls": serial_res.sat_calls,
            "process_identical": True,
        },
    }

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    out = os.path.join(results_dir, "BENCH_ingest.json")
    trajectory: List[dict] = []
    if os.path.exists(out):
        with open(out) as fh:
            trajectory = json.load(fh)
    trajectory.append(point)
    with open(out, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    emit_report("BENCH_ingest", "\n".join([
        f"ingest perf on {CIRCUIT} ({n_gates} gates from "
        f"{os.path.basename(path)})",
        f"  ingest (parse+link+map+lint): {t_ingest:.3f}s "
        f"({point['ingest_gates_per_second']} gates/s)",
        f"  wide fault sim ({len(faults)} faults x {batch.n} patterns): "
        f"serial {t_serial:.3f}s, process(2) {t_process:.3f}s "
        f"({point['widesim']['serial_fault_patterns_per_second']} / "
        f"{point['widesim']['process_fault_patterns_per_second']} "
        f"fault-patterns/s), bit-identical",
        f"  run_atpg ({len(atpg_faults)} faults): {t_atpg:.3f}s, "
        f"{len(serial_res.detected)} det / "
        f"{len(serial_res.undetectable)} undet / "
        f"{len(serial_res.aborted)} aborted, "
        f"{len(serial_res.tests)} tests; process run identical",
    ]))
