"""Performance harness for the concurrent campaign scheduler.

Runs the paper's Table-I campaign over the bench circuits at
``jobs=1/2/4`` and measures wall-clock makespan.  Tasks run with
``isolation="process"`` (each analyze in its own interpreter, so the
scheduler's concurrency is real parallelism, not GIL-interleaved
threads) and ``workers=1`` (inner fault-simulation pools pinned serial,
so the speedup measured is purely task-level scheduling and no
pool-fallback warnings can leak into payload stats).  The normalized
report must be bit-identical at every jobs level — the scaling is only
meaningful if concurrency changes nothing but the clock — and a
trajectory point is appended to
``benchmarks/results/BENCH_runner.json``.

Scaling floors are enforced only when the machine actually has the
cores: the ``jobs=4`` floor applies iff ``len(os.sched_getaffinity)``
is at least 4 (a 1-CPU container records honest numbers — including
the scheduler's overhead — but cannot fail a floor it physically
cannot meet; the 4-vCPU CI runners enforce it).  Every trajectory
point records the effective CPU count alongside the timings.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_runner.py -s``

Knobs: ``REPRO_PERF_RUNNER_CIRCUITS`` (default: the 12-circuit bench
set minus ``sparc_fpu`` — that one task is a ~27s straggler that alone
caps the achievable 4-way speedup near 2.3x; add it back to measure
the straggler-bound regime), ``REPRO_PERF_RUNNER_JOBS``
(comma-separated jobs levels, default ``1,2,4``),
``REPRO_PERF_RUNNER_MIN_SPEEDUP`` (floor override for every level).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import emit_report
from repro.runner import normalize_report, run_campaign
from repro.runner.tasks import paper_campaign

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUITS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_PERF_RUNNER_CIRCUITS",
        "tv80,systemcaes,aes_core,wb_conmax,des_perf,sparc_spu,"
        "sparc_ffu,sparc_exu,sparc_ifu,sparc_tlu,sparc_lsu",
    ).split(",")
    if name.strip()
]
JOBS_LEVELS = [
    int(tok)
    for tok in os.environ.get("REPRO_PERF_RUNNER_JOBS", "1,2,4").split(",")
    if tok.strip()
]

# The ISSUE's acceptance floor: >= 2.0x wall-clock at jobs=4 over
# jobs=1.  jobs=2 only has to beat break-even.  Floors apply only when
# the CPUs exist (see module doc).
_FLOOR_OVERRIDE = os.environ.get("REPRO_PERF_RUNNER_MIN_SPEEDUP")
MIN_SPEEDUP: Dict[int, float] = {4: 2.0, 2: 1.2}


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _min_speedup(jobs: int) -> float:
    if _FLOOR_OVERRIDE:
        return float(_FLOOR_OVERRIDE)
    return MIN_SPEEDUP.get(jobs, 0.0)


def _run_at(jobs: int, root: str) -> dict:
    campaign = paper_campaign(
        CIRCUITS, run_id=f"bench-j{jobs}", tables=(1,),
        workers=1, isolation="process",
    )
    t0 = time.perf_counter()
    report = run_campaign(campaign, root=root, jobs=jobs)
    wall = time.perf_counter() - t0
    assert report["status"] == "ok", report["status"]
    sched = report.get("scheduler") or {}
    return {
        "jobs": jobs,
        "wall_seconds": round(wall, 4),
        "normalized": json.dumps(normalize_report(report), sort_keys=True),
        "peak_in_flight": sched.get("peak_in_flight"),
        "ledger_grants": sched.get("ledger_grants"),
        "busy_seconds": round(sched["busy_seconds"], 4)
        if "busy_seconds" in sched else None,
    }


def test_scheduler_scaling_and_equivalence(tmp_path):
    cpus = _effective_cpus()
    runs: List[dict] = [
        _run_at(jobs, str(tmp_path / f"runs-j{jobs}"))
        for jobs in JOBS_LEVELS
    ]

    # Correctness gate: every jobs level must produce the same
    # normalized report — concurrency may only move the clock.
    baseline = runs[0]
    for run in runs[1:]:
        assert run["normalized"] == baseline["normalized"], (
            f"normalized report at jobs={run['jobs']} differs from "
            f"jobs={baseline['jobs']}"
        )

    t_serial = next(r["wall_seconds"] for r in runs if r["jobs"] == 1)
    points = []
    for run in runs:
        speedup = t_serial / run["wall_seconds"] if run["wall_seconds"] \
            else float("inf")
        points.append({
            "jobs": run["jobs"],
            "wall_seconds": run["wall_seconds"],
            "speedup": round(speedup, 2),
            "min_speedup": _min_speedup(run["jobs"]),
            "peak_in_flight": run["peak_in_flight"],
            "ledger_grants": run["ledger_grants"],
            "busy_seconds": run["busy_seconds"],
        })

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "circuits": CIRCUITS,
        "cpus": cpus,
        "isolation": "process",
        "workers": 1,
        "runs": points,
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_runner.json")
    trajectory: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(point)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    lines = [
        f"campaign scheduler perf: {len(CIRCUITS)} Table-I circuits, "
        f"process isolation, workers=1, {cpus} effective CPU(s)"
    ]
    for pt in points:
        enforced = pt["jobs"] <= 1 or cpus >= pt["jobs"]
        floor = (
            f" (floor {pt['min_speedup']:.1f}x"
            f"{'' if enforced else ', not enforced: too few CPUs'})"
            if pt["min_speedup"] else ""
        )
        lines.append(
            f"  jobs={pt['jobs']}: {pt['wall_seconds']:.2f}s wall -> "
            f"{pt['speedup']:.2f}x, peak_in_flight="
            f"{pt['peak_in_flight']}{floor}"
        )
    emit_report("BENCH_runner", "\n".join(lines))

    for pt in points:
        if pt["jobs"] <= 1 or cpus < pt["jobs"]:
            continue  # floor needs cores this machine does not have
        assert pt["speedup"] >= pt["min_speedup"], (
            f"jobs={pt['jobs']}: expected >= {pt['min_speedup']}x over "
            f"jobs=1 on a {cpus}-CPU machine, got {pt['speedup']:.2f}x"
        )
