"""Performance harness for the ATPG deterministic (SAT) phase.

Two independent legs, each gated on verdict identity:

* **CDCL leg** — the serial incremental scan timed against a frozen
  copy of the previous solver generation (:class:`_BaselineSolver`,
  method bodies taken verbatim from git history): no binary-implication
  lists, the activity-rescale heap bug, length-only learnt retention,
  an assumption-blind restart schedule, O(trail) heap re-push on every
  backtrack, and O(num_vars) model extraction per SAT answer.  Both
  engines must return the identical DETECTED / UNDETECTABLE partition;
  the speedup floor applies on every machine (serial vs serial needs no
  spare cores).

* **Parallel leg** — ``run_atpg``'s ``atpg.sat`` phase wall-clock,
  serial versus the site-sharded process pool at each worker count.
  Partitions must be bit-identical (unbudgeted SAT is exact, so the
  verdict set is schedule-independent).  Scaling floors are enforced
  only when the machine actually has the cores — a 1-CPU container
  records honest numbers but cannot fail a floor it physically cannot
  meet; every trajectory point records the effective CPU count so the
  JSON stays interpretable.

A trajectory point is appended to ``benchmarks/results/BENCH_atpg.json``.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_atpg.py -s``

Knobs: ``REPRO_PERF_ATPG_CIRCUITS`` (default ``aes_core``),
``REPRO_PERF_ATPG_FAULTS`` (fault-sample cap, default 400),
``REPRO_PERF_ATPG_WORKERS`` (comma-separated counts, default 2,4),
``REPRO_PERF_ATPG_CDCL_MIN`` (CDCL-leg floor, default 1.3),
``REPRO_PERF_ATPG_MIN_SPEEDUP`` (parallel-leg floor override).
"""

from __future__ import annotations

import heapq
import json
import os
import random
import time
from typing import Dict, List, Optional, Tuple

import pytest

from benchmarks.conftest import emit_report, get_library
from repro.atpg.engine import run_atpg
from repro.atpg.incremental import IncrementalAtpg, fault_site_net
from repro.atpg.sat import SAT, UNKNOWN, UNSAT, _UNDEF, _enc, Solver
from repro.bench import build_benchmark
from repro.faults import psim
from repro.faults.model import (
    FALL,
    RISE,
    BridgingFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.faults.sites import enumerate_internal_faults
from repro.netlist.simulator import CompiledCircuit

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUITS = [
    name.strip()
    for name in os.environ.get("REPRO_PERF_ATPG_CIRCUITS", "aes_core").split(",")
    if name.strip()
]
N_FAULTS = int(os.environ.get("REPRO_PERF_ATPG_FAULTS", "400"))
WORKER_COUNTS = [
    int(tok)
    for tok in os.environ.get("REPRO_PERF_ATPG_WORKERS", "2,4").split(",")
    if tok.strip()
]
CDCL_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_ATPG_CDCL_MIN", "1.3"))

# The ISSUE's acceptance floor: >= 2x on the atpg.sat phase at 4 workers
# on aes_core.  Other (circuit, workers) points only must not collapse.
# Parallel floors apply only when the CPUs exist (see module docstring).
_FLOOR_OVERRIDE = os.environ.get("REPRO_PERF_ATPG_MIN_SPEEDUP")
MIN_SPEEDUP: Dict[Tuple[str, int], float] = {
    ("aes_core", 4): 2.0,
    ("aes_core", 2): 1.2,
}


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _min_speedup(name: str, workers: int) -> float:
    if _FLOOR_OVERRIDE:
        return float(_FLOOR_OVERRIDE)
    return MIN_SPEEDUP.get((name, workers), 0.8)


class _BaselineSolver(Solver):
    """The previous solver generation, frozen for honest A/B timing.

    Method bodies are the pre-PR ones from git history, overriding every
    hot path this PR touched: clause attachment (everything through the
    watch lists — no binary-implication fast path), the unconditional
    100-conflict restart schedule, the activity rescale that forgets to
    rebuild the heap, length-only learnt retention, full-trail heap
    re-push on backtrack, and eager O(num_vars) model extraction.  The
    only deviation is mechanical: ``.model`` is a property now, so the
    old model build assigns the private fields instead.
    """

    def _attach_clause(self, idx: int, clause: List[int]) -> None:
        self._watches[clause[0]].append(idx)
        self._watches[clause[1]].append(idx)

    def solve(
        self,
        assumptions=(),
        *,
        conflict_budget: Optional[int] = None,
        decision_budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return UNSAT
        enc_assumps = [_enc(a) for a in assumptions]
        restart_limit = 100
        conflicts_here = 0
        limited = (
            conflict_budget is not None
            or decision_budget is not None
            or deadline is not None
        )
        spent_conflicts = 0
        spent_decisions = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if limited:
                    spent_conflicts += 1
                    if (
                        (conflict_budget is not None
                         and spent_conflicts > conflict_budget)
                        or (deadline is not None
                            and time.perf_counter() > deadline)
                    ):
                        self._backtrack(0)
                        return UNKNOWN
                if len(self._trail_lim) <= len(enc_assumps):
                    self._backtrack(0)
                    if not enc_assumps:
                        self._ok = False
                    return UNSAT
                learnt, back_level = self._analyze(conflict)
                if back_level < len(enc_assumps):
                    back_level = len(enc_assumps)
                self._backtrack(back_level)
                self._record_learnt(learnt)
                self._var_inc /= 0.95
                if conflicts_here >= restart_limit:
                    conflicts_here = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(
                        min(len(enc_assumps), len(self._trail_lim))
                    )
                continue
            if len(self._trail_lim) < len(enc_assumps):
                e = enc_assumps[len(self._trail_lim)]
                v = self._val[e]
                if v == 0:
                    self._backtrack(0)
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                if v != 1:
                    self._enqueue(e, None)
                continue
            lit = self._decide()
            if lit is None:
                self._model = [
                    v if self._val[v << 1] == 1 else -v
                    for v in range(1, self.num_vars + 1)
                    if self._val[v << 1] != _UNDEF
                ]
                self._model_val = bytes(self._val)
                self._backtrack(0)
                return SAT
            if limited:
                spent_decisions += 1
                if (
                    (decision_budget is not None
                     and spent_decisions > decision_budget)
                    or (deadline is not None
                        and time.perf_counter() > deadline)
                ):
                    self._backtrack(0)
                    return UNKNOWN
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def _bump(self, var: int) -> None:
        act = self._activity[var] + self._var_inc
        self._activity[var] = act
        if act > 1e100:
            scale = 1e-100
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= scale
            self._var_inc *= scale
        else:
            heapq.heappush(self._heap, (-act, var))

    def reduce_learnts(
        self,
        keep_max_size: int = 4,
        keep_glue: int = 2,
        max_keep: Optional[int] = None,
    ) -> int:
        protected = {
            self._reason[elit >> 1]
            for elit in self._trail
            if self._reason[elit >> 1] is not None
        }
        survivors: List[int] = []
        deleted = 0
        for ci in self._learnt:
            clause = self.clauses[ci]
            if clause is None:
                continue
            if ci in protected or len(clause) <= keep_max_size:
                survivors.append(ci)
            else:
                self.clauses[ci] = None
                deleted += 1
        self._learnt = survivors
        return deleted

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        levels = self._level
        best = max(
            range(1, len(learnt)), key=lambda i: levels[learnt[i] >> 1]
        )
        learnt[1], learnt[best] = learnt[best], learnt[1]
        idx = len(self.clauses)
        self.clauses.append(learnt)
        self._learnt.append(idx)
        self._watches[learnt[0]].append(idx)
        self._watches[learnt[1]].append(idx)
        self._enqueue(learnt[0], idx)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        val = self._val
        heap = self._heap
        activity = self._activity
        for elit in self._trail[limit:]:
            val[elit] = _UNDEF
            val[elit ^ 1] = _UNDEF
            var = elit >> 1
            self._reason[var] = None
            heapq.heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> Optional[int]:
        val = self._val
        heap = self._heap
        activity = self._activity
        while heap:
            neg_act, var = heapq.heappop(heap)
            if val[var << 1] != _UNDEF:
                continue
            if -neg_act != activity[var]:
                continue
            return (var << 1) | (0 if self._phase[var] else 1)
        for var in range(1, self.num_vars + 1):
            if val[var << 1] == _UNDEF:
                return (var << 1) | (0 if self._phase[var] else 1)
        return None

    def _propagate(self) -> Optional[int]:
        val = self._val
        watches = self._watches
        clauses = self.clauses
        trail = self._trail
        while self._qhead < len(trail):
            elit = trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            falsified = elit ^ 1
            watching = watches[falsified]
            if not watching:
                continue
            keep: List[int] = []
            n = len(watching)
            i = 0
            while i < n:
                ci = watching[i]
                i += 1
                clause = clauses[ci]
                if clause is None:
                    continue
                if clause[0] == falsified:
                    clause[0] = clause[1]
                    clause[1] = falsified
                first = clause[0]
                if val[first] == 1:
                    keep.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    ck = clause[k]
                    if val[ck] != 0:
                        clause[1] = ck
                        clause[k] = falsified
                        watches[ck].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(ci)
                if val[first] == 0:
                    keep.extend(watching[i:])
                    watches[falsified] = keep
                    return ci
                self._enqueue(first, ci)
            watches[falsified] = keep
        return None


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------

def _workload(name: str):
    """Circuit + a conflict-heavy mixed fault list in engine scan order."""
    library = get_library()
    cells = {c.name: c for c in library}
    circuit = build_benchmark(name, library)
    rng = random.Random(2026)
    faults: List[Fault] = list(enumerate_internal_faults(circuit, library))
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    for net in rng.sample(nets, min(160, len(nets))):
        faults.append(StuckAtFault(f"sa0:{net}", "g", net=net, value=0))
        faults.append(StuckAtFault(f"sa1:{net}", "g", net=net, value=1))
        faults.append(TransitionFault(f"tr:{net}", "g", net=net, slow_to=RISE))
        faults.append(TransitionFault(f"tf:{net}", "g", net=net, slow_to=FALL))
    for k in range(120):
        victim, aggressor = rng.sample(nets, 2)
        faults.append(
            BridgingFault(f"br{k}", "g", victim=victim, aggressor=aggressor)
        )
    if len(faults) > N_FAULTS:
        faults = rng.sample(faults, N_FAULTS)
    # The serial engine's site-grouped order: lemma reuse at its best,
    # identical for both solver generations.
    faults.sort(key=lambda f: (fault_site_net(circuit, f) or "", f.fault_id))
    return circuit, cells, faults


def _clear_good_cache(circuit, cells) -> None:
    plan = CompiledCircuit.get(circuit, cells)
    plan.good_cache.clear()
    plan.good_sums.clear()


# ----------------------------------------------------------------------
# CDCL leg
# ----------------------------------------------------------------------

def _scan(circuit, cells, faults, solver: Optional[Solver]):
    """One full decide() sweep; returns (seconds, verdicts, solver)."""
    engine = IncrementalAtpg(circuit, cells, solver=solver)
    verdicts = {}
    t0 = time.perf_counter()
    for fault in faults:
        detectable, _pair = engine.decide(fault)
        verdicts[fault.fault_id] = detectable
    return time.perf_counter() - t0, verdicts, engine.solver


def _bench_cdcl(name: str) -> dict:
    circuit, cells, faults = _workload(name)
    _ = IncrementalAtpg(circuit, cells)  # warm the compiled plan

    t_base = t_cur = float("inf")
    for _rep in range(2):
        t, base_verdicts, base_solver = _scan(
            circuit, cells, faults, _BaselineSolver()
        )
        t_base = min(t_base, t)
        t, cur_verdicts, cur_solver = _scan(circuit, cells, faults, None)
        t_cur = min(t_cur, t)

    # Correctness gate: exact decisions cannot depend on the solver
    # generation.  (Test pairs may differ — both are valid witnesses.)
    assert cur_verdicts == base_verdicts
    speedup = t_base / t_cur if t_cur else float("inf")
    return {
        "circuit": name,
        "gates": len(circuit),
        "faults": len(faults),
        "undetectable": sum(
            1 for v in cur_verdicts.values() if v is False
        ),
        "baseline_seconds": round(t_base, 4),
        "current_seconds": round(t_cur, 4),
        "baseline_conflicts": base_solver.conflicts,
        "current_conflicts": cur_solver.conflicts,
        "speedup": round(speedup, 2),
        "min_speedup": CDCL_MIN_SPEEDUP,
    }


# ----------------------------------------------------------------------
# Parallel leg
# ----------------------------------------------------------------------

def _sat_phase_run(circuit, cells, faults, exec_mode, workers):
    result = run_atpg(
        circuit, cells, faults, seed=0, random_rounds=0,
        exec_mode=exec_mode, workers=workers,
    )
    return result.stats.phase_seconds["atpg.sat"], result


def _bench_parallel(name: str) -> dict:
    circuit, cells, faults = _workload(name)

    t_serial = float("inf")
    serial = None
    for _rep in range(2):
        _clear_good_cache(circuit, cells)
        t, serial = _sat_phase_run(circuit, cells, faults, "serial", 1)
        t_serial = min(t_serial, t)

    points = []
    for workers in WORKER_COUNTS:
        # Warm up: fork the pool and build the per-worker persistent
        # engines once, so the timed repeats measure steady-state phase
        # cost (the deployment shape: one pool serves a whole campaign).
        _sat_phase_run(circuit, cells, faults, "process", workers)
        t_proc = float("inf")
        proc = None
        for _rep in range(2):
            _clear_good_cache(circuit, cells)
            t, proc = _sat_phase_run(
                circuit, cells, faults, "process", workers
            )
            t_proc = min(t_proc, t)

        # Correctness gate: identical partition, no silent fallback.
        assert proc.detected == serial.detected
        assert proc.undetectable == serial.undetectable
        assert proc.aborted == serial.aborted == set()
        assert proc.stats.sat_shards > 0, proc.stats.warnings

        speedup = t_serial / t_proc if t_proc else float("inf")
        points.append({
            "workers": workers,
            "sat_phase_seconds": round(t_proc, 4),
            "speedup": round(speedup, 2),
            "min_speedup": _min_speedup(name, workers),
            "sat_shards": proc.stats.sat_shards,
        })

    return {
        "circuit": name,
        "gates": len(circuit),
        "faults": len(faults),
        "serial_sat_phase_seconds": round(t_serial, 4),
        "workers": points,
    }


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------

def test_atpg_sat_phase_perf():
    cpus = _effective_cpus()
    cdcl_rows = [_bench_cdcl(name) for name in CIRCUITS]
    par_rows = [_bench_parallel(name) for name in CIRCUITS]
    psim.shutdown_pools()

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpus": cpus,
        "cdcl": cdcl_rows,
        "parallel": par_rows,
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_atpg.json")
    trajectory: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(point)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    lines = [f"atpg SAT-phase perf, {cpus} effective CPU(s)"]
    for row in cdcl_rows:
        lines.append(
            f"  cdcl {row['circuit']:>10} ({row['faults']} faults, "
            f"{row['undetectable']} undetectable): "
            f"baseline {row['baseline_seconds']:.3f}s "
            f"({row['baseline_conflicts']} conflicts), "
            f"current {row['current_seconds']:.3f}s "
            f"({row['current_conflicts']} conflicts) -> "
            f"{row['speedup']:.2f}x (floor {row['min_speedup']:.1f}x)"
        )
    for row in par_rows:
        for pt in row["workers"]:
            enforced = cpus >= pt["workers"]
            lines.append(
                f"  parallel {row['circuit']:>10} x{pt['workers']}: "
                f"serial {row['serial_sat_phase_seconds']:.3f}s, "
                f"process {pt['sat_phase_seconds']:.3f}s -> "
                f"{pt['speedup']:.2f}x (floor {pt['min_speedup']:.1f}x"
                f"{'' if enforced else ', not enforced: too few CPUs'})"
            )
    emit_report("BENCH_atpg", "\n".join(lines))

    # CDCL floor: serial vs serial, enforced everywhere.
    for row in cdcl_rows:
        assert row["speedup"] >= row["min_speedup"], (
            f"{row['circuit']}: CDCL fixes expected >= "
            f"{row['min_speedup']}x over the frozen baseline, got "
            f"{row['speedup']:.2f}x"
        )
    # Parallel floors: need the cores to exist.
    for row in par_rows:
        for pt in row["workers"]:
            if cpus < pt["workers"]:
                continue
            assert pt["speedup"] >= pt["min_speedup"], (
                f"{row['circuit']} at {pt['workers']} workers: expected "
                f">= {pt['min_speedup']}x on the atpg.sat phase on a "
                f"{cpus}-CPU machine, got {pt['speedup']:.2f}x"
            )
