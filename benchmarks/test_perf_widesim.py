"""Performance harness for the wide numpy simulation backend.

Benchmarks ``fault_simulate(backend="wide")`` against the event backend
on the ATPG random-phase workload: the same pattern pairs either ride
one wide pass (uint64 word arrays, dense cone-scoped propagation) or a
sequence of 64-pattern event batches whose detect words are reassembled
into full-width words.  The reassembled event words must be
bit-identical to the wide words — the speedup is only meaningful if the
two backends agree bit for bit — and a trajectory point is appended to
``benchmarks/results/BENCH_widesim.json``.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_widesim.py -s``

Knobs: ``REPRO_PERF_WIDE_CIRCUITS`` (default ``aes_core,sparc_tlu``),
``REPRO_PERF_WIDE_PATTERNS`` (patterns per pass, default 4096),
``REPRO_PERF_WIDE_FAULTS`` (fault-sample cap, default 400),
``REPRO_PERF_WIDE_MIN_SPEEDUP`` (floor override for every circuit).
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import emit_report, get_library
from repro.bench import build_benchmark
from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.model import (
    FALL,
    RISE,
    BridgingFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.faults.sites import enumerate_internal_faults
from repro.netlist.simulator import CompiledCircuit
from repro.netlist.vsim import WORD_BITS, words_for
from repro.utils.observability import EngineStats

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUITS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_PERF_WIDE_CIRCUITS", "aes_core,sparc_tlu"
    ).split(",")
    if name.strip()
]
N_PATTERNS = int(os.environ.get("REPRO_PERF_WIDE_PATTERNS", "4096"))
N_FAULTS = int(os.environ.get("REPRO_PERF_WIDE_FAULTS", "400"))

# The ISSUE's acceptance floor is on aes_core; other circuits only have
# to not regress below the event backend.
_FLOOR_OVERRIDE = os.environ.get("REPRO_PERF_WIDE_MIN_SPEEDUP")
MIN_SPEEDUP: Dict[str, float] = {"aes_core": 3.0}


def _min_speedup(name: str) -> float:
    if _FLOOR_OVERRIDE:
        return float(_FLOOR_OVERRIDE)
    return MIN_SPEEDUP.get(name, 1.0)


def _workload(name: str) -> Tuple[object, Dict, List[Fault], PatternBatch]:
    library = get_library()
    cells = {c.name: c for c in library}
    circuit = build_benchmark(name, library)
    rng = random.Random(2026)
    faults: List[Fault] = list(enumerate_internal_faults(circuit, library))
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    for net in rng.sample(nets, min(120, len(nets))):
        faults.append(StuckAtFault(f"sa0:{net}", "g", net=net, value=0))
        faults.append(StuckAtFault(f"sa1:{net}", "g", net=net, value=1))
        faults.append(TransitionFault(f"tr:{net}", "g", net=net, slow_to=RISE))
        faults.append(TransitionFault(f"tf:{net}", "g", net=net, slow_to=FALL))
    for k in range(60):
        victim, aggressor = rng.sample(nets, 2)
        faults.append(
            BridgingFault(f"br{k}", "g", victim=victim, aggressor=aggressor)
        )
    if len(faults) > N_FAULTS:
        faults = rng.sample(faults, N_FAULTS)
    batch = PatternBatch.random(circuit, N_PATTERNS, seed=7)
    return circuit, cells, faults, batch


def _slice_batch(batch: PatternBatch, start: int, width: int) -> PatternBatch:
    """Patterns ``[start, start + width)`` of *batch* as their own batch."""
    sub_mask = (1 << width) - 1
    return PatternBatch(
        width,
        {pi: (w >> start) & sub_mask for pi, w in batch.frame1.items()},
        {pi: (w >> start) & sub_mask for pi, w in batch.frame2.items()},
    )


def _clear_good_cache(circuit, cells) -> None:
    """Make every timing repeat pay its good simulations."""
    plan = CompiledCircuit.get(circuit, cells)
    plan.good_cache.clear()
    plan.good_sums.clear()


def _time(fn, circuit, cells, repeats: int = 2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        _clear_good_cache(circuit, cells)
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_one(name: str) -> dict:
    circuit, cells, faults, batch = _workload(name)

    def run_event() -> List[int]:
        acc = [0] * len(faults)
        for start in range(0, batch.n, WORD_BITS):
            width = min(WORD_BITS, batch.n - start)
            sub = _slice_batch(batch, start, width)
            words = fault_simulate(
                circuit, cells, faults, sub, backend="event"
            )
            for i, w in enumerate(words):
                acc[i] |= w << start
        return acc

    wide_stats = EngineStats()

    def run_wide() -> List[int]:
        return fault_simulate(
            circuit, cells, faults, batch, backend="wide", stats=wide_stats
        )

    t_event, event_words = _time(run_event, circuit, cells)
    t_wide, wide_words = _time(run_wide, circuit, cells)

    # Correctness gate: the reassembled event words and the wide words
    # must agree bit for bit at full batch width.
    assert event_words == wide_words

    speedup = t_event / t_wide if t_wide else float("inf")
    return {
        "circuit": name,
        "gates": len(circuit),
        "faults": len(faults),
        "patterns": batch.n,
        "words": words_for(batch.n),
        "event_seconds": round(t_event, 4),
        "wide_seconds": round(t_wide, 4),
        "speedup": round(speedup, 2),
        "min_speedup": _min_speedup(name),
        "wide_stats": wide_stats.as_dict(),
    }


def test_wide_backend_speedup_and_equivalence():
    rows = [_bench_one(name) for name in CIRCUITS]

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "patterns_per_pass": N_PATTERNS,
        "circuits": rows,
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_widesim.json")
    trajectory: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(point)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    lines = [
        f"wide-backend perf at {N_PATTERNS} patterns/pass "
        f"(event = reassembled 64-pattern batches)"
    ]
    for row in rows:
        lines.append(
            f"  {row['circuit']:>10} ({row['gates']} gates, "
            f"{row['faults']} faults): event {row['event_seconds']:.3f}s, "
            f"wide {row['wide_seconds']:.3f}s -> {row['speedup']:.2f}x "
            f"(floor {row['min_speedup']:.1f}x)"
        )
    emit_report("BENCH_widesim", "\n".join(lines))

    for row in rows:
        assert row["speedup"] >= row["min_speedup"], (
            f"{row['circuit']}: expected >= {row['min_speedup']}x over the "
            f"event backend at {N_PATTERNS} patterns/pass, "
            f"got {row['speedup']:.2f}x"
        )
