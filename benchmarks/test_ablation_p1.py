"""Experiment E8 — sensitivity to the phase-1 target p1.

The paper: "To balance the cluster sizes and the effectiveness of phase
two, we experimented with different values of p1.  The results indicate
that p1 = 1% balances them well."  We regenerate the sweep: run the
procedure with several p1 values on one circuit and report final U and
S_max.
"""

from __future__ import annotations

import os

from benchmarks.conftest import get_library, bench_scale
from repro.bench import build_benchmark
from repro.core import ResynthesisConfig, resynthesize_for_coverage
from repro.utils import format_table

CIRCUIT = os.environ.get("REPRO_P1_CIRCUIT", "sparc_lsu")
P1_VALUES = (0.005, 0.01, 0.02, 0.05)


def _run():
    library = get_library()
    circuit = build_benchmark(CIRCUIT, library, scale=bench_scale())
    rows = []
    for p1 in P1_VALUES:
        cfg = ResynthesisConfig(
            p1=p1, q_max=2, max_iterations_per_phase=5
        )
        result = resynthesize_for_coverage(circuit, library, cfg)
        rows.append([
            f"{100 * p1:.1f}%",
            result.original.u_total,
            result.final.u_total,
            result.final.smax_size,
            f"{100 * result.final.smax_fraction_of_f:.2f}",
            f"{100 * result.final.coverage:.2f}",
        ])
    return rows


def test_p1_sensitivity(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    from benchmarks.conftest import emit_report
    emit_report("ablation_p1", format_table(
        ["p1", "U orig", "U final", "Smax final", "%Smax_all", "Cov%"],
        rows,
        title=f"p1 sensitivity ({CIRCUIT})",
    ))
    # All settings must reduce U; the sweep itself is the deliverable.
    for row in rows:
        assert row[2] <= row[1]
