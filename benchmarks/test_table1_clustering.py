"""Experiment E1/E7 — Table I: clustered undetectable faults.

Regenerates the paper's Table I rows (F_In, F_Ex, U_In, U_Ex, G_U,
Gmax, Smax, %Smax_U) for the four circuits the paper lists, and checks
the two qualitative claims of Section II:

* undetectable DFM faults cluster — S_max holds a large share of U;
* although external faults outnumber internal faults in F, the major
  portion of the *undetectable* faults is internal (their detection
  conditions are stricter).

Absolute counts differ from the paper (our substrate circuits are
Python-ATPG-sized; see DESIGN.md), but these shape properties must hold.
"""

from __future__ import annotations

from benchmarks.conftest import (
    bench_circuits,
    get_analysis,
    get_table1_row,
    journal_payload,
)
from repro.core import table1_row
from repro.utils import format_table

TABLE1_CIRCUITS = ["aes_core", "des_perf", "sparc_exu", "sparc_fpu"]


def _rows():
    """(DesignState, journaled Table I row) per circuit.

    The analysis runs as an orchestrator task; the row asserted on is
    the one recorded in the run journal, not a recomputation.
    """
    return {
        name: (get_analysis(name), get_table1_row(name))
        for name in bench_circuits(TABLE1_CIRCUITS)
    }


def test_table1_report(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = [list(r.values()) for _state, r in rows.values()]
    header = list(next(iter(rows.values()))[1].keys())
    from benchmarks.conftest import emit_report
    emit_report("table1", format_table(
        header, table, title="TABLE I. CLUSTERED UNDETECTABLE FAULTS"))
    for name, (state, row) in rows.items():
        assert row["F_In"] > 0 and row["F_Ex"] > 0, name
        assert row["U_In"] + row["U_Ex"] > 0, name


def test_external_faults_outnumber_internal():
    for name, (state, row) in _rows().items():
        assert row["F_Ex"] > row["F_In"], name


def test_most_undetectable_faults_are_internal():
    """Section II: "the major portion of the undetectable faults are
    internal faults" — checked in aggregate across the circuits."""
    u_in = u_ex = 0
    for name, (state, row) in _rows().items():
        u_in += row["U_In"]
        u_ex += row["U_Ex"]
    assert u_in > u_ex


def test_clustering_is_significant():
    """S_max holds a large share of U (paper: 27%..66%)."""
    for name, (state, row) in _rows().items():
        assert row["%Smax_U"] >= 20.0, (name, row["%Smax_U"])


def test_gmax_is_subset_of_gu():
    for name, (state, row) in _rows().items():
        assert row["Gmax"] <= row["G_U"], name
        assert state.clusters.gmax <= state.clusters.gates_u, name


def test_rows_match_journal_and_recomputation():
    """The on-disk journal recorded exactly the rows asserted above,
    and they agree with a recomputation from the in-memory state."""
    for name, (state, row) in _rows().items():
        payload = journal_payload(f"analyze:full:{name}")
        if payload is None:  # analysis was seeded by a resynthesize task
            payload = journal_payload(f"resynthesize:full:{name}")
            assert payload is not None, name
            assert payload["original_row"] == row, name
        else:
            assert payload["row"] == row, name
        assert table1_row(name, state) == row, name
