"""Experiment E6 — Section III-B claim: the U trend under cell exclusion.

"As the standard cells are considered, the gross trend of the number of
undetectable faults in the circuit first goes down and then up" —
because eliminating fault-rich cells removes undetectable internal
faults, while decomposing into more, smaller cells eventually exposes
more external nets.  The paper uses this to terminate a phase early.

We regenerate the series: resynthesize one circuit with a growing
exclusion prefix (cell_0..cell_i removed) and record the number of
undetectable internal faults of each netlist.
"""

from __future__ import annotations

import os

from benchmarks.conftest import get_library, bench_scale
from repro.bench import build_benchmark
from repro.core import count_undetectable_internal
from repro.synthesis import is_complete_subset, synthesize
from repro.synthesis.techmap import TechmapError
from repro.utils import format_table

CIRCUIT = os.environ.get("REPRO_TREND_CIRCUIT", "sparc_lsu")


def _run():
    library = get_library()
    circuit = build_benchmark(CIRCUIT, library, scale=bench_scale())
    order = library.order_by_internal_faults()
    base_u = count_undetectable_internal(circuit, library)
    series = [("none", len(circuit), base_u)]
    for i in range(len(order) - 1):
        rest = order[i + 1:]
        if not is_complete_subset(rest):
            break
        try:
            mapped = synthesize(
                circuit, library, allowed_cells=[c.name for c in rest]
            )
        except TechmapError:
            break
        u_in = count_undetectable_internal(mapped, library)
        series.append((order[i].name, len(mapped), u_in))
    return series


def test_exclusion_trend(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    from benchmarks.conftest import emit_report
    emit_report("ablation_exclusion_trend", format_table(
        ["excluded up to", "gates", "undetectable internal"],
        series,
        title=f"U_internal vs. exclusion prefix ({CIRCUIT})",
    ))
    values = [u for _name, _gates, u in series]
    # Down-then-up shape: the minimum is reached strictly after the
    # start, and the tail does not keep improving.
    best = min(values)
    best_at = values.index(best)
    assert best < values[0], "exclusion must reduce U_internal somewhere"
    assert best_at >= 1
    # At least one later configuration is worse than the best.
    assert any(v > best for v in values[best_at + 1:]) or (
        best_at == len(values) - 1
    )
