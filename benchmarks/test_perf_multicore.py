"""Performance harness for process-parallel fault sharding.

Benchmarks ``fault_simulate(exec_mode="process")`` against the serial
wide path on the ATPG random-phase workload: the same wide batch either
runs single-core or is LPT-sharded across ``multiprocessing`` workers
attached to the batch's shared-memory good-value block.  The detect
words must be bit-identical in every configuration — the scaling is
only meaningful if the sharded run agrees bit for bit — and a
trajectory point is appended to
``benchmarks/results/BENCH_multicore.json``.

Scaling floors are enforced only when the machine actually has the
cores: a floor at *W* workers applies iff ``len(os.sched_getaffinity)``
is at least *W* (a 1-CPU container records honest numbers but cannot
fail a multi-core floor it physically cannot meet; the 4-core CI
runners enforce it).  Every trajectory point records the effective CPU
count alongside the timings so the JSON is interpretable later.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_multicore.py -s``

Knobs: ``REPRO_PERF_MC_CIRCUITS`` (default ``aes_core,sparc_tlu``),
``REPRO_PERF_MC_PATTERNS`` (patterns per pass, default 4096),
``REPRO_PERF_MC_FAULTS`` (fault-sample cap, default 400),
``REPRO_PERF_MC_WORKERS`` (comma-separated worker counts, default 2,4),
``REPRO_PERF_MC_MIN_SPEEDUP`` (floor override for every circuit).
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import emit_report, get_library
from repro.bench import build_benchmark
from repro.faults import psim
from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.model import (
    FALL,
    RISE,
    BridgingFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.faults.sites import enumerate_internal_faults
from repro.netlist.simulator import CompiledCircuit
from repro.utils.observability import EngineStats

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUITS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_PERF_MC_CIRCUITS", "aes_core,sparc_tlu"
    ).split(",")
    if name.strip()
]
N_PATTERNS = int(os.environ.get("REPRO_PERF_MC_PATTERNS", "4096"))
N_FAULTS = int(os.environ.get("REPRO_PERF_MC_FAULTS", "400"))
WORKER_COUNTS = [
    int(tok)
    for tok in os.environ.get("REPRO_PERF_MC_WORKERS", "2,4").split(",")
    if tok.strip()
]

# The ISSUE's acceptance floor: >= 2.5x at 4 workers on aes_core.
# Other (circuit, workers) points only have to not collapse below the
# serial path.  Floors apply only when the CPUs exist (see module doc).
_FLOOR_OVERRIDE = os.environ.get("REPRO_PERF_MC_MIN_SPEEDUP")
MIN_SPEEDUP: Dict[Tuple[str, int], float] = {
    ("aes_core", 4): 2.5,
    ("aes_core", 2): 1.3,
}


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _min_speedup(name: str, workers: int) -> float:
    if _FLOOR_OVERRIDE:
        return float(_FLOOR_OVERRIDE)
    return MIN_SPEEDUP.get((name, workers), 0.8)


def _workload(name: str) -> Tuple[object, Dict, List[Fault], PatternBatch]:
    library = get_library()
    cells = {c.name: c for c in library}
    circuit = build_benchmark(name, library)
    rng = random.Random(2026)
    faults: List[Fault] = list(enumerate_internal_faults(circuit, library))
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    for net in rng.sample(nets, min(120, len(nets))):
        faults.append(StuckAtFault(f"sa0:{net}", "g", net=net, value=0))
        faults.append(StuckAtFault(f"sa1:{net}", "g", net=net, value=1))
        faults.append(TransitionFault(f"tr:{net}", "g", net=net, slow_to=RISE))
        faults.append(TransitionFault(f"tf:{net}", "g", net=net, slow_to=FALL))
    for k in range(60):
        victim, aggressor = rng.sample(nets, 2)
        faults.append(
            BridgingFault(f"br{k}", "g", victim=victim, aggressor=aggressor)
        )
    if len(faults) > N_FAULTS:
        faults = rng.sample(faults, N_FAULTS)
    batch = PatternBatch.random(circuit, N_PATTERNS, seed=7)
    return circuit, cells, faults, batch


def _clear_good_cache(circuit, cells) -> None:
    """Make every timing repeat pay its good simulations."""
    plan = CompiledCircuit.get(circuit, cells)
    plan.good_cache.clear()
    plan.good_sums.clear()


def _time(fn, circuit, cells, repeats: int = 2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        _clear_good_cache(circuit, cells)
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_one(name: str) -> dict:
    circuit, cells, faults, batch = _workload(name)

    def run_serial() -> List[int]:
        return fault_simulate(
            circuit, cells, faults, batch,
            workers=1, backend="wide", exec_mode="serial",
        )

    t_serial, serial_words = _time(run_serial, circuit, cells)

    points = []
    for workers in WORKER_COUNTS:
        stats = EngineStats()

        def run_proc() -> List[int]:
            return fault_simulate(
                circuit, cells, faults, batch,
                workers=workers, backend="wide", exec_mode="process",
                stats=stats,
            )

        # Warm the worker pool first: one ATPG run issues dozens of
        # batches against a pool forked once, so steady-state batch
        # cost — not the one-time fork — is the number that matters.
        run_proc()
        t_proc, proc_words = _time(run_proc, circuit, cells)

        # Correctness gate: sharded detect words must be bit-identical.
        assert proc_words == serial_words
        assert not stats.warnings, stats.warnings

        speedup = t_serial / t_proc if t_proc else float("inf")
        points.append({
            "workers": workers,
            "process_seconds": round(t_proc, 4),
            "speedup": round(speedup, 2),
            "min_speedup": _min_speedup(name, workers),
            "shard_imbalance": round(stats.shard_imbalance, 3),
            "shm_bytes_per_batch": stats.shm_bytes // max(stats.batches, 1),
        })

    return {
        "circuit": name,
        "gates": len(circuit),
        "faults": len(faults),
        "patterns": batch.n,
        "serial_seconds": round(t_serial, 4),
        "workers": points,
    }


def test_multicore_scaling_and_equivalence():
    cpus = _effective_cpus()
    rows = [_bench_one(name) for name in CIRCUITS]
    psim.shutdown_pools()

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "patterns_per_pass": N_PATTERNS,
        "cpus": cpus,
        "circuits": rows,
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_multicore.json")
    trajectory: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(point)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    lines = [
        f"multicore perf at {N_PATTERNS} patterns/pass, wide backend, "
        f"{cpus} effective CPU(s)"
    ]
    for row in rows:
        for pt in row["workers"]:
            enforced = cpus >= pt["workers"]
            lines.append(
                f"  {row['circuit']:>10} ({row['gates']} gates, "
                f"{row['faults']} faults) x{pt['workers']}: "
                f"serial {row['serial_seconds']:.3f}s, "
                f"process {pt['process_seconds']:.3f}s -> "
                f"{pt['speedup']:.2f}x (floor {pt['min_speedup']:.1f}x"
                f"{'' if enforced else ', not enforced: too few CPUs'})"
            )
    emit_report("BENCH_multicore", "\n".join(lines))

    for row in rows:
        for pt in row["workers"]:
            if cpus < pt["workers"]:
                continue  # floor needs cores this machine does not have
            assert pt["speedup"] >= pt["min_speedup"], (
                f"{row['circuit']} at {pt['workers']} workers: expected "
                f">= {pt['min_speedup']}x over serial wide on a "
                f"{cpus}-CPU machine, got {pt['speedup']:.2f}x"
            )
