"""Experiment E5 — Section IV ablation: restricting the cell library.

The paper's final experiment: synthesize sparc_ifu and sparc_fpu with
the seven cells carrying the most internal faults *removed from the
library*, on the same floorplans.  Result in the paper: delay exploded
to 130%/137% and power to 109% — showing that blanket avoidance of
fault-rich cells cannot replace the targeted resynthesis procedure.

We regenerate that comparison: restricted-library synthesis vs. the
proposed procedure, both against the original design's floorplan.
"""

from __future__ import annotations

from benchmarks.conftest import bench_circuits, get_analysis, get_library, get_resynthesis
from repro.physical.pdesign import pdesign
from repro.physical.placement import PlacementError
from repro.synthesis import synthesize
from repro.utils import format_table

ABLATION_CIRCUITS = ["sparc_ifu", "sparc_fpu"]
REMOVED_CELLS = 7


def _run():
    library = get_library()
    cells = {c.name: c for c in library}
    order = library.order_by_internal_faults()
    allowed = [c.name for c in order[REMOVED_CELLS:]]
    rows = []
    for name in bench_circuits(ABLATION_CIRCUITS):
        orig = get_analysis(name)
        # Same mapping objective as the original design, so the only
        # difference is the library restriction itself.
        restricted = synthesize(
            orig.circuit, library, allowed_cells=allowed,
            objective="area",
        )
        try:
            pd = pdesign(
                restricted, cells,
                floorplan=orig.physical.floorplan, seed=0,
            )
            fits = "yes"
        except PlacementError:
            # The restricted netlist does not even fit the original die
            # (the paper's area constraint) — re-place on a fresh die to
            # still measure its delay/power cost.
            pd = pdesign(restricted, cells, seed=0)
            fits = "NO"
        resyn = get_resynthesis(name)
        rows.append([
            name,
            f"{100 * pd.delay / orig.delay:.1f}",
            f"{100 * pd.total_power / orig.power:.1f}",
            fits,
            f"{100 * resyn.final.delay / orig.delay:.1f}",
            f"{100 * resyn.final.power / orig.power:.1f}",
        ])
    return rows


def test_restricted_library_violates_constraints(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    from benchmarks.conftest import emit_report
    emit_report("ablation_restricted_library", format_table(
        ["circuit", "restricted Delay%", "restricted Power%",
         "fits orig die", "procedure Delay%", "procedure Power%"],
        rows,
        title=f"Ablation: library minus the {REMOVED_CELLS} most "
              "fault-rich cells vs. the proposed procedure",
    ))
    violators = 0
    for name, r_delay, r_power, fits, p_delay, p_power in rows:
        if (fits == "NO" or float(r_delay) > 105.0
                or float(r_power) > 105.0):
            violators += 1
        # The targeted procedure always respects its q-budget.
        assert float(p_delay) <= 105.0 + 1e-6, name
        assert float(p_power) <= 105.0 + 1e-6, name
    # The blanket restriction must break a design constraint (delay,
    # power, or die area) on the majority of circuits (the paper: delay
    # 130-137% and power 109% on both circuits tested).
    assert violators * 2 >= len(rows), rows
