"""Experiment E4 — Fig. 2: the two phases of the resynthesis procedure.

Fig. 2 of the paper shows the cluster landscape evolving: phase 1 breaks
up the largest clusters (Cluster A, then Cluster B) one at a time; phase
2 then sweeps the remaining undetectable faults across the whole
circuit.  This benchmark regenerates the underlying data series — the
cluster-size distribution after the original flow, after phase 1, and
after phase 2 — and checks the phase semantics.
"""

from __future__ import annotations

import os

from benchmarks.conftest import get_library, bench_scale
from repro.bench import build_benchmark
from repro.core import ResynthesisConfig, analyze_design
from repro.core.resynthesis import _Resynthesizer
from repro.utils import format_table

CIRCUIT = os.environ.get("REPRO_FIG2_CIRCUIT", "systemcaes")


def _run():
    library = get_library()
    circuit = build_benchmark(CIRCUIT, library, scale=bench_scale())
    cfg = ResynthesisConfig(q_max=2, max_iterations_per_phase=6)
    orig = analyze_design(
        circuit, library, seed=cfg.seed, utilization=cfg.utilization,
        atpg_seed=cfg.seed,
    )
    driver = _Resynthesizer(library, orig, cfg)
    state = orig
    after_p1 = None
    for q in range(cfg.q_max + 1):
        state = driver.run_phase1(state, q)
        if after_p1 is None or q == cfg.q_max:
            after_p1 = state
        state = driver.run_phase2(state, q)
    return orig, after_p1, state


def test_fig2_phase_progression(benchmark):
    orig, after_p1, final = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        ["original", orig.u_total, orig.smax_size,
         f"{100 * orig.smax_fraction_of_f:.2f}",
         str(orig.clusters.sizes()[:6])],
        ["after phase 1", after_p1.u_total, after_p1.smax_size,
         f"{100 * after_p1.smax_fraction_of_f:.2f}",
         str(after_p1.clusters.sizes()[:6])],
        ["after phase 2", final.u_total, final.smax_size,
         f"{100 * final.smax_fraction_of_f:.2f}",
         str(final.clusters.sizes()[:6])],
    ]
    from benchmarks.conftest import emit_report
    emit_report("fig2", format_table(
        ["stage", "U", "Smax", "%Smax_all", "cluster sizes"], rows,
        title=f"Fig. 2 data ({CIRCUIT}): cluster landscape per phase",
    ))
    # Phase semantics: the largest cluster shrinks through phase 1 and U
    # is monotone non-increasing across phases.
    assert after_p1.smax_size <= orig.smax_size
    assert after_p1.u_total <= orig.u_total
    assert final.u_total <= after_p1.u_total
