"""Performance harness for the fault-analysis engine.

Benchmarks ``fault_simulate`` on the largest bench circuit against a
faithful copy of the pre-optimization serial engine (string-keyed nets,
per-event evaluator lookups, no compiled plan, no good-value reuse),
checks the optimized results are bit-identical to the baseline *and* to
the naive one-pattern-at-a-time reference oracle, and appends a
trajectory point to ``benchmarks/results/BENCH_engine.json`` so speedups
and engine counters can be tracked across revisions.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/test_perf_engine.py -s``

Knobs: ``REPRO_PERF_FAULTS`` (fault-sample cap, default 600),
``REPRO_PERF_BATCHES`` (64-pattern batches, default 3).
"""

from __future__ import annotations

import heapq
import json
import os
import random
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import pytest

from benchmarks.conftest import emit_report, get_library
from repro.bench import build_benchmark
from repro.faults.fsim import (
    PatternBatch,
    _cell_faulty_word,
    fault_simulate,
)
from repro.faults.model import (
    FALL,
    RISE,
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.faults.reference import reference_fault_simulate
from repro.faults.sites import enumerate_internal_faults
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import compile_cell_eval, simulate
from repro.utils.observability import EngineStats

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUIT = "aes_core"  # largest gate count in repro.bench.BENCHMARKS
N_FAULTS = int(os.environ.get("REPRO_PERF_FAULTS", "600"))
N_BATCHES = int(os.environ.get("REPRO_PERF_BATCHES", "3"))
WORKERS = 4
MIN_SPEEDUP = 2.0


# ----------------------------------------------------------------------
# Baseline: the seed engine's serial path, copied verbatim (modulo
# renames).  String-keyed value dicts, loads/topo lookups through the
# Circuit API, and an evaluator lookup per popped event — everything the
# compiled plan eliminates.  Kept here so the benchmark always compares
# against the same fixed starting point.
# ----------------------------------------------------------------------
class _BaselineContext:
    def __init__(self, circuit, cells, batch):
        self.circuit = circuit
        self.cells = cells
        self.mask = batch.mask
        self.good1 = simulate(circuit, cells, batch.frame1, self.mask)
        self.good2 = simulate(circuit, cells, batch.frame2, self.mask)
        self.topo_index = {g: i for i, g in enumerate(circuit.topo_order())}
        self.po_set = set(circuit.outputs)

    def propagate(self, overrides: Dict[str, int], activation: int) -> int:
        if not activation:
            return 0
        circuit, good = self.circuit, self.good2
        fv: Dict[str, int] = {}
        detect = 0
        heap: List[Tuple[int, str]] = []
        queued = set()

        def schedule_loads(net: str) -> None:
            for gname, _pin in circuit.loads(net):
                if gname not in queued:
                    queued.add(gname)
                    heapq.heappush(heap, (self.topo_index[gname], gname))

        for net, value in overrides.items():
            value &= self.mask
            if value != (good[net] & self.mask):
                fv[net] = value
                if net in self.po_set:
                    detect |= (value ^ good[net])
                schedule_loads(net)
        while heap:
            _, gname = heapq.heappop(heap)
            gate = circuit.gates[gname]
            if gate.output in overrides:
                continue
            cell = self.cells[gate.cell]
            fn = compile_cell_eval(len(cell.input_pins), cell.tt)
            ins = [
                fv.get(gate.pins[p], good[gate.pins[p]])
                for p in cell.input_pins
            ]
            new = fn(*ins, self.mask)
            old = fv.get(gate.output, good[gate.output])
            if new == old:
                continue
            fv[gate.output] = new
            if gate.output in self.po_set:
                detect |= (new ^ good[gate.output])
            queued.discard(gname)
            schedule_loads(gate.output)
        return detect & activation


def _baseline_branch_overrides(ctx, net, branch, forced):
    if branch is None:
        return {net: forced}, True
    gname, pin = branch
    gate = ctx.circuit.gates.get(gname)
    if gate is None or gate.pins.get(pin) != net:
        return {}, False
    cell = ctx.cells[gate.cell]
    fn = compile_cell_eval(len(cell.input_pins), cell.tt)
    ins = []
    for p in cell.input_pins:
        if p == pin:
            ins.append(forced & ctx.mask)
        else:
            ins.append(ctx.good2[gate.pins[p]])
    return {gate.output: fn(*ins, ctx.mask)}, True


def _baseline_simulate_one(ctx, fault: Fault) -> int:
    mask = ctx.mask
    circuit = ctx.circuit
    if isinstance(fault, StuckAtFault):
        if fault.net not in ctx.good2:
            return 0
        forced = mask if fault.value else 0
        overrides, ok = _baseline_branch_overrides(
            ctx, fault.net, fault.branch, forced)
        if not ok:
            return 0
        activation = (ctx.good2[fault.net] ^ forced) & mask
        return ctx.propagate(overrides, activation)
    if isinstance(fault, TransitionFault):
        if fault.net not in ctx.good2:
            return 0
        init = mask if fault.initial_value else 0
        initialized = ~(ctx.good1[fault.net] ^ init) & mask
        if not initialized:
            return 0
        forced = mask if fault.stuck_value else 0
        overrides, ok = _baseline_branch_overrides(
            ctx, fault.net, fault.branch, forced)
        if not ok:
            return 0
        activation = (ctx.good2[fault.net] ^ forced) & initialized
        return ctx.propagate(overrides, activation)
    if isinstance(fault, BridgingFault):
        if fault.victim not in ctx.good2 or fault.aggressor not in ctx.good2:
            return 0
        aggr = ctx.good2[fault.aggressor]
        activation = (ctx.good2[fault.victim] ^ aggr) & mask
        return ctx.propagate({fault.victim: aggr}, activation)
    if isinstance(fault, CellAwareFault):
        gate = circuit.gates.get(fault.gate)
        if gate is None:
            return 0
        cell = ctx.cells[gate.cell]
        in2 = [ctx.good2[gate.pins[p]] for p in cell.input_pins]
        good_out = ctx.good2[gate.output]
        frame1 = None
        if fault.defect.floating:
            frame1 = [ctx.good1[gate.pins[p]] for p in cell.input_pins]
        faulty = _cell_faulty_word(
            fault.defect, in2, good_out, mask, frame1_words=frame1)
        activation = (faulty ^ good_out) & mask
        return ctx.propagate({gate.output: faulty}, activation)
    raise TypeError(type(fault).__name__)


def baseline_fault_simulate(circuit, cells, faults, batch) -> List[int]:
    ctx = _BaselineContext(circuit, cells, batch)
    return [_baseline_simulate_one(ctx, f) for f in faults]


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def _workload() -> Tuple[Circuit, Dict, List[Fault], List[PatternBatch]]:
    library = get_library()
    cells = {c.name: c for c in library}
    circuit = build_benchmark(CIRCUIT, library)
    rng = random.Random(2019)
    faults: List[Fault] = list(enumerate_internal_faults(circuit, library))
    nets = list(circuit.inputs) + [
        g.output for g in circuit.gates.values()]
    for net in rng.sample(nets, min(120, len(nets))):
        faults.append(StuckAtFault(f"sa0:{net}", "g", net=net, value=0))
        faults.append(StuckAtFault(f"sa1:{net}", "g", net=net, value=1))
        faults.append(
            TransitionFault(f"tr:{net}", "g", net=net, slow_to=RISE))
        faults.append(
            TransitionFault(f"tf:{net}", "g", net=net, slow_to=FALL))
    for k in range(60):
        victim, aggressor = rng.sample(nets, 2)
        faults.append(BridgingFault(
            f"br{k}", "g", victim=victim, aggressor=aggressor))
    if len(faults) > N_FAULTS:
        faults = rng.sample(faults, N_FAULTS)
    batches = [
        PatternBatch.random(circuit, 64, seed=s) for s in range(N_BATCHES)]
    return circuit, cells, faults, batches


def _plan_compiles(circuit, cells) -> int:
    from repro.netlist.simulator import CompiledCircuit

    return CompiledCircuit.get(circuit, cells).eval_compiles


def _time_engine(fn, batches, repeats: int = 2) -> Tuple[float, List[List[int]]]:
    """Best-of-*repeats* wall time to simulate all *batches*."""
    best = float("inf")
    words: List[List[int]] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        words = [fn(b) for b in batches]
        best = min(best, time.perf_counter() - t0)
    return best, words


def test_engine_speedup_and_equivalence():
    circuit, cells, faults, batches = _workload()
    stats = EngineStats()

    t_base, base_words = _time_engine(
        lambda b: baseline_fault_simulate(circuit, cells, faults, b),
        batches)
    t_serial, serial_words = _time_engine(
        lambda b: fault_simulate(circuit, cells, faults, b, workers=1),
        batches)
    t_par, par_words = _time_engine(
        lambda b: fault_simulate(
            circuit, cells, faults, b, workers=WORKERS, stats=stats),
        batches)

    # Correctness first: optimized engine bit-identical to the seed
    # baseline, serial and parallel alike.
    assert serial_words == base_words
    assert par_words == base_words

    # Differential spot check against the naive oracle on a subset
    # (the oracle is O(faults x patterns x gates) — keep it small).
    sub_faults = faults[:: max(1, len(faults) // 30)]
    sub_batch = PatternBatch.random(circuit, 12, seed=99)
    got = fault_simulate(circuit, cells, sub_faults, sub_batch)
    want = reference_fault_simulate(circuit, cells, sub_faults, sub_batch)
    assert got == want

    speedup_serial = t_base / t_serial if t_serial else float("inf")
    speedup_par = t_base / t_par if t_par else float("inf")

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "circuit": CIRCUIT,
        "gates": len(circuit),
        "faults": len(faults),
        "batches": len(batches),
        "patterns_per_batch": 64,
        "workers": WORKERS,
        "baseline_seconds": round(t_base, 4),
        "engine_seconds": round(t_serial, 4),
        "engine_workers_seconds": round(t_par, 4),
        "speedup_serial": round(speedup_serial, 2),
        "speedup_workers": round(speedup_par, 2),
        "eval_compiles": _plan_compiles(circuit, cells),
        "stats": stats.as_dict(),
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_engine.json")
    trajectory: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(point)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    lines = [
        f"engine perf on {CIRCUIT} "
        f"({len(circuit)} gates, {len(faults)} faults, "
        f"{len(batches)}x64 patterns)",
        f"  baseline (seed serial): {t_base:.3f}s",
        f"  optimized workers=1:    {t_serial:.3f}s "
        f"({speedup_serial:.2f}x)",
        f"  optimized workers={WORKERS}:    {t_par:.3f}s "
        f"({speedup_par:.2f}x)",
        f"  events propagated: {stats.events_propagated}, "
        f"eval compiles: {_plan_compiles(circuit, cells)}",
    ]
    emit_report("BENCH_engine", "\n".join(lines))

    assert speedup_par >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over the seed serial engine, "
        f"got {speedup_par:.2f}x"
    )
