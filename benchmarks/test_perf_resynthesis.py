"""Performance harness for the two-phase resynthesis loop.

Runs the full Phase-1 + Phase-2 procedure (q swept 0..q_max) twice on
one bench circuit: once through a faithful copy of the seed serial
driver (one candidate at a time, full ``analyze_design`` re-analysis per
attempt, double ATPG per accepted attempt, no candidate reuse) and once
through the optimized loop (staged cached candidate evaluation,
speculative stage-1 pool, verdict inheritance, cone-scoped incremental
re-analysis).  Asserts the two produce the *identical* iteration trace
and final metrics, then asserts the speedup floor and appends a
trajectory point to ``benchmarks/results/BENCH_resynthesis.json``.

A machine-independent regression gate compares the measured speedup
(a ratio of two runs on the same machine) against the most recent
checked-in point for the same workload and fails on a >25% drop.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_resynthesis.py -s``

Knobs: ``REPRO_RESYN_CIRCUIT`` (default aes_core — the largest bench
circuit), ``REPRO_RESYN_QMAX`` (default 2), ``REPRO_RESYN_MAX_ITER``
(default 3), ``REPRO_RESYN_WORKERS`` (default 1),
``REPRO_RESYN_MIN_SPEEDUP`` (default 2.0).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Set, Tuple

import pytest

from benchmarks.conftest import emit_report, get_library
from repro.bench import build_benchmark
from repro.core import ResynthesisConfig, resynthesize_for_coverage
from repro.core.backtracking import backtrack_resynthesis
from repro.core.flow import (
    DesignState,
    analyze_design,
    count_undetectable_internal,
)
from repro.core.resynthesis import IterationRecord
from repro.faults.model import CellAwareFault
from repro.netlist.circuit import extract_subcircuit, replace_subcircuit
from repro.physical.pdesign import pdesign
from repro.physical.placement import PlacementError
from repro.synthesis.synthesize import is_complete_subset, synthesize
from repro.synthesis.techmap import TechmapError

pytestmark = [pytest.mark.perf, pytest.mark.slow]

CIRCUIT = os.environ.get("REPRO_RESYN_CIRCUIT", "aes_core")
Q_MAX = int(os.environ.get("REPRO_RESYN_QMAX", "2"))
MAX_ITER = int(os.environ.get("REPRO_RESYN_MAX_ITER", "3"))
WORKERS = int(os.environ.get("REPRO_RESYN_WORKERS", "1"))
MIN_SPEEDUP = float(os.environ.get("REPRO_RESYN_MIN_SPEEDUP", "2.0"))
REGRESSION_TOLERANCE = 1.25  # fail on a >25% speedup drop vs checked-in


# ----------------------------------------------------------------------
# Baseline: the seed's serial resynthesis driver, copied verbatim
# (modulo renames).  One candidate at a time; every attempt pays a full
# synthesize + PDesign, a full internal ATPG *and* a second full
# analyze_design ATPG when accepted-path; nothing is reused across
# attempts, phases, or q steps.  Kept here so the benchmark always
# compares against the same fixed starting point.
# ----------------------------------------------------------------------
class _BaselineResynthesizer:
    def __init__(self, library, orig: DesignState, cfg: ResynthesisConfig):
        self.library = library
        self.orig = orig
        self.cfg = cfg
        self.history: List[IterationRecord] = []
        self._order = library.order_by_internal_faults()

    def gates_with_undetectable_internal(
        self, state: DesignState
    ) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for fault in state.fault_set.internal:
            if fault.fault_id in state.atpg.undetectable:
                assert isinstance(fault, CellAwareFault)
                out[fault.gate] = out.get(fault.gate, 0) + 1
        return out

    def attempt(
        self,
        state: DesignState,
        replacement: Set[str],
        allowed: List[str],
        q: int,
        accept,
    ) -> Tuple[str, Optional[DesignState]]:
        if not replacement:
            return "synthfail", None
        sub = extract_subcircuit(state.circuit, replacement, name="csub")
        try:
            new_sub = synthesize(
                sub, self.library, allowed_cells=allowed,
                objective=self.cfg.objective,
            )
            candidate = replace_subcircuit(
                state.circuit, replacement, new_sub
            )
        except TechmapError:
            return "synthfail", None
        cells = {c.name: c for c in self.library}
        try:
            physical = pdesign(
                candidate, cells,
                floorplan=self.orig.physical.floorplan,
                seed=self.cfg.seed,
            )
        except PlacementError:
            return "constraints", None
        if not physical.meets_constraints(self.orig.physical, q):
            return "constraints", None
        known_undet = state.undetectable_behaviour_keys()
        u_in_new = count_undetectable_internal(
            candidate, self.library,
            initial_tests=state.tests, atpg_seed=self.cfg.seed,
            assume_undetectable=known_undet,
        )
        if u_in_new >= state.u_internal:
            return "rejected", None
        cand_state = analyze_design(
            candidate, self.library,
            seed=self.cfg.seed,
            guidelines=self.cfg.guidelines,
            initial_tests=state.tests,
            atpg_seed=self.cfg.seed,
            assume_undetectable=known_undet,
            physical=physical,
        )
        if accept(cand_state, state):
            return "accepted", cand_state
        return "rejected", None

    def resynthesize_once(
        self,
        state: DesignState,
        csub_gates: Set[str],
        q: int,
        phase: int,
        accept,
    ) -> Optional[DesignState]:
        u_int_by_gate = self.gates_with_undetectable_internal(state)
        g_zero = {g for g in csub_gates if u_int_by_gate.get(g, 0) == 0}
        replacement_base = set(csub_gates) - g_zero
        if not replacement_base:
            return None
        used_cells = {
            state.circuit.gates[g].cell for g in replacement_base
        }
        u_trend: List[int] = []
        for i, cell_i in enumerate(self._order[:-1]):
            if cell_i.name not in used_cells:
                continue
            if not any(
                state.circuit.gates[g].cell == cell_i.name
                for g in replacement_base
            ):
                continue
            rest = self._order[i + 1:]
            if not is_complete_subset(rest):
                break
            allowed = [c.name for c in rest]

            def accept_and_track(cand: DesignState, cur: DesignState) -> bool:
                u_trend.append(cand.u_total)
                return accept(cand, cur)

            status, cand = self.attempt(
                state, replacement_base, allowed, q, accept_and_track
            )
            self.history.append(IterationRecord(
                phase=phase, q=q, csub_size=len(replacement_base),
                excluded_upto=cell_i.name, status=status,
                u_total=cand.u_total if cand else None,
                smax=cand.smax_size if cand else None,
            ))
            if status == "accepted":
                return cand
            if status == "constraints":
                g_i = [
                    g for g in sorted(replacement_base)
                    if self._cell_index(state.circuit.gates[g].cell) <= i
                ]
                g_i.sort(key=lambda g: (-u_int_by_gate.get(g, 0), g))
                back = backtrack_resynthesis(
                    replacement_base, g_i,
                    lambda repl: self.attempt(
                        state, repl, allowed, q, accept_and_track
                    ),
                )
                if back is not None:
                    self.history.append(IterationRecord(
                        phase=phase, q=q, csub_size=len(replacement_base),
                        excluded_upto=cell_i.name,
                        status="backtrack-accepted",
                        u_total=back.u_total, smax=back.smax_size,
                    ))
                    return back
            w = self.cfg.trend_window
            if len(u_trend) > w and all(
                u_trend[-j] > u_trend[-j - 1] for j in range(1, w + 1)
            ):
                break
        return None

    def _cell_index(self, cell_name: str) -> int:
        for i, cell in enumerate(self._order):
            if cell.name == cell_name:
                return i
        raise KeyError(cell_name)

    def run_phase1(self, state: DesignState, q: int) -> DesignState:
        for _ in range(self.cfg.max_iterations_per_phase):
            if state.u_total == 0:
                break
            if state.smax_fraction_of_f <= self.cfg.p1:
                break

            def accept(cand: DesignState, cur: DesignState) -> bool:
                return (
                    cand.smax_size < cur.smax_size
                    and cand.u_total <= cur.u_total
                )

            new = self.resynthesize_once(
                state, state.clusters.gmax, q, phase=1, accept=accept
            )
            if new is None:
                break
            state = new
        return state

    def run_phase2(self, state: DesignState, q: int) -> DesignState:
        p2 = max(self.cfg.p1, state.smax_fraction_of_f)
        for _ in range(self.cfg.max_iterations_per_phase):
            if state.u_total == 0:
                break

            def accept(cand: DesignState, cur: DesignState) -> bool:
                return (
                    cand.u_total < cur.u_total
                    and cand.smax_fraction_of_f <= p2
                )

            new = self.resynthesize_once(
                state, state.clusters.gates_u, q, phase=2, accept=accept
            )
            if new is None:
                break
            state = new
        return state


def baseline_resynthesize(circuit, library, cfg: ResynthesisConfig):
    """The seed's ``resynthesize_for_coverage``, serial end to end."""
    orig = analyze_design(
        circuit, library, seed=cfg.seed, utilization=cfg.utilization,
        guidelines=cfg.guidelines, atpg_seed=cfg.seed,
    )
    driver = _BaselineResynthesizer(library, orig, cfg)
    state = orig
    per_q: Dict[int, DesignState] = {}
    for q in range(cfg.q_max + 1):
        state = driver.run_phase1(state, q)
        state = driver.run_phase2(state, q)
        per_q[q] = state
    final = per_q[cfg.q_max]
    q_used = cfg.q_max
    for q in range(cfg.q_max + 1):
        if per_q[q].coverage >= final.coverage:
            q_used = q
            break
    return per_q[q_used], q_used, driver.history


# ----------------------------------------------------------------------
def _trace(history: List[IterationRecord]) -> List[tuple]:
    return [
        (h.phase, h.q, h.csub_size, h.excluded_upto, h.status,
         h.u_total, h.smax)
        for h in history
    ]


def _gate_signature(state: DesignState) -> List[Tuple[str, str]]:
    return sorted(
        (name, gate.cell) for name, gate in state.circuit.gates.items()
    )


def _results_path() -> str:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    return os.path.join(results_dir, "BENCH_resynthesis.json")


def _reference_speedup(trajectory: List[dict]) -> Optional[float]:
    """Most recent checked-in speedup for this exact workload."""
    for point in reversed(trajectory):
        if (
            point.get("circuit") == CIRCUIT
            and point.get("q_max") == Q_MAX
            and point.get("max_iterations_per_phase") == MAX_ITER
        ):
            return float(point["speedup"])
    return None


def test_resynthesis_speedup_and_identical_trace():
    library = get_library()
    circuit = build_benchmark(CIRCUIT, library)

    t0 = time.perf_counter()
    base_final, base_q_used, base_history = baseline_resynthesize(
        build_benchmark(CIRCUIT, library), library,
        ResynthesisConfig(q_max=Q_MAX, max_iterations_per_phase=MAX_ITER),
    )
    t_base = time.perf_counter() - t0

    cfg = ResynthesisConfig(
        q_max=Q_MAX, max_iterations_per_phase=MAX_ITER,
        workers=WORKERS, incremental=True,
    )
    t0 = time.perf_counter()
    opt = resynthesize_for_coverage(circuit, library, cfg)
    t_opt = time.perf_counter() - t0

    # Correctness gate first: the optimized loop must retrace the seed
    # serial loop exactly — every attempt, every status, every accepted
    # candidate, and the final metrics.
    assert _trace(opt.history) == _trace(base_history)
    assert opt.q_used == base_q_used
    assert opt.final.u_total == base_final.u_total
    assert opt.final.smax_size == base_final.smax_size
    assert opt.final.smax_fraction_of_f == base_final.smax_fraction_of_f
    assert _gate_signature(opt.final) == _gate_signature(base_final)
    assert opt.final.atpg.undetectable == base_final.atpg.undetectable

    speedup = t_base / t_opt if t_opt else float("inf")
    accepted = sum(
        1 for h in opt.history
        if h.status in ("accepted", "backtrack-accepted")
    )

    path = _results_path()
    trajectory: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    reference = _reference_speedup(trajectory)

    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "circuit": CIRCUIT,
        "gates": len(circuit),
        "q_max": Q_MAX,
        "max_iterations_per_phase": MAX_ITER,
        "workers": WORKERS,
        "baseline_seconds": round(t_base, 2),
        "optimized_seconds": round(t_opt, 2),
        "speedup": round(speedup, 2),
        "identical_trace": True,
        "iterations": len(opt.history),
        "accepted_iterations": accepted,
        "final_u_total": opt.final.u_total,
        "final_smax_fraction": round(opt.final.smax_fraction_of_f, 6),
        "q_used": opt.q_used,
        "stats": opt.stats.as_dict(),
    }
    trajectory.append(point)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")

    eng = opt.stats.engine
    lines = [
        f"resynthesis perf on {CIRCUIT} "
        f"({len(circuit)} gates, q_max={Q_MAX}, "
        f"max_iter={MAX_ITER}, workers={WORKERS})",
        f"  seed serial loop:  {t_base:.1f}s "
        f"({len(base_history)} iterations)",
        f"  optimized loop:    {t_opt:.1f}s ({speedup:.2f}x), "
        f"identical trace, {accepted} accepted",
        f"  candidates: {opt.stats.candidates_evaluated} evaluated, "
        f"{opt.stats.candidate_cache_hits} cache hits, "
        f"{opt.stats.candidates_speculated} speculated "
        f"({opt.stats.candidates_wasted} wasted)",
        f"  verdicts: {eng.verdicts_inherited} inherited, "
        f"{eng.verdicts_proved} proved; "
        f"faults: {eng.faults_carried} carried, "
        f"{eng.faults_extracted} extracted; "
        f"clusters: {eng.clusters_reused} reused, "
        f"{eng.clusters_recomputed} recomputed",
    ]
    emit_report("BENCH_resynthesis", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over the seed serial loop, "
        f"got {speedup:.2f}x"
    )
    if reference is not None:
        assert speedup >= reference / REGRESSION_TOLERANCE, (
            f"speedup regressed: {speedup:.2f}x vs checked-in "
            f"{reference:.2f}x (tolerance {REGRESSION_TOLERANCE}x)"
        )
