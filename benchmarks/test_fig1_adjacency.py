"""Experiment E3 — Fig. 1: the structural adjacency definition.

Fig. 1 of the paper illustrates three two-gate configurations and states
that "gates g1 and g2 are only adjacent in (c)" — i.e. adjacency means
one gate directly drives the other; sharing a fanin (a) or sharing a
fanout (b) does not count.  This benchmark regenerates that data point
from our implementation of the definition.
"""

from __future__ import annotations

from repro.core import are_adjacent
from repro.faults.model import StuckAtFault
from repro.netlist import Circuit


def _gate_fault(circuit, gate):
    """A fault that corresponds exactly to *gate* (branch input fault)."""
    g = circuit.gates[gate]
    pin, net = next(iter(g.pins.items()))
    drv = circuit.driver(net)
    assert drv is None, "use a PI-driven pin for a single-gate fault"
    return StuckAtFault(
        f"sa0:{net}:{gate}", "VIA-01", net=net, value=0, branch=(gate, pin)
    )


def _case_a():
    """(a): g1 and g2 share an input."""
    c = Circuit("fig1a")
    c.add_input("x")
    c.add_input("y")
    c.add_input("z")
    c.add_gate("g1", "NAND2X1", {"A": "x", "B": "y"}, "p")
    c.add_gate("g2", "NAND2X1", {"A": "x", "B": "z"}, "q")
    c.set_outputs(["p", "q"])
    return c


def _case_b():
    """(b): g1 and g2 drive the same gate (share a fanout)."""
    c = Circuit("fig1b")
    for pi in ("x", "y", "z", "w"):
        c.add_input(pi)
    c.add_gate("g1", "NAND2X1", {"A": "x", "B": "y"}, "p")
    c.add_gate("g2", "NAND2X1", {"A": "z", "B": "w"}, "q")
    c.add_gate("g3", "NAND2X1", {"A": "p", "B": "q"}, "r")
    c.set_outputs(["r"])
    return c


def _case_c():
    """(c): g1 directly drives g2."""
    c = Circuit("fig1c")
    c.add_input("x")
    c.add_input("y")
    c.add_input("z")
    c.add_gate("g1", "NAND2X1", {"A": "x", "B": "y"}, "p")
    c.add_gate("g2", "NAND2X1", {"A": "p", "B": "z"}, "q")
    c.set_outputs(["q"])
    return c


def _evaluate():
    results = {}
    for label, build in (("a", _case_a), ("b", _case_b), ("c", _case_c)):
        circuit = build()
        f1 = _gate_fault(circuit, "g1")
        # g2's PI-driven pin differs per case.
        g2 = circuit.gates["g2"]
        pin, net = next(
            (p, n) for p, n in g2.pins.items()
            if circuit.driver(n) is None
        )
        f2 = StuckAtFault(
            f"sa0:{net}:g2", "VIA-01", net=net, value=0, branch=("g2", pin)
        )
        results[label] = are_adjacent(f1, f2, circuit)
    return results


def test_fig1_adjacency(benchmark):
    results = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    from benchmarks.conftest import emit_report
    emit_report("fig1", (
        "Fig. 1: faults on g1/g2 adjacent?  "
        f"(a) shared fanin: {results['a']}, "
        f"(b) shared fanout: {results['b']}, "
        f"(c) direct drive: {results['c']}"))
    # "gates g1 and g2 are only adjacent in (c)".
    assert results == {"a": False, "b": False, "c": True}
