"""repro — reproduction of "Resynthesis for Avoiding Undetectable Faults
Based on Design-for-Manufacturability Guidelines" (DATE 2019).

Public API highlights:

* :func:`repro.library.osu018_library` — the 21-cell library with
  switch-level DFM defect models;
* :func:`repro.bench.build_benchmark` — the twelve benchmark circuits;
* :func:`repro.core.analyze_design` — one flow iteration: PDesign() +
  DFM fault extraction + exact ATPG + clustering;
* :func:`repro.core.resynthesize_for_coverage` — the paper's two-phase
  resynthesis procedure with the q = 0..5 constraint schedule.
"""

from repro.core import (
    ResynthesisConfig,
    ResynthesisResult,
    analyze_design,
    resynthesize_for_coverage,
)
from repro.library import osu018_library

__version__ = "1.0.0"

__all__ = [
    "ResynthesisConfig",
    "ResynthesisResult",
    "analyze_design",
    "resynthesize_for_coverage",
    "osu018_library",
    "__version__",
]
