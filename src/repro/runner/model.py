"""Task and campaign model of the experiment orchestrator.

A :class:`TaskSpec` describes one idempotent unit of work: a registered
task *kind* plus JSON parameters, its dependencies, and its execution
policy (timeout / retries / backoff / isolation).  A
:class:`CampaignSpec` is a named DAG of tasks; it validates to a
deterministic topological order, serializes to ``campaign.json`` inside
the run directory, and is what ``resume`` reloads after a crash.

Fingerprints implement the same content-keying discipline as the
resynthesis evaluation cache: a task's fingerprint hashes its kind,
parameters, kind-specific input digest (for circuit tasks: a structural
hash of the built benchmark netlist and the library variant),
code-relevant environment knobs, and — Merkle-style — the fingerprints
of its dependencies.  On resume, a journaled ``ok`` result is reused
only when its recorded fingerprint still matches; any config, circuit,
env, or upstream change re-executes exactly the affected cone.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

# Environment knobs that change what experiment tasks compute.  They are
# folded into every fingerprint so a resume under different knobs
# re-executes instead of serving stale cached results.
ENV_KNOBS = ("REPRO_SCALE", "REPRO_QMAX", "REPRO_MAX_ITER")

# Knobs that change *how* tasks execute but never their results
# (supervision deadlines, parallelism, chaos injection).  They are
# journaled on run_start for diagnosability — a hang reaped under a
# 0.5 s shard deadline reads very differently from one under 30 s —
# but kept out of fingerprints on purpose: a resume on a machine with
# different resilience settings must reuse completed work, not redo it.
OBSERVED_ENV_KNOBS = (
    "REPRO_SIM_EXEC",
    "REPRO_SIM_WORKERS",
    "REPRO_RUN_JOBS",
    "REPRO_RUN_CORES",
    "REPRO_JOURNAL_FSYNC",
    "REPRO_SUPERVISE_SHARD_TIMEOUT",
    "REPRO_SUPERVISE_POLL_MS",
    "REPRO_SUPERVISE_BREAKER_THRESHOLD",
    "REPRO_SUPERVISE_BREAKER_COOLDOWN",
    "REPRO_CHAOS",
)

# Task parameters that tune execution performance without changing the
# computed result (worker pools are bit-identical to serial by
# contract).  Excluded from fingerprints so a campaign resumed with a
# different parallelism — or scheduled concurrently with
# ledger-negotiated worker counts — reuses completed work instead of
# re-running the whole DAG.
PERF_PARAMS = ("workers", "exec_mode")


class CampaignError(ValueError):
    """Invalid campaign: duplicate ids, unknown deps, or cycles."""


@dataclass(frozen=True)
class TaskSpec:
    """One idempotent task of a campaign."""

    task_id: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    timeout: Optional[float] = None  # wall-clock seconds per attempt
    retries: int = 0  # extra attempts after the first failure
    backoff: float = 1.0  # base backoff seconds, doubled per retry
    isolation: str = "inline"  # "inline" | "process"

    def __post_init__(self):
        if self.isolation not in ("inline", "process"):
            raise CampaignError(
                f"task {self.task_id}: unknown isolation {self.isolation!r}"
            )
        if self.retries < 0:
            raise CampaignError(f"task {self.task_id}: negative retries")

    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.task_id,
            "kind": self.kind,
            "params": dict(self.params),
            "deps": list(self.deps),
            "timeout": self.timeout,
            "retries": self.retries,
            "backoff": self.backoff,
            "isolation": self.isolation,
        }

    @staticmethod
    def from_json(data: Mapping[str, object]) -> "TaskSpec":
        return TaskSpec(
            task_id=str(data["id"]),
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
            deps=tuple(data.get("deps", ())),
            timeout=data.get("timeout"),
            retries=int(data.get("retries", 0)),
            backoff=float(data.get("backoff", 1.0)),
            isolation=str(data.get("isolation", "inline")),
        )


@dataclass
class CampaignSpec:
    """A named DAG of tasks plus free-form campaign metadata."""

    run_id: str
    tasks: List[TaskSpec] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def by_id(self) -> Dict[str, TaskSpec]:
        out: Dict[str, TaskSpec] = {}
        for spec in self.tasks:
            if spec.task_id in out:
                raise CampaignError(f"duplicate task id {spec.task_id!r}")
            out[spec.task_id] = spec
        return out

    def topo_order(self) -> List[TaskSpec]:
        """Deterministic topological order (declaration order, deps first)."""
        by_id = self.by_id()
        for spec in self.tasks:
            for dep in spec.deps:
                if dep not in by_id:
                    raise CampaignError(
                        f"task {spec.task_id}: unknown dep {dep!r}"
                    )
        order: List[TaskSpec] = []
        state: Dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(spec: TaskSpec) -> None:
            mark = state.get(spec.task_id)
            if mark == 2:
                return
            if mark == 1:
                raise CampaignError(
                    f"dependency cycle through {spec.task_id!r}"
                )
            state[spec.task_id] = 1
            for dep in spec.deps:
                visit(by_id[dep])
            state[spec.task_id] = 2
            order.append(spec)

        for spec in self.tasks:
            visit(spec)
        return order

    def to_json(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "meta": dict(self.meta),
            "tasks": [spec.to_json() for spec in self.tasks],
        }

    @staticmethod
    def from_json(data: Mapping[str, object]) -> "CampaignSpec":
        return CampaignSpec(
            run_id=str(data["run_id"]),
            tasks=[TaskSpec.from_json(t) for t in data.get("tasks", ())],
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @staticmethod
    def load(path: str) -> "CampaignSpec":
        with open(path) as fh:
            return CampaignSpec.from_json(json.load(fh))


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------

def _canonical(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def env_knobs(env: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
    """The code-relevant environment knobs folded into fingerprints."""
    src = os.environ if env is None else env
    return {k: src[k] for k in ENV_KNOBS if k in src}


def observed_env_knobs(
    env: Optional[Mapping[str, str]] = None,
) -> Dict[str, str]:
    """Execution-only knobs recorded in the journal, not fingerprinted."""
    src = os.environ if env is None else env
    return {k: src[k] for k in OBSERVED_ENV_KNOBS if k in src}


def fingerprint_task(
    spec: TaskSpec,
    dep_fingerprints: Mapping[str, str],
    extra: object = None,
    env: Optional[Mapping[str, str]] = None,
) -> str:
    """Content fingerprint of one task.

    *extra* is the kind-specific input digest (e.g. the structural hash
    of the benchmark circuit a task analyzes) provided by the task
    registry; *dep_fingerprints* chains the fingerprints of the task's
    dependencies, so an upstream change invalidates the whole cone.
    :data:`PERF_PARAMS` are dropped from the hashed parameters — they
    steer the execution shape, never the result.
    """
    params = {
        k: v for k, v in spec.params.items() if k not in PERF_PARAMS
    }
    body = {
        "kind": spec.kind,
        "params": params,
        "extra": extra,
        "env": env_knobs(env),
        "deps": {d: dep_fingerprints[d] for d in spec.deps},
    }
    digest = hashlib.sha256(_canonical(body).encode()).hexdigest()
    return f"sha256:{digest}"


def fingerprint_campaign(
    campaign: CampaignSpec,
    env: Optional[Mapping[str, str]] = None,
) -> Dict[str, str]:
    """Fingerprints for every task of *campaign*, in one pass."""
    from repro.runner.registry import fingerprint_extra

    fps: Dict[str, str] = {}
    for spec in campaign.topo_order():
        fps[spec.task_id] = fingerprint_task(
            spec, fps, extra=fingerprint_extra(spec.kind, spec.params),
            env=env,
        )
    return fps


def structural_circuit_hash(circuit) -> str:
    """Order-independent structural digest of a gate-level netlist."""
    h = hashlib.sha256()
    h.update(_canonical(list(circuit.inputs)).encode())
    h.update(_canonical(list(circuit.outputs)).encode())
    for name in sorted(circuit.gates):
        gate = circuit.gates[name]
        h.update(
            _canonical(
                [name, gate.cell, sorted(gate.pins.items()), gate.output]
            ).encode()
        )
    return f"sha256:{h.hexdigest()}"
