"""DAG execution: concurrency, timeouts, retries, isolation, resume.

:class:`Runner` executes a :class:`~repro.runner.model.CampaignSpec`
either serially in deterministic topological order (``jobs=1``) or with
a **ready-set scheduler** (``jobs>1`` / ``REPRO_RUN_JOBS``, default =
CPU count): tasks whose dependencies are all settled dispatch
concurrently onto a bounded thread pool, and a process-global
:class:`~repro.utils.supervise.CoreLedger` arbitrates cores between the
scheduler and the inner psim/patpg pools — a task running alone may
claim every core, four peers get a quarter each, renegotiated at every
pool dispatch as peers finish.  Around every task it journals
``task_start`` / ``task_end`` events (fsync'd before proceeding), so the
run directory always reflects exactly what has finished — a SIGKILL,
OOM, or power cut mid-campaign loses at most the tasks that were
running.

Concurrency changes *when* tasks run, never *what* they compute: journal
events are task-keyed so replay / ``diff`` / resume are insensitive to
interleaving, outcomes are re-ordered to campaign topological order
before the report is built, and worker-count negotiation only touches
execution-shape counters (all volatile under
:func:`~repro.runner.report.normalize_report`) — a ``jobs=4`` report
normalizes bit-identical to a serial one.

Execution policy per task:

* **timeout** — wall-clock bound per attempt.  Process-isolated tasks
  are killed preemptively; inline tasks run on a daemon worker thread
  that is abandoned on timeout (best-effort — use ``isolation:
  "process"`` for tasks that must be preemptible).  Either way the
  timeout also enters the engine as a *deadline*: inline bodies run
  inside a :func:`repro.utils.supervise.deadline_scope`, and
  process-isolated workers inherit it via ``REPRO_SUPERVISE_DEADLINE``,
  so shard dispatch and SAT solving bound themselves instead of relying
  on the kill backstop.  An abandoned inline thread is journaled as the
  coded ``RUN-THREAD-ABANDONED`` warning and counted in the report —
  the thread still occupies the interpreter until its body returns.
* **retries / backoff** — a failed attempt is retried up to ``retries``
  times, sleeping ``backoff * 2**(attempt-1)`` seconds in between; every
  retry is journaled.
* **isolation** — ``"process"`` runs the task in a fresh interpreter
  (``python -m repro.runner._worker``): heavy tasks cannot corrupt or
  OOM the orchestrator, and their timeouts are enforced with a kill.

Resume replays the journal and re-executes only tasks that are missing,
failed, interrupted, or whose input fingerprint changed; completed tasks
are reused from their journaled payloads (``task_cached`` events record
every reuse).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.runner.journal import Journal, RunLedger, read_journal, replay
from repro.runner.model import (
    CampaignSpec,
    TaskSpec,
    env_knobs,
    fingerprint_task,
    observed_env_knobs,
)
from repro.runner.registry import TaskContext, fingerprint_extra, get_task
from repro.runner.report import build_report, write_report
from repro.utils.supervise import (
    activate_lease,
    core_ledger,
    current_lease,
    deadline_scope,
)

DEFAULT_RUNS_ROOT = os.path.join("benchmarks", "results", "runs")


def resolve_run_jobs(jobs: Optional[int] = None) -> int:
    """Scheduler width; ``None`` falls back to ``REPRO_RUN_JOBS`` (CPUs).

    ``--jobs`` / an explicit argument wins over the environment; the
    default saturates the machine with one in-flight task per core
    (inner pools then negotiate their own share off the core ledger).
    """
    if jobs is None:
        raw = os.environ.get("REPRO_RUN_JOBS", "").strip()
        jobs = int(raw) if raw else (os.cpu_count() or 1)
    return max(1, int(jobs))

# Coded warning: an inline task hit its timeout and its worker thread
# was abandoned (daemon threads cannot be killed).  Journaled as a
# ``warning`` event and counted in the report's runtime_warnings.
CODE_THREAD_ABANDONED = "RUN-THREAD-ABANDONED"


class TaskFailure(Exception):
    """One attempt failed; ``status`` is ``failed`` or ``timeout``."""

    def __init__(self, message: str, status: str = "failed"):
        super().__init__(message)
        self.status = status


@dataclass
class TaskOutcome:
    """Terminal state of one task within this orchestrator process."""

    task_id: str
    kind: str
    status: str  # "ok" | "cached" | "failed" | "timeout" | "skipped"
    payload: Optional[dict] = None
    duration: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload,
            "duration": self.duration,
            "attempts": self.attempts,
        }


@dataclass
class Runner:
    """Executes one campaign against one run directory."""

    campaign: CampaignSpec
    root: str = DEFAULT_RUNS_ROOT
    store: Optional[dict] = None
    # Failure-injection hook: called right after a task_start event is
    # journaled, before the task body runs (used by tests/CI to SIGKILL
    # the orchestrator mid-task).
    on_task_start: Optional[Callable[[str, int], None]] = None
    sleep: Callable[[float], None] = time.sleep
    # Scheduler width: None resolves via REPRO_RUN_JOBS / CPU count at
    # execute() time; 1 is the historical serial path, bit-for-bit.
    jobs: Optional[int] = None
    # Minimum seconds between campaign.json rewrites for lazily-added
    # tasks (the incremental execute_spec API); finalize and dispatch
    # waves always flush, so a crash loses at most this window.
    campaign_save_interval: float = 1.0

    outcomes: "OrderedDict[str, TaskOutcome]" = field(
        default_factory=OrderedDict
    )

    def __post_init__(self):
        self.run_dir = os.path.join(self.root, self.campaign.run_id)
        self.journal: Optional[Journal] = None
        self.ledger: RunLedger = RunLedger()
        self._fps: Dict[str, str] = {}
        self._known = {t.task_id for t in self.campaign.tasks}
        # code -> count of runtime warnings this orchestrator life saw
        # (abandoned threads, ...); folded into the final report.
        self.runtime_warnings: Dict[str, int] = {}
        self._warn_lock = threading.Lock()
        self._campaign_dirty = False
        self._campaign_saved_at = 0.0
        # Scheduler observability for the report's UTILIZATION section
        # (populated only by the concurrent path).
        self.scheduler_info: Optional[dict] = None

    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "journal.jsonl")

    @property
    def campaign_path(self) -> str:
        return os.path.join(self.run_dir, "campaign.json")

    def _ensure_started(self) -> None:
        if self.journal is not None:
            return
        os.makedirs(self.run_dir, exist_ok=True)
        prior = (
            read_journal(self.journal_path)
            if os.path.exists(self.journal_path) else []
        )
        self.ledger = replay(prior)
        self.campaign.save(self.campaign_path)
        self._campaign_dirty = False
        self._campaign_saved_at = time.monotonic()
        self.journal = Journal(self.journal_path)
        if not prior:
            self.journal.append({
                "event": "run_start",
                "run_id": self.campaign.run_id,
                "n_tasks": len(self.campaign.tasks),
                "env": env_knobs(),
                "env_observed": observed_env_knobs(),
                "meta": dict(self.campaign.meta),
            })
        else:
            self.journal.append({
                "event": "run_resume",
                "run_id": self.campaign.run_id,
            })

    def _save_campaign(self, force: bool = False) -> None:
        """Debounced campaign.json rewrite (satellite of the scheduler PR).

        The incremental :meth:`execute_spec` API used to rewrite the
        whole campaign file per lazily-added task — O(n²) bytes over a
        benchmark harness.  A dirty flag plus a minimum save interval
        makes the cost time-bound; finalize and every dispatch wave
        flush unconditionally so resumability windows stay small.
        """
        if not self._campaign_dirty:
            return
        now = time.monotonic()
        if not force and (
            now - self._campaign_saved_at < self.campaign_save_interval
        ):
            return
        self.campaign.save(self.campaign_path)
        self._campaign_dirty = False
        self._campaign_saved_at = now

    # ------------------------------------------------------------------
    def execute(self) -> dict:
        """Run every task and finalize the report.

        ``jobs=1``: the historical serial loop in topological order.
        ``jobs>1``: the ready-set scheduler — same journal schema, same
        resume discipline, same normalized report.
        """
        order = self.campaign.topo_order()  # validates before any I/O
        self._ensure_started()
        jobs = resolve_run_jobs(self.jobs)
        if jobs <= 1 or len(order) <= 1:
            for spec in order:
                self._execute_spec(spec)
        else:
            self._execute_concurrent(order, jobs)
        return self.finalize()

    def execute_spec(self, spec: TaskSpec) -> TaskOutcome:
        """Incremental API: append *spec* to the campaign and run it.

        Used by the pytest benchmark harness, which discovers its tasks
        lazily; the campaign file is rewritten (debounced) so the run
        stays resumable.
        """
        if spec.task_id not in self._known:
            self.campaign.tasks.append(spec)
            self._known.add(spec.task_id)
            self._ensure_started()
            self._campaign_dirty = True
            self._save_campaign()
        else:
            self._ensure_started()
        return self._execute_spec(spec)

    def finalize(self) -> dict:
        """Journal the aggregated report and the run_end event."""
        self._ensure_started()
        self._save_campaign(force=True)
        # Report determinism under concurrency: outcomes settle in
        # completion order, which interleaving makes nondeterministic;
        # the report always presents them in campaign topological order.
        ordered: "OrderedDict[str, TaskOutcome]" = OrderedDict()
        for spec in self.campaign.topo_order():
            if spec.task_id in self.outcomes:
                ordered[spec.task_id] = self.outcomes[spec.task_id]
        for tid, outcome in self.outcomes.items():
            if tid not in ordered:
                ordered[tid] = outcome
        self.outcomes = ordered
        failed = [o for o in self.outcomes.values() if not o.ok]
        status = "failed" if failed else "ok"
        report = build_report(
            self.campaign.meta,
            self.campaign.run_id,
            OrderedDict(
                (tid, o.as_dict()) for tid, o in self.outcomes.items()
            ),
            runtime_warnings=self.runtime_warnings,
            scheduler=self.scheduler_info,
        )
        self.journal.append({"event": "report", "report": report})
        write_report(self.run_dir, report)
        self.journal.append({
            "event": "run_end",
            "run_id": self.campaign.run_id,
            "status": status,
        })
        self.journal.close()
        self.journal = None
        return report

    # ------------------------------------------------------------------
    def _fingerprint(self, spec: TaskSpec) -> str:
        fp = self._fps.get(spec.task_id)
        if fp is None:
            missing = [d for d in spec.deps if d not in self._fps]
            for dep in missing:
                raise RuntimeError(
                    f"task {spec.task_id}: dep {dep} not yet fingerprinted"
                )
            fp = fingerprint_task(
                spec, self._fps,
                extra=fingerprint_extra(spec.kind, spec.params),
            )
            self._fps[spec.task_id] = fp
        return fp

    def _settle_fast(self, spec: TaskSpec) -> Optional[TaskOutcome]:
        """Settle *spec* without running it, if possible.

        Fingerprints the task (deps must already be settled), then
        resolves the no-execution outcomes: already done this life,
        journaled-complete with a matching fingerprint (``task_cached``),
        or skipped because a dependency failed.  Returns ``None`` when
        the task genuinely needs an execution attempt.  Runs on the
        scheduler thread only, so fingerprint and journal bookkeeping
        stay single-writer.
        """
        done = self.outcomes.get(spec.task_id)
        if done is not None:
            return done
        fp = self._fingerprint(spec)

        # Completed in a previous orchestrator life with the same
        # fingerprint: reuse the journaled result, re-execute nothing.
        cached = self.ledger.completed(spec.task_id, fp)
        if cached is not None:
            self.journal.append({
                "event": "task_cached",
                "task": spec.task_id,
                "fingerprint": fp,
            })
            outcome = TaskOutcome(
                spec.task_id, spec.kind, "cached",
                payload=cached.payload, duration=cached.duration,
                attempts=cached.attempts,
            )
            self.outcomes[spec.task_id] = outcome
            return outcome

        bad_deps = [
            d for d in spec.deps if not self.outcomes[d].ok
        ]
        if bad_deps:
            self.journal.append({
                "event": "task_skipped",
                "task": spec.task_id,
                "reason": "dep-failed",
                "deps": bad_deps,
            })
            outcome = TaskOutcome(
                spec.task_id, spec.kind, "skipped",
                error=f"dependencies failed: {bad_deps}",
            )
            self.outcomes[spec.task_id] = outcome
            return outcome
        return None

    def _execute_spec(self, spec: TaskSpec) -> TaskOutcome:
        outcome = self._settle_fast(spec)
        if outcome is not None:
            return outcome
        outcome = self._run_attempts(spec, self._fps[spec.task_id])
        self.outcomes[spec.task_id] = outcome
        return outcome

    # ------------------------------------------------------------------
    # Ready-set scheduler (jobs > 1)
    # ------------------------------------------------------------------
    def _execute_concurrent(self, order: List[TaskSpec], jobs: int) -> None:
        """Dispatch ready tasks onto a bounded pool until the DAG drains.

        A task is *ready* when every dependency has an outcome.  Ready
        tasks are settled fast-path first (cached / skipped — these may
        unblock dependents within the same wave); the remainder are
        submitted to the pool, each wrapped in a core-ledger lease so
        the inner engine pools size themselves off the live peer count.
        The scheduler thread is the only writer of ``outcomes``, the
        fingerprint map, and the campaign file; worker threads only
        journal their own task events (the journal is thread-safe) and
        return their outcome through the future.
        """
        ledger = core_ledger()
        ledger.configure()  # re-read REPRO_RUN_CORES at execute time
        started = time.perf_counter()
        pending: "OrderedDict[str, TaskSpec]" = OrderedDict(
            (s.task_id, s) for s in order
        )
        in_flight: Dict[Future, str] = {}
        spans: Dict[str, Dict[str, float]] = {}
        peak_in_flight = 0
        base_grants = ledger.total_grants
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-sched"
        ) as pool:
            while pending or in_flight:
                progressed = True
                while progressed:
                    progressed = False
                    for task_id in list(pending):
                        spec = pending[task_id]
                        if any(d not in self.outcomes for d in spec.deps):
                            continue
                        del pending[task_id]
                        if self._settle_fast(spec) is not None:
                            # Settled without running: dependents may
                            # have become ready — rescan this wave.
                            progressed = True
                            continue
                        self._save_campaign(force=True)
                        fut = pool.submit(
                            self._run_leased,
                            spec,
                            self._fps[spec.task_id],
                            time.perf_counter(),
                        )
                        in_flight[fut] = task_id
                peak_in_flight = max(peak_in_flight, len(in_flight))
                # Group-commit any batched journal writes before
                # blocking: everything dispatched so far is durable.
                self.journal.commit()
                if not in_flight:
                    if pending:  # unreachable after topo validation
                        raise RuntimeError(
                            "scheduler stalled with tasks pending: "
                            f"{sorted(pending)}"
                        )
                    break
                finished, _ = wait(
                    list(in_flight), return_when=FIRST_COMPLETED
                )
                for fut in finished:
                    task_id = in_flight.pop(fut)
                    outcome, span = fut.result()
                    self.outcomes[task_id] = outcome
                    spans[task_id] = span
        self.journal.commit()
        makespan = time.perf_counter() - started
        busy = sum(span["run"] for span in spans.values())
        self.scheduler_info = {
            "run_jobs": jobs,
            "ledger_total": ledger.total,
            "ledger_grants": ledger.total_grants - base_grants,
            "peak_in_flight": peak_in_flight,
            "makespan": makespan,
            "busy_seconds": busy,
            "spans": {
                s.task_id: spans[s.task_id]
                for s in order if s.task_id in spans
            },
        }
        self.journal.append({
            "event": "scheduler",
            "run_id": self.campaign.run_id,
            **{k: v for k, v in self.scheduler_info.items() if k != "spans"},
        })

    def _run_leased(
        self, spec: TaskSpec, fp: str, enqueued: float
    ) -> Tuple[TaskOutcome, Dict[str, float]]:
        """Worker-thread body: run one task under a core-ledger lease."""
        lease = core_ledger().acquire(spec.task_id)
        t0 = time.perf_counter()
        try:
            with lease.activate():
                outcome = self._run_attempts(spec, fp)
        finally:
            lease.release()
        return outcome, {
            "queued": t0 - enqueued,
            "run": time.perf_counter() - t0,
        }

    def _run_attempts(self, spec: TaskSpec, fp: str) -> TaskOutcome:
        ctx = TaskContext(
            run_dir=self.run_dir,
            task_id=spec.task_id,
            deps={d: self.outcomes[d].payload or {} for d in spec.deps},
            dep_meta={
                d: {"kind": self.outcomes[d].kind,
                    "status": self.outcomes[d].status}
                for d in spec.deps
            },
            store=self.store,
        )
        attempts = spec.retries + 1
        last_error: Optional[TaskFailure] = None
        for attempt in range(1, attempts + 1):
            ctx.attempt = attempt
            self.journal.append({
                "event": "task_start",
                "task": spec.task_id,
                "kind": spec.kind,
                "attempt": attempt,
                "fingerprint": fp,
            })
            if self.on_task_start is not None:
                self.on_task_start(spec.task_id, attempt)
            t0 = time.perf_counter()
            try:
                if spec.isolation == "process":
                    payload = self._attempt_process(spec, ctx)
                else:
                    payload = self._attempt_inline(spec, ctx)
            except TaskFailure as exc:
                duration = time.perf_counter() - t0
                last_error = exc
                self.journal.append({
                    "event": "task_end",
                    "task": spec.task_id,
                    "attempt": attempt,
                    "status": exc.status,
                    "duration": duration,
                    "error": str(exc),
                })
                if attempt < attempts:
                    pause = spec.backoff * (2 ** (attempt - 1))
                    self.journal.append({
                        "event": "task_retry",
                        "task": spec.task_id,
                        "next_attempt": attempt + 1,
                        "backoff": pause,
                    })
                    self.sleep(pause)
                continue
            duration = time.perf_counter() - t0
            self.journal.append({
                "event": "task_end",
                "task": spec.task_id,
                "attempt": attempt,
                "status": "ok",
                "duration": duration,
                "fingerprint": fp,
                "payload": payload,
            })
            return TaskOutcome(
                spec.task_id, spec.kind, "ok",
                payload=payload, duration=duration, attempts=attempt,
            )
        return TaskOutcome(
            spec.task_id, spec.kind, last_error.status,
            duration=0.0, attempts=attempts, error=str(last_error),
        )

    # ------------------------------------------------------------------
    def _attempt_inline(self, spec: TaskSpec, ctx: TaskContext) -> dict:
        fn = get_task(spec.kind)
        if spec.timeout is None:
            try:
                return fn(spec.params, ctx)
            except Exception as exc:
                raise TaskFailure(f"{type(exc).__name__}: {exc}") from exc
        box: dict = {}
        lease = current_lease()

        def body() -> None:
            # The deadline scope and the core lease are thread-local, so
            # both must be installed *inside* the worker thread: engine
            # dispatch layers under this body read remaining_time() to
            # bound their own shards and SAT calls, and negotiate their
            # worker counts off the scheduler's lease.
            try:
                with activate_lease(lease), deadline_scope(spec.timeout):
                    box["payload"] = fn(spec.params, ctx)
            except BaseException as exc:  # captured, re-raised below
                box["error"] = exc

        worker = threading.Thread(
            target=body, name=f"task-{spec.task_id}", daemon=True
        )
        worker.start()
        worker.join(spec.timeout)
        if worker.is_alive():
            self._warn(
                CODE_THREAD_ABANDONED,
                f"task {spec.task_id}: inline worker thread abandoned "
                f"after {spec.timeout}s (daemon thread keeps running "
                f"until its body returns)",
                task=spec.task_id,
            )
            raise TaskFailure(
                f"timeout after {spec.timeout}s (inline; thread abandoned)",
                status="timeout",
            )
        if "error" in box:
            exc = box["error"]
            raise TaskFailure(f"{type(exc).__name__}: {exc}") from None
        return box["payload"]

    def _warn(self, code: str, message: str, **extra: object) -> None:
        """Journal a coded runtime warning and count it for the report.

        Called from scheduler worker threads too, so the counter update
        is locked (the journal serializes its own writes).
        """
        with self._warn_lock:
            self.runtime_warnings[code] = (
                self.runtime_warnings.get(code, 0) + 1
            )
        event = {"event": "warning", "code": code, "message": message}
        event.update(extra)
        self.journal.append(event)

    def _attempt_process(self, spec: TaskSpec, ctx: TaskContext) -> dict:
        tmp_dir = os.path.join(self.run_dir, "tmp")
        os.makedirs(tmp_dir, exist_ok=True)
        stem = spec.task_id.replace(os.sep, "_")
        in_path = os.path.join(tmp_dir, f"{stem}.{ctx.attempt}.in.json")
        out_path = os.path.join(tmp_dir, f"{stem}.{ctx.attempt}.out.json")
        if os.path.exists(out_path):
            os.remove(out_path)
        with open(in_path, "w") as fh:
            json.dump({
                "kind": spec.kind,
                "params": dict(spec.params),
                "task_id": spec.task_id,
                "attempt": ctx.attempt,
                "run_dir": self.run_dir,
                "deps": ctx.deps,
                "dep_meta": ctx.dep_meta,
            }, fh)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        if spec.timeout is not None:
            # The fresh interpreter enters a deadline scope from this at
            # startup (_worker calls install_deadline_from_env), so the
            # engine bounds itself before the parent's kill fires.
            env["REPRO_SUPERVISE_DEADLINE"] = str(spec.timeout)
        lease = current_lease()
        if lease is not None:
            # A process-isolated task cannot see the parent's core
            # ledger; export the share current at dispatch time so the
            # child's pools cap themselves at it (_worker installs it).
            env["REPRO_RUN_CORE_SHARE"] = str(lease.ledger.share())
        else:
            env.pop("REPRO_RUN_CORE_SHARE", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner._worker",
             in_path, out_path],
            env=env,
        )
        try:
            returncode = proc.wait(timeout=spec.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise TaskFailure(
                f"timeout after {spec.timeout}s (worker killed)",
                status="timeout",
            ) from None
        if os.path.exists(out_path):
            with open(out_path) as fh:
                result = json.load(fh)
            if result.get("status") == "ok":
                return result["payload"]
            raise TaskFailure(str(result.get("error", "worker error")))
        raise TaskFailure(
            f"worker exited with code {returncode} and wrote no result"
        )


# ----------------------------------------------------------------------
def run_campaign(
    campaign: CampaignSpec,
    root: str = DEFAULT_RUNS_ROOT,
    store: Optional[dict] = None,
    on_task_start: Optional[Callable[[str, int], None]] = None,
    jobs: Optional[int] = None,
) -> dict:
    """Execute *campaign* from scratch; returns the final report."""
    runner = Runner(
        campaign, root=root, store=store, on_task_start=on_task_start,
        jobs=jobs,
    )
    return runner.execute()


def resume(
    run_id: str,
    root: str = DEFAULT_RUNS_ROOT,
    store: Optional[dict] = None,
    jobs: Optional[int] = None,
) -> dict:
    """Resume *run_id* from its journal; returns the final report.

    Replays ``<root>/<run_id>/journal.jsonl``, reuses every completed
    task whose fingerprint still matches, and executes the rest —
    concurrently when *jobs* (or ``REPRO_RUN_JOBS``) says so; resume
    and scheduling compose because cached settling happens on the
    scheduler thread before anything dispatches.
    """
    campaign_path = os.path.join(root, run_id, "campaign.json")
    campaign = CampaignSpec.load(campaign_path)
    runner = Runner(campaign, root=root, store=store, jobs=jobs)
    return runner.execute()
