"""DAG execution: timeouts, retries with backoff, isolation, resume.

:class:`Runner` executes a :class:`~repro.runner.model.CampaignSpec` in
deterministic topological order.  Around every task it journals
``task_start`` / ``task_end`` events (fsync'd before proceeding), so the
run directory always reflects exactly what has finished — a SIGKILL,
OOM, or power cut mid-campaign loses at most the task that was running.

Execution policy per task:

* **timeout** — wall-clock bound per attempt.  Process-isolated tasks
  are killed preemptively; inline tasks run on a daemon worker thread
  that is abandoned on timeout (best-effort — use ``isolation:
  "process"`` for tasks that must be preemptible).  Either way the
  timeout also enters the engine as a *deadline*: inline bodies run
  inside a :func:`repro.utils.supervise.deadline_scope`, and
  process-isolated workers inherit it via ``REPRO_SUPERVISE_DEADLINE``,
  so shard dispatch and SAT solving bound themselves instead of relying
  on the kill backstop.  An abandoned inline thread is journaled as the
  coded ``RUN-THREAD-ABANDONED`` warning and counted in the report —
  the thread still occupies the interpreter until its body returns.
* **retries / backoff** — a failed attempt is retried up to ``retries``
  times, sleeping ``backoff * 2**(attempt-1)`` seconds in between; every
  retry is journaled.
* **isolation** — ``"process"`` runs the task in a fresh interpreter
  (``python -m repro.runner._worker``): heavy tasks cannot corrupt or
  OOM the orchestrator, and their timeouts are enforced with a kill.

Resume replays the journal and re-executes only tasks that are missing,
failed, interrupted, or whose input fingerprint changed; completed tasks
are reused from their journaled payloads (``task_cached`` events record
every reuse).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.runner.journal import Journal, RunLedger, read_journal, replay
from repro.runner.model import (
    CampaignSpec,
    TaskSpec,
    env_knobs,
    fingerprint_task,
    observed_env_knobs,
)
from repro.runner.registry import TaskContext, fingerprint_extra, get_task
from repro.runner.report import build_report, write_report
from repro.utils.supervise import deadline_scope

DEFAULT_RUNS_ROOT = os.path.join("benchmarks", "results", "runs")

# Coded warning: an inline task hit its timeout and its worker thread
# was abandoned (daemon threads cannot be killed).  Journaled as a
# ``warning`` event and counted in the report's runtime_warnings.
CODE_THREAD_ABANDONED = "RUN-THREAD-ABANDONED"


class TaskFailure(Exception):
    """One attempt failed; ``status`` is ``failed`` or ``timeout``."""

    def __init__(self, message: str, status: str = "failed"):
        super().__init__(message)
        self.status = status


@dataclass
class TaskOutcome:
    """Terminal state of one task within this orchestrator process."""

    task_id: str
    kind: str
    status: str  # "ok" | "cached" | "failed" | "timeout" | "skipped"
    payload: Optional[dict] = None
    duration: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload,
            "duration": self.duration,
            "attempts": self.attempts,
        }


@dataclass
class Runner:
    """Executes one campaign against one run directory."""

    campaign: CampaignSpec
    root: str = DEFAULT_RUNS_ROOT
    store: Optional[dict] = None
    # Failure-injection hook: called right after a task_start event is
    # journaled, before the task body runs (used by tests/CI to SIGKILL
    # the orchestrator mid-task).
    on_task_start: Optional[Callable[[str, int], None]] = None
    sleep: Callable[[float], None] = time.sleep

    outcomes: "OrderedDict[str, TaskOutcome]" = field(
        default_factory=OrderedDict
    )

    def __post_init__(self):
        self.run_dir = os.path.join(self.root, self.campaign.run_id)
        self.journal: Optional[Journal] = None
        self.ledger: RunLedger = RunLedger()
        self._fps: Dict[str, str] = {}
        self._known = {t.task_id for t in self.campaign.tasks}
        # code -> count of runtime warnings this orchestrator life saw
        # (abandoned threads, ...); folded into the final report.
        self.runtime_warnings: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "journal.jsonl")

    @property
    def campaign_path(self) -> str:
        return os.path.join(self.run_dir, "campaign.json")

    def _ensure_started(self) -> None:
        if self.journal is not None:
            return
        os.makedirs(self.run_dir, exist_ok=True)
        prior = (
            read_journal(self.journal_path)
            if os.path.exists(self.journal_path) else []
        )
        self.ledger = replay(prior)
        self.campaign.save(self.campaign_path)
        self.journal = Journal(self.journal_path)
        if not prior:
            self.journal.append({
                "event": "run_start",
                "run_id": self.campaign.run_id,
                "n_tasks": len(self.campaign.tasks),
                "env": env_knobs(),
                "env_observed": observed_env_knobs(),
                "meta": dict(self.campaign.meta),
            })
        else:
            self.journal.append({
                "event": "run_resume",
                "run_id": self.campaign.run_id,
            })

    # ------------------------------------------------------------------
    def execute(self) -> dict:
        """Run every task (topological order) and finalize the report."""
        order = self.campaign.topo_order()  # validates before any I/O
        self._ensure_started()
        for spec in order:
            self._execute_spec(spec)
        return self.finalize()

    def execute_spec(self, spec: TaskSpec) -> TaskOutcome:
        """Incremental API: append *spec* to the campaign and run it.

        Used by the pytest benchmark harness, which discovers its tasks
        lazily; the campaign file is rewritten so the run stays
        resumable.
        """
        if spec.task_id not in self._known:
            self.campaign.tasks.append(spec)
            self._known.add(spec.task_id)
            self._ensure_started()
            self.campaign.save(self.campaign_path)
        else:
            self._ensure_started()
        return self._execute_spec(spec)

    def finalize(self) -> dict:
        """Journal the aggregated report and the run_end event."""
        self._ensure_started()
        failed = [o for o in self.outcomes.values() if not o.ok]
        status = "failed" if failed else "ok"
        report = build_report(
            self.campaign.meta,
            self.campaign.run_id,
            OrderedDict(
                (tid, o.as_dict()) for tid, o in self.outcomes.items()
            ),
            runtime_warnings=self.runtime_warnings,
        )
        self.journal.append({"event": "report", "report": report})
        write_report(self.run_dir, report)
        self.journal.append({
            "event": "run_end",
            "run_id": self.campaign.run_id,
            "status": status,
        })
        self.journal.close()
        self.journal = None
        return report

    # ------------------------------------------------------------------
    def _fingerprint(self, spec: TaskSpec) -> str:
        fp = self._fps.get(spec.task_id)
        if fp is None:
            missing = [d for d in spec.deps if d not in self._fps]
            for dep in missing:
                raise RuntimeError(
                    f"task {spec.task_id}: dep {dep} not yet fingerprinted"
                )
            fp = fingerprint_task(
                spec, self._fps,
                extra=fingerprint_extra(spec.kind, spec.params),
            )
            self._fps[spec.task_id] = fp
        return fp

    def _execute_spec(self, spec: TaskSpec) -> TaskOutcome:
        done = self.outcomes.get(spec.task_id)
        if done is not None:
            return done
        fp = self._fingerprint(spec)

        # Completed in a previous orchestrator life with the same
        # fingerprint: reuse the journaled result, re-execute nothing.
        cached = self.ledger.completed(spec.task_id, fp)
        if cached is not None:
            self.journal.append({
                "event": "task_cached",
                "task": spec.task_id,
                "fingerprint": fp,
            })
            outcome = TaskOutcome(
                spec.task_id, spec.kind, "cached",
                payload=cached.payload, duration=cached.duration,
                attempts=cached.attempts,
            )
            self.outcomes[spec.task_id] = outcome
            return outcome

        bad_deps = [
            d for d in spec.deps if not self.outcomes[d].ok
        ]
        if bad_deps:
            self.journal.append({
                "event": "task_skipped",
                "task": spec.task_id,
                "reason": "dep-failed",
                "deps": bad_deps,
            })
            outcome = TaskOutcome(
                spec.task_id, spec.kind, "skipped",
                error=f"dependencies failed: {bad_deps}",
            )
            self.outcomes[spec.task_id] = outcome
            return outcome

        outcome = self._run_attempts(spec, fp)
        self.outcomes[spec.task_id] = outcome
        return outcome

    def _run_attempts(self, spec: TaskSpec, fp: str) -> TaskOutcome:
        ctx = TaskContext(
            run_dir=self.run_dir,
            task_id=spec.task_id,
            deps={d: self.outcomes[d].payload or {} for d in spec.deps},
            dep_meta={
                d: {"kind": self.outcomes[d].kind,
                    "status": self.outcomes[d].status}
                for d in spec.deps
            },
            store=self.store,
        )
        attempts = spec.retries + 1
        last_error: Optional[TaskFailure] = None
        for attempt in range(1, attempts + 1):
            ctx.attempt = attempt
            self.journal.append({
                "event": "task_start",
                "task": spec.task_id,
                "kind": spec.kind,
                "attempt": attempt,
                "fingerprint": fp,
            })
            if self.on_task_start is not None:
                self.on_task_start(spec.task_id, attempt)
            t0 = time.perf_counter()
            try:
                if spec.isolation == "process":
                    payload = self._attempt_process(spec, ctx)
                else:
                    payload = self._attempt_inline(spec, ctx)
            except TaskFailure as exc:
                duration = time.perf_counter() - t0
                last_error = exc
                self.journal.append({
                    "event": "task_end",
                    "task": spec.task_id,
                    "attempt": attempt,
                    "status": exc.status,
                    "duration": duration,
                    "error": str(exc),
                })
                if attempt < attempts:
                    pause = spec.backoff * (2 ** (attempt - 1))
                    self.journal.append({
                        "event": "task_retry",
                        "task": spec.task_id,
                        "next_attempt": attempt + 1,
                        "backoff": pause,
                    })
                    self.sleep(pause)
                continue
            duration = time.perf_counter() - t0
            self.journal.append({
                "event": "task_end",
                "task": spec.task_id,
                "attempt": attempt,
                "status": "ok",
                "duration": duration,
                "fingerprint": fp,
                "payload": payload,
            })
            return TaskOutcome(
                spec.task_id, spec.kind, "ok",
                payload=payload, duration=duration, attempts=attempt,
            )
        return TaskOutcome(
            spec.task_id, spec.kind, last_error.status,
            duration=0.0, attempts=attempts, error=str(last_error),
        )

    # ------------------------------------------------------------------
    def _attempt_inline(self, spec: TaskSpec, ctx: TaskContext) -> dict:
        fn = get_task(spec.kind)
        if spec.timeout is None:
            try:
                return fn(spec.params, ctx)
            except Exception as exc:
                raise TaskFailure(f"{type(exc).__name__}: {exc}") from exc
        box: dict = {}

        def body() -> None:
            # The deadline scope is thread-local, so it must be entered
            # *inside* the worker thread: engine dispatch layers under
            # this body read remaining_time() to bound their own shards
            # and SAT calls, which usually beats the abandon backstop.
            try:
                with deadline_scope(spec.timeout):
                    box["payload"] = fn(spec.params, ctx)
            except BaseException as exc:  # captured, re-raised below
                box["error"] = exc

        worker = threading.Thread(
            target=body, name=f"task-{spec.task_id}", daemon=True
        )
        worker.start()
        worker.join(spec.timeout)
        if worker.is_alive():
            self._warn(
                CODE_THREAD_ABANDONED,
                f"task {spec.task_id}: inline worker thread abandoned "
                f"after {spec.timeout}s (daemon thread keeps running "
                f"until its body returns)",
                task=spec.task_id,
            )
            raise TaskFailure(
                f"timeout after {spec.timeout}s (inline; thread abandoned)",
                status="timeout",
            )
        if "error" in box:
            exc = box["error"]
            raise TaskFailure(f"{type(exc).__name__}: {exc}") from None
        return box["payload"]

    def _warn(self, code: str, message: str, **extra: object) -> None:
        """Journal a coded runtime warning and count it for the report."""
        self.runtime_warnings[code] = self.runtime_warnings.get(code, 0) + 1
        event = {"event": "warning", "code": code, "message": message}
        event.update(extra)
        self.journal.append(event)

    def _attempt_process(self, spec: TaskSpec, ctx: TaskContext) -> dict:
        tmp_dir = os.path.join(self.run_dir, "tmp")
        os.makedirs(tmp_dir, exist_ok=True)
        stem = spec.task_id.replace(os.sep, "_")
        in_path = os.path.join(tmp_dir, f"{stem}.{ctx.attempt}.in.json")
        out_path = os.path.join(tmp_dir, f"{stem}.{ctx.attempt}.out.json")
        if os.path.exists(out_path):
            os.remove(out_path)
        with open(in_path, "w") as fh:
            json.dump({
                "kind": spec.kind,
                "params": dict(spec.params),
                "task_id": spec.task_id,
                "attempt": ctx.attempt,
                "run_dir": self.run_dir,
                "deps": ctx.deps,
                "dep_meta": ctx.dep_meta,
            }, fh)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        if spec.timeout is not None:
            # The fresh interpreter enters a deadline scope from this at
            # startup (_worker calls install_deadline_from_env), so the
            # engine bounds itself before the parent's kill fires.
            env["REPRO_SUPERVISE_DEADLINE"] = str(spec.timeout)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner._worker",
             in_path, out_path],
            env=env,
        )
        try:
            returncode = proc.wait(timeout=spec.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise TaskFailure(
                f"timeout after {spec.timeout}s (worker killed)",
                status="timeout",
            ) from None
        if os.path.exists(out_path):
            with open(out_path) as fh:
                result = json.load(fh)
            if result.get("status") == "ok":
                return result["payload"]
            raise TaskFailure(str(result.get("error", "worker error")))
        raise TaskFailure(
            f"worker exited with code {returncode} and wrote no result"
        )


# ----------------------------------------------------------------------
def run_campaign(
    campaign: CampaignSpec,
    root: str = DEFAULT_RUNS_ROOT,
    store: Optional[dict] = None,
    on_task_start: Optional[Callable[[str, int], None]] = None,
) -> dict:
    """Execute *campaign* from scratch; returns the final report."""
    runner = Runner(
        campaign, root=root, store=store, on_task_start=on_task_start
    )
    return runner.execute()


def resume(
    run_id: str,
    root: str = DEFAULT_RUNS_ROOT,
    store: Optional[dict] = None,
) -> dict:
    """Resume *run_id* from its journal; returns the final report.

    Replays ``<root>/<run_id>/journal.jsonl``, reuses every completed
    task whose fingerprint still matches, and executes the rest.
    """
    campaign_path = os.path.join(root, run_id, "campaign.json")
    campaign = CampaignSpec.load(campaign_path)
    runner = Runner(campaign, root=root, store=store)
    return runner.execute()
