"""Built-in task kinds of the experiment orchestrator.

Campaign task kinds (the paper's sweeps):

* ``analyze`` — build one benchmark circuit on a library variant and run
  the full design-flow analysis (PDesign -> DFM fault extraction ->
  exact ATPG -> clustering).  Payload: the Table I row, the
  :class:`~repro.utils.observability.EngineStats` snapshot, and the
  per-stage wall times.
* ``resynthesize`` — the full two-phase resynthesis with the q = 0..q_max
  sweep.  Payload: the two Table II rows, q_used, the iteration count,
  and the :class:`~repro.utils.observability.ResynthesisStats` snapshot.

Both carry a fingerprint hook hashing the *built circuit structure* and
the library variant, so a resume re-runs exactly the circuits whose
generated netlist (or library) changed.

Synthetic task kinds (failure-path tests and CI fault injection):

* ``sum`` — returns ``value`` plus the sum of its deps' values;
* ``sleep`` — sleeps ``seconds`` and returns;
* ``hang`` — sleeps a long time (timeout-path testing);
* ``flaky`` — fails its first ``fail_times`` attempts (state is kept in
  a counter file inside the run directory, so it spans retries,
  processes, and resumes);
* ``kill_self`` — SIGKILLs its own process the first time it runs
  (subsequent runs see the marker file and succeed).  Inline, this kills
  the orchestrator mid-task — the crash the journal must survive.
"""

from __future__ import annotations

import os
import signal
import time
from functools import lru_cache
from typing import List, Mapping, Tuple

from repro.runner.registry import TaskContext, task


# ----------------------------------------------------------------------
# Campaign tasks
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _library_variant(variant: str):
    """A library variant by name.

    ``full`` is the complete 21-cell library; ``drop<k>`` excludes the k
    most fault-laden cells (the restricted-library ablation direction);
    ``exclude:<a>,<b>`` excludes the named cells.
    """
    from repro.library import osu018_library

    library = osu018_library()
    if variant in ("", "full", "osu018"):
        return library
    if variant.startswith("drop"):
        k = int(variant[4:] or "1")
        order = library.order_by_internal_faults()
        dropped = {cell.name for cell in order[:k]}
        keep = [n for n in library.names() if n not in dropped]
        return library.subset(keep)
    if variant.startswith("exclude:"):
        dropped = {n.strip() for n in variant[8:].split(",") if n.strip()}
        unknown = dropped - set(library.names())
        if unknown:
            raise KeyError(f"unknown cells in variant: {sorted(unknown)}")
        keep = [n for n in library.names() if n not in dropped]
        return library.subset(keep)
    raise KeyError(f"unknown library variant {variant!r}")


@lru_cache(maxsize=None)
def _built_circuit(name: str, scale: int, variant: str):
    """Benchmark netlist mapped on a library variant (process-cached)."""
    from repro.bench import build_benchmark

    return build_benchmark(name, _library_variant(variant), scale=scale)


def _circuit_params(params: Mapping[str, object]) -> Tuple[str, int, str]:
    return (
        str(params["circuit"]),
        int(params.get("scale", 1)),
        str(params.get("variant", "full")),
    )


def _workers_param(params: Mapping[str, object]):
    """``workers`` campaign parameter; absent defers to REPRO_SIM_WORKERS.

    Worker count and execution mode are pure performance knobs (results
    are bit-identical in every mode), so they are *not* part of task
    fingerprints — a resumed run may legitimately use a different
    machine's parallelism.
    """
    value = params.get("workers")
    return None if value is None else int(value)


def _circuit_fingerprint(params: Mapping[str, object]) -> object:
    """Structural hash of the built circuit + the variant's cell list."""
    from repro.runner.model import structural_circuit_hash

    name, scale, variant = _circuit_params(params)
    library = _library_variant(variant)
    return {
        "circuit": structural_circuit_hash(
            _built_circuit(name, scale, variant)
        ),
        "library": library.names(),
    }


@task("analyze", fingerprint=_circuit_fingerprint)
def analyze_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    from repro.core import analyze_design, table1_row

    name, scale, variant = _circuit_params(params)
    library = _library_variant(variant)
    circuit = _built_circuit(name, scale, variant)
    state = analyze_design(
        circuit, library,
        seed=int(params.get("seed", 0)),
        utilization=float(params.get("utilization", 0.70)),
        atpg_seed=int(params.get("seed", 0)),
        workers=_workers_param(params),
        exec_mode=params.get("exec_mode"),
    )
    if ctx.store is not None:
        ctx.store[f"analysis:{variant}:{name}"] = state
    payload = {
        "circuit": name,
        "variant": variant,
        "row": table1_row(name, state),
        "engine": state.stats.as_dict(),
        "timings": dict(state.timings),
    }
    # Only present when something degraded, so clean-run reports (and
    # their resume-diff comparisons) are untouched.
    if state.degraded or state.stats.degradations:
        payload["degradation"] = {
            "aborted_faults": state.n_aborted,
            "approximate": state.atpg.approximate,
            "records": list(state.stats.degradations),
        }
    return payload


@task("resynthesize", fingerprint=_circuit_fingerprint)
def resynthesize_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    from repro.core import (
        ResynthesisConfig,
        resynthesize_for_coverage,
        table1_row,
        table2_row,
    )

    name, scale, variant = _circuit_params(params)
    library = _library_variant(variant)
    circuit = _built_circuit(name, scale, variant)
    config = ResynthesisConfig(
        q_max=int(params.get("q_max", 5)),
        max_iterations_per_phase=int(
            params.get("max_iterations_per_phase", 25)
        ),
        seed=int(params.get("seed", 0)),
        utilization=float(params.get("utilization", 0.70)),
        workers=_workers_param(params) or 1,
        exec_mode=params.get("exec_mode"),
    )
    result = resynthesize_for_coverage(circuit, library, config)
    if ctx.store is not None:
        ctx.store[f"resynthesis:{variant}:{name}"] = result
        ctx.store.setdefault(f"analysis:{variant}:{name}", result.original)
    payload = {
        "circuit": name,
        "variant": variant,
        "rows": table2_row(name, result),
        "original_row": table1_row(name, result.original),
        "q_used": result.q_used,
        "iterations": len(result.history),
        "stats": result.stats.as_dict(),
        "runtime": result.runtime,
        "baseline_runtime": result.baseline_runtime,
    }
    engine = result.stats.engine
    if (engine.degradations or engine.verdicts_aborted
            or engine.cache_integrity_failures):
        payload["degradation"] = {
            "aborted_verdicts": engine.verdicts_aborted,
            "cache_integrity_failures": engine.cache_integrity_failures,
            "records": list(engine.degradations),
        }
    return payload


# ----------------------------------------------------------------------
# Synthetic tasks (failure-path tests, CI fault injection)
# ----------------------------------------------------------------------

@task("sum")
def sum_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    total = int(params.get("value", 0))
    for payload in ctx.deps.values():
        total += int(payload.get("value", 0))
    return {"value": total}


@task("sleep")
def sleep_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    seconds = float(params.get("seconds", 0.0))
    time.sleep(seconds)
    return {"slept": seconds}


@task("hang")
def hang_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    time.sleep(float(params.get("seconds", 3600.0)))
    return {"hung": False}


@task("flaky")
def flaky_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    fail_times = int(params.get("fail_times", 1))
    counter = os.path.join(ctx.run_dir, f"flaky-{ctx.task_id}.count")
    failures = 0
    if os.path.exists(counter):
        with open(counter) as fh:
            failures = int(fh.read().strip() or "0")
    if failures < fail_times:
        with open(counter, "w") as fh:
            fh.write(str(failures + 1))
        raise RuntimeError(
            f"flaky failure {failures + 1}/{fail_times}"
        )
    return {"value": int(params.get("value", 0)), "failures": failures}


@task("kill_self")
def kill_self_task(params: Mapping[str, object], ctx: TaskContext) -> dict:
    marker = os.path.join(ctx.run_dir, f"killed-{ctx.task_id}.marker")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("armed\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": int(params.get("value", 0)), "survived": True}


# ----------------------------------------------------------------------
# Campaign preflight
# ----------------------------------------------------------------------

def preflight_campaign(campaign) -> List[str]:
    """Lint every circuit the campaign will analyze, before any work runs.

    Builds each distinct (circuit, scale, variant) once (the builders
    are process-cached, so the tasks reuse the same objects later) and
    runs the structural linter against the variant's cell library.
    Returns a flat list of problem strings — empty means go.  A bad
    benchmark or library variant is reported for every affected task id,
    so the user sees which parts of the sweep are doomed up front
    instead of after hours of healthy tasks.
    """
    from repro.netlist.validate import lint_circuit

    problems: List[str] = []
    linted: dict = {}
    for spec in campaign.tasks:
        if spec.kind not in ("analyze", "resynthesize"):
            continue
        key = _circuit_params(spec.params)
        if key not in linted:
            name, scale, variant = key
            found: List[str] = []
            try:
                library = _library_variant(variant)
                circuit = _built_circuit(name, scale, variant)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                found.append(f"cannot build circuit {name!r} ({exc})")
            else:
                cells = {c.name: c for c in library}
                report = lint_circuit(circuit, cells=cells)
                found.extend(str(d) for d in report.errors)
            linted[key] = found
        problems.extend(f"{spec.task_id}: {p}" for p in linted[key])
    return problems


# ----------------------------------------------------------------------
# Campaign builders
# ----------------------------------------------------------------------

def paper_campaign(
    circuits: List[str],
    run_id: str,
    *,
    tables: Tuple[int, ...] = (1, 2),
    q_max: int = 3,
    max_iterations_per_phase: int = 6,
    scale: int = 1,
    seed: int = 0,
    workers: int = 1,
    exec_mode: str = None,
    variants: Tuple[str, ...] = ("full",),
    isolation: str = "inline",
    timeout: float = None,
    retries: int = 0,
    backoff: float = 1.0,
):
    """The paper's sweep as a campaign DAG.

    Table 1 adds one ``analyze`` task per (variant, circuit); Table 2
    adds one ``resynthesize`` task per (variant, circuit) — each task is
    independent, so a crash loses at most one circuit's work.
    """
    from repro.runner.model import CampaignSpec, TaskSpec

    specs: List[TaskSpec] = []
    policy = dict(
        isolation=isolation, timeout=timeout, retries=retries,
        backoff=backoff,
    )
    for variant in variants:
        for name in circuits:
            base = {"circuit": name, "scale": scale, "seed": seed,
                    "workers": workers, "variant": variant}
            if exec_mode is not None:
                base["exec_mode"] = exec_mode
            if 1 in tables and 2 not in tables:
                specs.append(TaskSpec(
                    task_id=f"analyze:{variant}:{name}", kind="analyze",
                    params=base, **policy,
                ))
            if 2 in tables:
                # The resynthesize payload carries the original design's
                # Table I row too, so one task serves both tables.
                specs.append(TaskSpec(
                    task_id=f"resynthesize:{variant}:{name}",
                    kind="resynthesize",
                    params={
                        **base,
                        "q_max": q_max,
                        "max_iterations_per_phase": max_iterations_per_phase,
                    },
                    **policy,
                ))
    return CampaignSpec(
        run_id=run_id,
        tasks=specs,
        meta={
            "kind": "paper-sweep",
            "circuits": list(circuits),
            "tables": sorted(tables),
            "q_max": q_max,
            "max_iterations_per_phase": max_iterations_per_phase,
            "scale": scale,
            "seed": seed,
            "workers": workers,
            "exec_mode": exec_mode,
            "variants": list(variants),
        },
    )
