"""Command-line interface of the experiment orchestrator.

::

    python -m repro.runner run    [--circuits c17,c432] [options]
    python -m repro.runner resume <run_id> [--out DIR]
    python -m repro.runner report <run_id> [--out DIR] [--normalized]
    python -m repro.runner check  <run_id> [--out DIR]
    python -m repro.runner check  --netlist FILE [--format bench]
    python -m repro.runner ingest FILE... [--format auto] [--variant full]
    python -m repro.runner diff   <run_a> <run_b> [--out DIR]

``run`` builds a paper-sweep campaign (or loads ``--campaign file.json``)
and executes it; ``resume`` continues a crashed or interrupted run from
its journal, re-executing only missing/failed/changed tasks; ``report``
renders the final report; ``check`` validates journal integrity and the
zero-re-execution resume discipline; ``diff`` compares two runs'
normalized reports (exit 1 on mismatch).

``--kill-at TASK[:ATTEMPT]`` is a fault-injection hook used by CI and
tests: the orchestrator SIGKILLs itself right after journaling that
task's ``task_start`` — the crash the journal must survive.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from typing import Optional

from repro.runner.executor import DEFAULT_RUNS_ROOT, Runner, resume
from repro.runner.journal import (
    JournalError,
    read_journal,
    verify_resume_discipline,
)
from repro.runner.model import CampaignSpec
from repro.runner.report import load_report, normalize_report, render_report


def _parse_kill_at(value: str):
    # Task ids themselves contain colons (analyze:full:c17), so only a
    # numeric suffix is an attempt selector.
    task, want = value, 1
    head, _, tail = value.rpartition(":")
    if head and tail.isdigit():
        task, want = head, int(tail)

    def hook(task_id: str, attempt_no: int) -> None:
        if task_id == task and attempt_no == want:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def _csv(value: str):
    return tuple(v.strip() for v in value.split(",") if v.strip())


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out", default=DEFAULT_RUNS_ROOT,
        help="runs root directory (default: %(default)s)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="crash-robust experiment orchestrator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign")
    _add_common(run)
    run.add_argument("--run-id", default=None)
    run.add_argument(
        "--campaign", default=None,
        help="load a campaign.json instead of building a paper sweep",
    )
    run.add_argument(
        "--circuits", type=_csv, default=("sparc_tlu", "sparc_lsu"),
        help="comma-separated benchmark circuits",
    )
    run.add_argument(
        "--tables", type=_csv, default=("1", "2"),
        help="which paper tables to produce (1,2)",
    )
    run.add_argument("--qmax", type=int, default=3)
    run.add_argument("--max-iter", type=int, default=6)
    run.add_argument("--scale", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--workers", type=int, default=None,
        help="fault-simulation workers per task (default: negotiated "
             "from the core ledger under --jobs > 1, else 1)",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="concurrent campaign tasks (default: REPRO_RUN_JOBS, "
             "falling back to the CPU count; 1 = serial)",
    )
    run.add_argument(
        "--exec-mode", default=None,
        choices=("serial", "thread", "process", "auto"),
        help="how fault-simulation batches execute at workers > 1 "
             "(default: REPRO_SIM_EXEC, falling back to auto)",
    )
    run.add_argument(
        "--variants", type=_csv, default=("full",),
        help="library variants (full, drop<k>, exclude:<a>,<b>)",
    )
    run.add_argument(
        "--isolation", choices=("inline", "process"), default="inline",
    )
    run.add_argument("--timeout", type=float, default=None)
    run.add_argument("--retries", type=int, default=0)
    run.add_argument("--backoff", type=float, default=1.0)
    run.add_argument(
        "--kill-at", default=None, metavar="TASK[:ATTEMPT]",
        help="fault injection: SIGKILL self after that task_start",
    )
    run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="supervised execution: per-shard deadline for process pools "
             "(sets REPRO_SUPERVISE_SHARD_TIMEOUT; hung workers are "
             "reaped and their shards re-run)",
    )

    res = sub.add_parser("resume", help="resume a run from its journal")
    res.add_argument("run_id")
    _add_common(res)
    res.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="concurrent campaign tasks (default: REPRO_RUN_JOBS, "
             "falling back to the CPU count; 1 = serial)",
    )
    res.add_argument(
        "--kill-at", default=None, metavar="TASK[:ATTEMPT]",
        help="fault injection: SIGKILL self after that task_start",
    )
    res.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="supervised execution: per-shard deadline for process pools "
             "(sets REPRO_SUPERVISE_SHARD_TIMEOUT)",
    )

    rep = sub.add_parser("report", help="render a run's final report")
    rep.add_argument("run_id")
    _add_common(rep)
    rep.add_argument(
        "--normalized", action="store_true",
        help="print the normalized report JSON instead of tables",
    )

    chk = sub.add_parser(
        "check",
        help="validate journal integrity + resume discipline, "
             "or lint netlist files (--netlist)",
    )
    chk.add_argument("run_id", nargs="?", default=None)
    _add_common(chk)
    chk.add_argument(
        "--netlist", action="append", default=[], metavar="FILE",
        help="lint a netlist file instead of checking a run journal "
             "(repeatable; exit 1 on any structural error)",
    )
    chk.add_argument(
        "--format", default="auto",
        choices=("auto", "netlist", "bench", "verilog"),
        help="netlist format for --netlist files "
             "(default: detect from extension/content)",
    )

    ing = sub.add_parser(
        "ingest",
        help="parse + lint + technology-map foreign netlists "
             "(.bench / structural Verilog / native)",
    )
    ing.add_argument("files", nargs="+", metavar="FILE")
    ing.add_argument(
        "--format", default="auto",
        choices=("auto", "netlist", "bench", "verilog"),
        help="input format (default: detect from extension/content)",
    )
    ing.add_argument(
        "--variant", default="full",
        help="library variant to map onto (full, drop<k>, "
             "exclude:<a>,<b>; default: %(default)s)",
    )
    ing.add_argument(
        "--save", default=None, metavar="DIR",
        help="also write each mapped circuit as native netlist text "
             "into DIR",
    )
    ing.add_argument(
        "--json", action="store_true",
        help="machine-readable summary on stdout",
    )

    dif = sub.add_parser(
        "diff", help="compare two runs' normalized reports"
    )
    dif.add_argument("run_a")
    dif.add_argument("run_b")
    _add_common(dif)
    return parser


def _apply_shard_timeout(args) -> None:
    # The knob is an env variable (read at call time by the dispatch
    # layers and inherited by process-isolated task workers), so the
    # CLI flag just exports it for this orchestrator process tree.
    value = getattr(args, "shard_timeout", None)
    if value is not None:
        os.environ["REPRO_SUPERVISE_SHARD_TIMEOUT"] = str(value)


def _cmd_run(args) -> int:
    _apply_shard_timeout(args)
    if args.campaign:
        campaign = CampaignSpec.load(args.campaign)
        if args.run_id:
            campaign.run_id = args.run_id
    else:
        from repro.runner.tasks import paper_campaign

        run_id = args.run_id or f"run-{int(time.time())}-{os.getpid()}"
        campaign = paper_campaign(
            list(args.circuits),
            run_id,
            tables=tuple(int(t) for t in args.tables),
            q_max=args.qmax,
            max_iterations_per_phase=args.max_iter,
            scale=args.scale,
            seed=args.seed,
            workers=args.workers,
            exec_mode=args.exec_mode,
            variants=args.variants,
            isolation=args.isolation,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
        )
    journal_path = os.path.join(
        args.out, campaign.run_id, "journal.jsonl"
    )
    if os.path.exists(journal_path):
        print(
            f"error: run {campaign.run_id!r} already has a journal; "
            f"use `resume {campaign.run_id}`",
            file=sys.stderr,
        )
        return 2
    from repro.runner.tasks import preflight_campaign

    problems = preflight_campaign(campaign)
    if problems:
        print(
            f"error: campaign preflight found {len(problems)} problem(s); "
            "nothing was run:",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 2
    hook = _parse_kill_at(args.kill_at) if args.kill_at else None
    runner = Runner(
        campaign, root=args.out, on_task_start=hook, jobs=args.jobs
    )
    report = runner.execute()
    print(render_report(report))
    return 0 if report["status"] == "ok" else 1


def _cmd_resume(args) -> int:
    _apply_shard_timeout(args)
    if args.kill_at:
        campaign = CampaignSpec.load(
            os.path.join(args.out, args.run_id, "campaign.json")
        )
        runner = Runner(
            campaign, root=args.out,
            on_task_start=_parse_kill_at(args.kill_at),
            jobs=args.jobs,
        )
        report = runner.execute()
    else:
        report = resume(args.run_id, root=args.out, jobs=args.jobs)
    print(render_report(report))
    return 0 if report["status"] == "ok" else 1


def _cmd_report(args) -> int:
    report = load_report(os.path.join(args.out, args.run_id))
    if report is None:
        print(f"error: no report for run {args.run_id!r}", file=sys.stderr)
        return 2
    if args.normalized:
        print(json.dumps(normalize_report(report), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0


def _cmd_check(args) -> int:
    if args.netlist:
        return _check_netlists(args.netlist, args.format)
    if not args.run_id:
        print(
            "error: check needs a run_id or at least one --netlist FILE",
            file=sys.stderr,
        )
        return 2
    journal_path = os.path.join(args.out, args.run_id, "journal.jsonl")
    if not os.path.exists(journal_path):
        print(f"error: no journal at {journal_path}", file=sys.stderr)
        return 2
    try:
        events = read_journal(journal_path)
    except JournalError as exc:
        print(f"FAIL: {exc}")
        return 1
    problems = verify_resume_discipline(events)
    starts = sum(1 for e in events if e.get("event") == "task_start")
    cached = sum(1 for e in events if e.get("event") == "task_cached")
    resumes = sum(1 for e in events if e.get("event") == "run_resume")
    print(
        f"journal: {len(events)} events, {starts} task starts, "
        f"{cached} cached reuses, {resumes} resume(s)"
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("OK: journal intact, no completed task re-executed")
    return 0


def _check_netlists(paths, fmt: str = "auto") -> int:
    """Lint netlist files of any supported format (check --netlist).

    Foreign formats (``.bench``, structural Verilog) are parsed,
    link-checked and technology-mapped exactly like ``ingest`` does;
    the native format goes through the recovering text linter.  Exit 1
    on any structural error (warnings alone stay exit 0).
    """
    failed = False
    for path in paths:
        design = _ingest_one(path, fmt, "full")
        if design is None:
            failed = True
            continue
        if design.ok and not design.report.warnings:
            print(f"OK: {path}: clean")
        else:
            print(design.report.render())
            if not design.report.ok:
                failed = True
    return 1 if failed else 0


def _ingest_one(path: str, fmt: str, variant: str):
    """Recovering ingest of one file for the CLI; None on I/O failure."""
    from repro.netlist.ingest import IngestError, ingest_file
    from repro.runner.tasks import _library_variant

    try:
        return ingest_file(
            path,
            fmt=None if fmt == "auto" else fmt,
            cells=_library_variant(variant),
        )
    except (OSError, IngestError) as exc:
        print(f"FAIL: {path}: {exc}")
        return None


def _cmd_ingest(args) -> int:
    """Parse + lint + map netlist files; report per-file summaries."""
    failed = False
    summaries = []
    for path in args.files:
        design = _ingest_one(path, args.format, args.variant)
        if design is None:
            failed = True
            continue
        circuit = design.circuit
        summary = {
            "path": path,
            "format": design.fmt,
            "name": design.source_name,
            "ok": design.ok,
            "gates": len(circuit.gates) if circuit else 0,
            "inputs": len(circuit.inputs) if circuit else 0,
            "outputs": len(circuit.outputs) if circuit else 0,
            "scan_cells": design.scan_cells,
            "renamed_signals": len(design.renames),
            "errors": len(design.report.errors),
            "warnings": len(design.report.warnings),
        }
        summaries.append(summary)
        if not design.ok:
            failed = True
        if not args.json:
            status = "OK" if design.ok else "FAIL"
            print(
                f"{status}: {path} [{design.fmt}] {design.source_name}: "
                f"{summary['gates']} gates, {summary['inputs']} PI, "
                f"{summary['outputs']} PO, {design.scan_cells} scan cell(s)"
            )
            if design.report.diagnostics:
                print(design.report.render())
        if design.ok and args.save:
            from repro.netlist.io import write_netlist

            os.makedirs(args.save, exist_ok=True)
            base = os.path.splitext(os.path.basename(path))[0] + ".nl"
            out_path = os.path.join(args.save, base)
            with open(out_path, "w", encoding="utf-8") as fh:
                fh.write(write_netlist(circuit))
            if not args.json:
                print(f"  wrote {out_path}")
    if args.json:
        print(json.dumps(summaries, indent=2, sort_keys=True))
    return 1 if failed else 0


def _cmd_diff(args) -> int:
    reports = []
    for run_id in (args.run_a, args.run_b):
        report = load_report(os.path.join(args.out, run_id))
        if report is None:
            print(f"error: no report for run {run_id!r}", file=sys.stderr)
            return 2
        reports.append(normalize_report(report))
    text_a = json.dumps(reports[0], indent=2, sort_keys=True)
    text_b = json.dumps(reports[1], indent=2, sort_keys=True)
    if text_a == text_b:
        print(
            f"OK: normalized reports of {args.run_a} and {args.run_b} "
            "are identical"
        )
        return 0
    import difflib

    for line in difflib.unified_diff(
        text_a.splitlines(), text_b.splitlines(),
        fromfile=args.run_a, tofile=args.run_b, lineterm="",
    ):
        print(line)
    return 1


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    commands = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "report": _cmd_report,
        "check": _cmd_check,
        "ingest": _cmd_ingest,
        "diff": _cmd_diff,
    }
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
