"""Subprocess entry point for process-isolated task execution.

Invoked as ``python -m repro.runner._worker <spec.json> <out.json>``.
Reads the task spec, executes the registered task kind, and atomically
writes ``{"status": "ok", "payload": ...}`` or ``{"status": "error",
"error": ...}`` to *out.json*.  The orchestrator treats a missing
output file (crash, kill, OOM) as a failed attempt.
"""

from __future__ import annotations

import json
import os
import sys


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            "usage: python -m repro.runner._worker <spec.json> <out.json>",
            file=sys.stderr,
        )
        return 2
    in_path, out_path = argv
    with open(in_path) as fh:
        spec = json.load(fh)

    from repro.runner.registry import TaskContext, get_task
    from repro.utils.supervise import (
        install_core_share_from_env,
        install_deadline_from_env,
    )

    # The orchestrator exports the task timeout as
    # REPRO_SUPERVISE_DEADLINE; entering the scope here lets the engine
    # bound its own shards/SAT calls instead of waiting for the kill.
    install_deadline_from_env()
    # Under the concurrent scheduler, REPRO_RUN_CORE_SHARE carries the
    # parent ledger's fair share at dispatch time; installing it caps
    # every pool in this interpreter so peers don't oversubscribe.
    install_core_share_from_env()

    ctx = TaskContext(
        run_dir=spec["run_dir"],
        task_id=spec["task_id"],
        attempt=int(spec.get("attempt", 1)),
        deps=spec.get("deps") or {},
        dep_meta=spec.get("dep_meta") or {},
        store=None,
    )
    try:
        payload = get_task(spec["kind"])(spec.get("params") or {}, ctx)
        result = {"status": "ok", "payload": payload}
    except Exception as exc:
        result = {"status": "error", "error": f"{type(exc).__name__}: {exc}"}

    tmp = out_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(result, fh, default=str)
    os.replace(tmp, out_path)
    return 0 if result["status"] == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
