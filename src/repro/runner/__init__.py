"""Crash-robust experiment orchestrator.

A *campaign* — e.g. "analyze and resynthesize circuits X, Y, Z for
q = 0..5 with library variants A, B" — is expressed as a DAG of
idempotent tasks (:class:`TaskSpec` / :class:`CampaignSpec`) and
executed by :class:`Runner` with per-task wall-clock timeouts, bounded
retries with exponential backoff, and optional process isolation for
heavy tasks.  Every task's start/end/result/stats is journaled to an
append-only JSONL file under ``benchmarks/results/runs/<run_id>/``, so
a crash, hang or OOM in the middle of a sweep loses at most the task
that was running: :func:`resume` replays the journal and re-executes
only tasks that are missing, failed, or whose input fingerprint
(circuit hash + config + code-relevant env knobs + dependency
fingerprints) changed.

Command line: ``python -m repro.runner {run,resume,report,check,diff}``
(see README.md for the journal schema and CLI reference).
"""

from repro.runner.executor import Runner, resume, run_campaign
from repro.runner.journal import Journal, JournalError, read_journal, replay
from repro.runner.model import CampaignSpec, TaskSpec, fingerprint_campaign
from repro.runner.report import build_report, load_report, normalize_report

__all__ = [
    "CampaignSpec",
    "TaskSpec",
    "Journal",
    "JournalError",
    "Runner",
    "build_report",
    "fingerprint_campaign",
    "load_report",
    "normalize_report",
    "read_journal",
    "replay",
    "resume",
    "run_campaign",
]
