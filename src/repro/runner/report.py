"""Final-report assembly, rendering, and volatile-field normalization.

The report aggregates every task's journaled payload into one JSON
document: the reconstructed Table I / Table II sections (when the
campaign ran paper tasks), the raw per-task results, per-task execution
metadata, and engine-effort totals (where wall-clock and SAT effort
went).  It is journaled as the ``report`` event, written to
``report.json`` in the run directory, and rendered by the CLI.

:func:`normalize_report` strips every timing- and process-history-
dependent field so that two runs of the same campaign — e.g. a
straight-through run and a SIGKILL-interrupted-then-resumed run — can
be compared byte-for-byte: the normalized reports must be identical.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional

# Fields that legitimately differ between two executions of identical
# work: wall-clock stamps and durations, duration-derived ratios, and
# cache-temperature counters that depend on what else already ran in
# the same process (the compiled-evaluator and plan caches are shared
# process-wide, so a resumed run sees them colder or warmer than a
# straight-through run).
VOLATILE_KEYS = frozenset({
    "ts",
    "duration",
    "runtime",
    "baseline_runtime",
    "Rtime",
    "phase_seconds",
    "timings",
    "attempts",
    "run_id",
    "eval_cache_hits",
    "eval_cache_misses",
    "eval_compiles",
    "plan_builds",
    "plan_cache_hits",
    # A corrupted cache entry is only *noticed* on a hit, so the repair
    # count depends on cache temperature, like the counters above.  The
    # repaired results themselves are bit-identical either way.
    "cache_integrity_failures",
    # Supervision bookkeeping is process-history: whether a worker hung,
    # how often the supervisor woke, which breakers are live, and which
    # budget happened to trip first on an abort are all wall-clock
    # facts — the verdicts and tables they annotate are not.
    "runtime_warnings",
    "hung_workers",
    "shard_retries",
    "supervise_wakeups",
    "breaker_state",
    "sat_abort_reasons",
    "abort_reasons",
    # Execution-shape counters: how the work was sliced across workers,
    # threads, and shards.  A jobs=4 campaign under ledger-negotiated
    # worker counts slices differently from a serial one, yet computes
    # bit-identical results — exactly what normalized comparison checks.
    "scheduler",
    "run_jobs",
    "ledger_grants",
    "ledger_workers",
    "parallel_chunks",
    "proc_shards",
    "proc_workers",
    "shm_bytes",
    "shard_imbalance",
    "sat_shards",
    "sat_workers",
})


def normalize_report(report: object) -> object:
    """Deep copy of *report* with every volatile field removed."""
    if isinstance(report, Mapping):
        return {
            k: normalize_report(v)
            for k, v in report.items()
            if k not in VOLATILE_KEYS
        }
    if isinstance(report, (list, tuple)):
        return [normalize_report(v) for v in report]
    return report


def _merge_numeric(dst: Dict[str, object], src: Mapping[str, object]) -> None:
    for key, value in src.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            dst[key] = dst.get(key, 0) + value
        elif isinstance(value, Mapping):
            sub = dst.setdefault(key, {})
            if isinstance(sub, dict):
                _merge_numeric(sub, value)
                if not sub:  # all-non-numeric map (e.g. breaker states)
                    del dst[key]


def build_report(
    campaign_meta: Mapping[str, object],
    run_id: str,
    outcomes: Mapping[str, dict],
    runtime_warnings: Optional[Mapping[str, int]] = None,
    scheduler: Optional[Mapping[str, object]] = None,
) -> dict:
    """Aggregate task *outcomes* into the final report.

    *outcomes* maps task_id to ``{"kind", "status", "payload",
    "duration", "attempts"}`` in campaign order; cached reuses count as
    completed (their recorded payload stands in for a fresh execution).
    *runtime_warnings* maps warning codes (``RUN-THREAD-ABANDONED``) to
    counts from this orchestrator life; present in the report only when
    something actually warned.  *scheduler* is the concurrent
    scheduler's utilization snapshot (``run_jobs``, ``ledger_grants``,
    per-task queue/run spans); volatile by definition, so
    :func:`normalize_report` strips it whole.
    """
    from repro.core.metrics import average_rows

    table1: List[dict] = []
    table2_rows: List[dict] = []
    orig_rows: List[dict] = []
    resyn_rows: List[dict] = []
    results: Dict[str, object] = {}
    tasks: Dict[str, dict] = {}
    engine_totals: Dict[str, object] = {}
    degradations: Dict[str, dict] = {}
    status = "ok"
    for task_id, outcome in outcomes.items():
        task_status = outcome["status"]
        if task_status == "cached":
            task_status = "ok"  # a reused result is a completed result
        tasks[task_id] = {
            "kind": outcome["kind"],
            "status": task_status,
            "duration": outcome.get("duration", 0.0),
            "attempts": outcome.get("attempts", 1),
        }
        if task_status != "ok":
            status = "failed"
            continue
        payload = outcome.get("payload") or {}
        results[task_id] = payload
        if isinstance(payload.get("degradation"), Mapping):
            degradations[task_id] = dict(payload["degradation"])
        if outcome["kind"] == "analyze" and "row" in payload:
            table1.append(payload["row"])
        if outcome["kind"] == "resynthesize":
            if "original_row" in payload:
                table1.append(payload["original_row"])
            rows = payload.get("rows") or []
            table2_rows.extend(rows)
            if len(rows) == 2:
                orig_rows.append(rows[0])
                resyn_rows.append(rows[1])
        for stats_key in ("engine", "stats"):
            stats = payload.get(stats_key)
            if isinstance(stats, Mapping):
                _merge_numeric(engine_totals, stats)

    report: dict = {
        "run_id": run_id,
        "status": status,
        "campaign": dict(campaign_meta),
        "tasks": tasks,
        "results": results,
    }
    if table1:
        report["table1"] = table1
    if table2_rows:
        averages = []
        if orig_rows and resyn_rows:
            avg_orig = average_rows(orig_rows)
            avg_orig["MaxInc"] = "orig"
            avg_resyn = average_rows(resyn_rows)
            avg_resyn["MaxInc"] = "resyn"
            averages = [avg_orig, avg_resyn]
        report["table2"] = {"rows": table2_rows, "averages": averages}
    if engine_totals:
        report["engine_totals"] = engine_totals
    if degradations:
        # Present only when some task degraded (aborted faults,
        # approximate mode, repaired cache corruption): a clean run's
        # report shape is unchanged, and every degradation is explicit —
        # never folded silently into the tables.
        report["degradations"] = degradations
    if runtime_warnings:
        report["runtime_warnings"] = dict(runtime_warnings)
    if scheduler:
        report["scheduler"] = dict(scheduler)
    return report


def write_report(run_dir: str, report: dict) -> str:
    path = os.path.join(run_dir, "report.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_report(run_dir: str) -> Optional[dict]:
    """The run's report — from report.json, else from the journal."""
    path = os.path.join(run_dir, "report.json")
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    journal_path = os.path.join(run_dir, "journal.jsonl")
    if os.path.exists(journal_path):
        from repro.runner.journal import read_journal

        for event in reversed(read_journal(journal_path)):
            if event.get("event") == "report":
                return event["report"]
    return None


def _union_header(rows: List[Mapping[str, object]]) -> List[str]:
    """Ordered union of all row keys.

    Rows journaled by different code revisions (a resumed run mixing old
    cached payloads with fresh ones) may not share a column set; taking
    the union — with ``""`` filling the gaps — keeps rendering working
    instead of crashing on the first ragged row.
    """
    header: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                header.append(key)
    return header


def render_report(report: Mapping[str, object]) -> str:
    """Human-readable rendering: tables plus the effort breakdown."""
    from repro.utils import format_table

    lines: List[str] = [
        f"run {report.get('run_id')} — status {report.get('status')}"
    ]
    table1 = report.get("table1")
    if table1:
        header = _union_header(table1)
        lines.append(format_table(
            header, [[r.get(k, "") for k in header] for r in table1],
            title="TABLE I. CLUSTERED UNDETECTABLE FAULTS",
        ))
    table2 = report.get("table2")
    if table2 and table2.get("rows"):
        rows = list(table2["rows"]) + list(table2.get("averages", ()))
        header = _union_header(rows)
        lines.append(format_table(
            header, [[r.get(k, "") for k in header] for r in rows],
            title="TABLE II. EXPERIMENTAL RESULTS",
        ))
    degradations = report.get("degradations") or {}
    if isinstance(degradations, Mapping) and degradations:
        rows = []
        for tid, deg in degradations.items():
            records = deg.get("records") or []
            detail = "; ".join(str(r) for r in records) if records else "-"
            parts = []
            for k, v in sorted(deg.items()):
                if k == "records" or not v:
                    continue
                if isinstance(v, Mapping):
                    # Nested histograms (abort_reasons) flatten to one
                    # readable entry per bucket.
                    parts.extend(
                        f"{k}[{kk}]={vv}" for kk, vv in sorted(v.items())
                    )
                else:
                    parts.append(f"{k}={v}")
            rows.append([tid, ", ".join(parts) or "-", detail])
        lines.append(format_table(
            ["task", "counters", "detail"], rows,
            title="DEGRADATIONS (results usable but not exact — see detail)",
        ))
    warnings = report.get("runtime_warnings") or {}
    if isinstance(warnings, Mapping) and warnings:
        lines.append(format_table(
            ["code", "count"],
            [[code, count] for code, count in sorted(warnings.items())],
            title="RUNTIME WARNINGS (orchestrator-level, coded)",
        ))
    tasks = report.get("tasks") or {}
    if tasks:
        rows = [
            [tid, meta.get("kind"), meta.get("status"),
             meta.get("attempts"), f"{meta.get('duration', 0.0):.2f}s"]
            for tid, meta in tasks.items()
        ]
        lines.append(format_table(
            ["task", "kind", "status", "attempts", "wall"], rows,
            title="TASKS (where the wall-clock went)",
        ))
    scheduler = report.get("scheduler") or {}
    if isinstance(scheduler, Mapping) and scheduler:
        head = [
            [key, scheduler[key]]
            for key in ("run_jobs", "ledger_total", "ledger_grants",
                        "peak_in_flight", "makespan")
            if key in scheduler
        ]
        if head:
            lines.append(format_table(
                ["metric", "value"],
                [[k, f"{v:.2f}s" if k == "makespan" else v]
                 for k, v in head],
                title="UTILIZATION (campaign scheduler)",
            ))
        spans = scheduler.get("spans")
        if isinstance(spans, Mapping) and spans:
            rows = [
                [tid, f"{span.get('queued', 0.0):.2f}s",
                 f"{span.get('run', 0.0):.2f}s"]
                for tid, span in spans.items()
            ]
            lines.append(format_table(
                ["task", "queued", "run"], rows,
                title="UTILIZATION (per-task queue/run spans)",
            ))
    totals = report.get("engine_totals") or {}
    if totals:
        effort = [
            [key, totals[key]]
            for key in ("sat_calls", "sat_conflicts", "sat_propagations",
                        "sat_learned", "sat_restarts", "sat_lemmas_reused",
                        "sat_shards", "sat_workers",
                        "faults_simulated", "events_propagated",
                        "verdicts_inherited", "verdicts_proved",
                        "hung_workers", "shard_retries",
                        "supervise_wakeups",
                        "ledger_grants", "ledger_workers")
            if key in totals
        ]
        engine = totals.get("engine")
        if isinstance(engine, Mapping):
            effort.extend(
                [f"engine.{key}", engine[key]]
                for key in ("sat_calls", "sat_conflicts",
                            "faults_simulated", "events_propagated")
                if key in engine
            )
        if effort:
            lines.append(format_table(
                ["counter", "total"], effort,
                title="ENGINE EFFORT (where the SAT/simulation work went)",
            ))
        phases = totals.get("phase_seconds")
        if isinstance(engine, Mapping) and not phases:
            phases = engine.get("phase_seconds")
        if isinstance(phases, Mapping) and phases:
            lines.append(format_table(
                ["phase", "seconds"],
                [[name, f"{secs:.3f}"]
                 for name, secs in sorted(phases.items())],
                title="ENGINE PHASES (wall-clock per engine phase)",
            ))
    return "\n\n".join(lines)
