"""Append-only JSONL run journal.

One journal records the whole life of a run, including resumes: every
event is a single JSON object on its own line, flushed and fsync'd
before the orchestrator proceeds, so a SIGKILL / OOM / power cut loses
at most the line being written.  The reader tolerates exactly that
failure mode — a truncated *final* line is ignored — while corruption
anywhere else raises :class:`JournalError`.

``REPRO_JOURNAL_FSYNC`` selects the durability mode (read once per
:class:`Journal`): ``event`` (default) fsyncs after every append —
the historical at-most-one-lost-line guarantee; ``batch`` flushes the
OS buffer per append but defers the fsync to a group
:meth:`Journal.commit` at scheduler wave boundaries and on close.
Batch mode can lose the *tail since the last commit* on power cut, but
a plain SIGKILL loses nothing (the data is in the page cache), and
resume replays the journal either way — at worst a lost tail re-runs
tasks whose completion record vanished, which the fingerprint check
makes safe.  The writer is thread-safe: scheduler threads of one run
share one journal under a lock, and events stay whole-line atomic.

Event schema (all events carry ``event`` and ``ts`` = epoch seconds):

* ``run_start``  — ``run_id``, ``n_tasks``, ``env`` (fingerprinted
  knobs), ``meta`` (campaign metadata);
* ``run_resume`` — ``run_id``; appended every time a journal is resumed;
* ``task_start`` — ``task``, ``kind``, ``attempt`` (1-based),
  ``fingerprint``;
* ``task_end``   — ``task``, ``attempt``, ``status`` (``ok`` | ``failed``
  | ``timeout``), ``duration`` (seconds), ``fingerprint``, ``payload``
  (the task's JSON result, including its EngineStats /
  ResynthesisStats snapshot) on success, ``error`` on failure;
* ``task_retry`` — ``task``, ``next_attempt``, ``backoff`` (seconds
  slept before the next attempt);
* ``task_cached`` — ``task``, ``fingerprint``; the journaled result of a
  previous execution was reused without re-running the task;
* ``task_skipped`` — ``task``, ``reason`` (e.g. ``dep-failed``);
* ``report``     — ``report``: the aggregated final report of the run;
* ``run_end``    — ``run_id``, ``status`` (``ok`` | ``failed``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

FSYNC_EVENT = "event"
FSYNC_BATCH = "batch"
_FSYNC_MODES = (FSYNC_EVENT, FSYNC_BATCH)


class JournalError(RuntimeError):
    """Malformed journal (corruption before the final line)."""


def resolve_fsync_mode(mode: Optional[str] = None) -> str:
    """Durability mode; ``None`` falls back to ``REPRO_JOURNAL_FSYNC``."""
    if mode is None:
        mode = (
            os.environ.get("REPRO_JOURNAL_FSYNC", "").strip() or FSYNC_EVENT
        )
    if mode not in _FSYNC_MODES:
        raise ValueError(
            f"unknown journal fsync mode {mode!r}; "
            f"expected one of {_FSYNC_MODES}"
        )
    return mode


class Journal:
    """Append-only JSONL writer with per-event or group-commit durability."""

    def __init__(self, path: str, fsync_mode: Optional[str] = None):
        self.path = path
        self.fsync_mode = resolve_fsync_mode(fsync_mode)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.RLock()
        self._dirty = False

    def append(self, event: Dict[str, object]) -> None:
        record = dict(event)
        record.setdefault("ts", time.time())
        line = json.dumps(record, sort_keys=True, default=str)
        if "\n" in line:
            raise JournalError("journal events must be single-line JSON")
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync_mode == FSYNC_EVENT:
                os.fsync(self._fh.fileno())
            else:
                self._dirty = True

    def commit(self) -> None:
        """Group-commit: fsync everything appended since the last commit.

        A no-op in ``event`` mode (every append already synced) and when
        nothing was appended, so callers commit unconditionally at wave
        boundaries.
        """
        with self._lock:
            if self._fh is not None and self._dirty:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._dirty = False

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self.commit()
                self._fh.close()
                self._fh = None


def read_journal(path: str) -> List[Dict[str, object]]:
    """Parse a journal, tolerating a crash-truncated final line only."""
    events: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            if i >= len(lines) - 2:
                break  # interrupted mid-write: ignore the partial tail
            raise JournalError(
                f"{path}: malformed journal line {i + 1}"
            ) from None
    return events


@dataclass
class TaskRecord:
    """Replayed state of one task."""

    task_id: str
    attempts: int = 0
    status: Optional[str] = None  # last task_end status
    fingerprint: Optional[str] = None  # of the last successful end
    payload: Optional[dict] = None
    duration: float = 0.0
    started_unfinished: bool = False


@dataclass
class RunLedger:
    """What a journal says already happened, for resume decisions."""

    tasks: Dict[str, TaskRecord] = field(default_factory=dict)
    run_started: bool = False
    run_ended: bool = False
    resumes: int = 0

    def record(self, task_id: str) -> TaskRecord:
        rec = self.tasks.get(task_id)
        if rec is None:
            rec = self.tasks[task_id] = TaskRecord(task_id)
        return rec

    def completed(self, task_id: str, fingerprint: str) -> Optional[TaskRecord]:
        """The reusable result for *task_id*, if any.

        A result is reusable only when the last recorded end was ``ok``
        *and* its fingerprint matches the task's current fingerprint.
        """
        rec = self.tasks.get(task_id)
        if rec is None or rec.status != "ok":
            return None
        if rec.fingerprint != fingerprint:
            return None
        return rec

    def interrupted(self) -> Set[str]:
        """Tasks with a start but no matching end (killed mid-task)."""
        return {
            t for t, rec in self.tasks.items() if rec.started_unfinished
        }


def verify_resume_discipline(events: List[Dict[str, object]]) -> List[str]:
    """Problems with a journal's resume behaviour (empty = clean).

    The crash-robustness contract: once a task has a successful
    ``task_end``, no later life of the run may journal another
    ``task_start`` for it with the same fingerprint — completed work is
    never re-executed.  (A *changed* fingerprint legitimately re-runs.)
    """
    problems: List[str] = []
    completed: Dict[str, object] = {}  # task -> fingerprint of ok end
    for event in events:
        kind = event.get("event")
        if kind == "task_end" and event.get("status") == "ok":
            completed[str(event["task"])] = event.get("fingerprint")
        elif kind == "task_start":
            task = str(event["task"])
            if task in completed and (
                event.get("fingerprint") == completed[task]
            ):
                problems.append(
                    f"completed task {task!r} was re-executed "
                    "(same fingerprint)"
                )
    if not any(e.get("event") == "run_end" for e in events):
        problems.append("journal has no run_end event")
    elif events[-1].get("event") != "run_end":
        problems.append("journal does not end with run_end")
    return problems


def replay(events: List[Dict[str, object]]) -> RunLedger:
    """Fold journal events into a :class:`RunLedger`."""
    ledger = RunLedger()
    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            ledger.run_started = True
        elif kind == "run_resume":
            ledger.resumes += 1
            ledger.run_ended = False
        elif kind == "run_end":
            ledger.run_ended = True
        elif kind == "task_start":
            rec = ledger.record(str(event["task"]))
            rec.attempts += 1
            rec.started_unfinished = True
        elif kind == "task_end":
            rec = ledger.record(str(event["task"]))
            rec.started_unfinished = False
            rec.status = str(event.get("status"))
            rec.duration = float(event.get("duration", 0.0))
            if rec.status == "ok":
                rec.fingerprint = event.get("fingerprint")
                rec.payload = event.get("payload")
            else:
                rec.fingerprint = None
                rec.payload = None
    return ledger
