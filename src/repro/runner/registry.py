"""Task-kind registry for the experiment orchestrator.

Task implementations are plain functions ``(params, ctx) -> payload``
registered under a kind name.  Payloads must be JSON-serializable: they
are journaled verbatim in ``task_end`` events and shipped across the
process-isolation boundary.  Rich Python results (e.g.
:class:`~repro.core.flow.DesignState` objects) go into ``ctx.store``,
which exists only for inline execution in the orchestrating process.

A kind may also register a *fingerprint hook* — extra input-content
material (e.g. a structural circuit hash) folded into the task's
fingerprint so resume re-executes when the inputs, not just the
parameters, changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

TaskFn = Callable[[Mapping[str, object], "TaskContext"], dict]
FingerprintFn = Callable[[Mapping[str, object]], object]

_TASKS: Dict[str, TaskFn] = {}
_FINGERPRINTS: Dict[str, FingerprintFn] = {}


@dataclass
class TaskContext:
    """What a task implementation sees at execution time."""

    run_dir: str
    task_id: str
    attempt: int = 1
    deps: Dict[str, dict] = field(default_factory=dict)  # dep payloads
    dep_meta: Dict[str, dict] = field(default_factory=dict)
    store: Optional[dict] = None  # in-process object store (inline only)


def task(name: str, fingerprint: Optional[FingerprintFn] = None):
    """Register a task implementation under *name*."""

    def decorator(fn: TaskFn) -> TaskFn:
        if name in _TASKS:
            raise ValueError(f"task kind {name!r} already registered")
        _TASKS[name] = fn
        if fingerprint is not None:
            _FINGERPRINTS[name] = fingerprint
        return fn

    return decorator


def get_task(name: str) -> TaskFn:
    _ensure_builtin_tasks()
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown task kind {name!r}; known: {sorted(_TASKS)}"
        ) from None


def fingerprint_extra(name: str, params: Mapping[str, object]) -> object:
    """Kind-specific input digest folded into the task fingerprint."""
    _ensure_builtin_tasks()
    if name not in _TASKS:
        raise KeyError(
            f"unknown task kind {name!r}; known: {sorted(_TASKS)}"
        )
    hook = _FINGERPRINTS.get(name)
    return hook(params) if hook is not None else None


def _ensure_builtin_tasks() -> None:
    # Imported lazily so `import repro.runner` stays cheap and the
    # registry module has no dependency on the heavy flow modules.
    import repro.runner.tasks  # noqa: F401
