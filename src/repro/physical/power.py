"""Power analysis: switching (dynamic) + leakage (static).

Signal probabilities come from a seeded random-pattern bit-parallel
simulation; per-net switching activity is ``2 p (1 - p)`` (the toggle
probability of an uncorrelated sampled signal).  Dynamic power is
activity-weighted capacitance (pins + routed wire); leakage is the sum of
per-cell leakage numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.netlist.simulator import simulate
from repro.physical.layout import Layout
from repro.physical.timing import net_load_cap
from repro.utils.rng import make_rng

#: Scale factor folding Vdd^2 * f into arbitrary power units.
DYNAMIC_SCALE = 0.05
ACTIVITY_PATTERNS = 256


@dataclass(frozen=True)
class PowerReport:
    dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage


def signal_probabilities(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    seed: int = 0,
    n_patterns: int = ACTIVITY_PATTERNS,
) -> Dict[str, float]:
    """Per-net probability of logic 1 under random inputs."""
    rng = make_rng(seed)
    mask = (1 << n_patterns) - 1
    pi_values = {pi: rng.getrandbits(n_patterns) for pi in circuit.inputs}
    values = simulate(circuit, cells, pi_values, mask)
    return {
        net: bin(v).count("1") / n_patterns for net, v in values.items()
    }


def power_analysis(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    layout: Optional[Layout] = None,
    seed: int = 0,
) -> PowerReport:
    """Total power of the placed-and-routed design."""
    probs = signal_probabilities(circuit, cells, seed=seed)
    dynamic = 0.0
    for net, p in probs.items():
        if net in (CONST0, CONST1):
            continue
        activity = 2.0 * p * (1.0 - p)
        cap = net_load_cap(circuit, cells, layout, net)
        drv = circuit.driver(net)
        if drv is not None:
            # Include the driving cell's own output capacitance proxy.
            cap += cells[circuit.gates[drv].cell].input_cap
        dynamic += activity * cap
    leakage = sum(cells[g.cell].leakage for g in circuit)
    return PowerReport(dynamic=dynamic * DYNAMIC_SCALE, leakage=leakage)
