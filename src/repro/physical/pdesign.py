"""``PDesign()`` — the physical design entry point of the paper.

Runs placement and routing on a fixed floorplan, then timing and power
analysis, returning a :class:`PhysicalDesign` with the layout and the
three constraint metrics (delay, power, cell area).  The resynthesis
procedure compares these against the original design under the maximum
acceptable increase ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.library.cell import StandardCell
from repro.netlist.circuit import Circuit
from repro.physical.floorplan import Floorplan, make_floorplan, total_tracks
from repro.physical.layout import Layout
from repro.physical.placement import place
from repro.physical.power import PowerReport, power_analysis
from repro.physical.routing import route
from repro.physical.timing import TimingReport, static_timing


@dataclass
class PhysicalDesign:
    """A completed physical design with its constraint metrics."""

    circuit: Circuit
    floorplan: Floorplan
    layout: Layout
    timing: TimingReport
    power: PowerReport
    area_tracks: int

    @property
    def delay(self) -> float:
        return self.timing.critical_path_delay

    @property
    def total_power(self) -> float:
        return self.power.total

    def meets_constraints(
        self, reference: "PhysicalDesign", q_percent: float
    ) -> bool:
        """Paper's acceptance test: same die, delay/power within (1+q).

        Die area must not grow (the resynthesized circuit must fit the
        original floorplan); delay and power may exceed the reference by
        at most *q_percent* percent.
        """
        if self.floorplan != reference.floorplan:
            return False
        limit = 1.0 + q_percent / 100.0
        if self.delay > reference.delay * limit:
            return False
        if self.total_power > reference.total_power * limit:
            return False
        return True


def pdesign(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    floorplan: Optional[Floorplan] = None,
    seed: int = 0,
    utilization: float = 0.70,
    effort: int = 1,
) -> PhysicalDesign:
    """Place, route and analyze *circuit*.

    With ``floorplan=None`` a new die is sized at *utilization* (used for
    the original design); passing an existing floorplan reuses the fixed
    die (used for every resynthesized version).  Raises
    :class:`~repro.physical.placement.PlacementError` when the circuit
    does not fit the fixed die.
    """
    if floorplan is None:
        floorplan = make_floorplan(circuit, cells, utilization)
    layout = place(circuit, cells, floorplan, seed=seed, effort=effort)
    route(circuit, cells, layout)
    timing = static_timing(circuit, cells, layout)
    power = power_analysis(circuit, cells, layout, seed=seed)
    return PhysicalDesign(
        circuit=circuit,
        floorplan=floorplan,
        layout=layout,
        timing=timing,
        power=power,
        area_tracks=total_tracks(circuit, cells),
    )
