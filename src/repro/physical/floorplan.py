"""Fixed-die floorplanning.

The paper keeps the die area of the resynthesized circuit identical to
the original design ("no increase in die area is allowed ... so as to
maintain the original floorplan"), with 70% core utilization for the
original physical design.  ``make_floorplan`` sizes a roughly square die
for the original netlist; the same :class:`Floorplan` is then reused for
every resynthesized version, and a version that does not fit is rejected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.library.cell import StandardCell
from repro.netlist.circuit import Circuit

#: One placement site (track) corresponds to this much cell area.
AREA_PER_TRACK = 4.0

DEFAULT_UTILIZATION = 0.70


@dataclass(frozen=True)
class Floorplan:
    """A fixed die: *rows* placement rows of *width* tracks each."""

    width: int
    rows: int

    @property
    def capacity_tracks(self) -> int:
        return self.width * self.rows

    def fits(self, circuit: Circuit, cells: Mapping[str, StandardCell]) -> bool:
        """True if the circuit's cells fit on this die at 100% packing."""
        return total_tracks(circuit, cells) <= self.capacity_tracks


def cell_tracks(cell: StandardCell) -> int:
    """Placement width of *cell* in tracks."""
    return max(1, round(cell.area / AREA_PER_TRACK))


def total_tracks(circuit: Circuit, cells: Mapping[str, StandardCell]) -> int:
    """Total placement tracks needed by *circuit*."""
    return sum(cell_tracks(cells[g.cell]) for g in circuit)


def make_floorplan(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    utilization: float = DEFAULT_UTILIZATION,
) -> Floorplan:
    """Size a roughly square fixed die for *circuit* at *utilization*."""
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization {utilization} out of (0, 1]")
    need = total_tracks(circuit, cells) / utilization
    rows = max(2, round(math.sqrt(need / 8.0)))
    width = max(8, math.ceil(need / rows))
    return Floorplan(width=width, rows=rows)
