"""Row-based placement: topological seeding plus annealing refinement.

Gates are assigned to rows in topological order (snaking across the die so
connected logic lands close together), then a seeded simulated-annealing
pass swaps gates / relocates gates between rows to reduce half-perimeter
wirelength.  Exact x coordinates come from packing each row left to right
with even spreading; the annealer uses those positions, refreshing the
affected rows after every accepted move.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Tuple

from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.physical.floorplan import Floorplan, cell_tracks
from repro.physical.layout import Layout, PlacedGate
from repro.utils.rng import make_rng


class PlacementError(Exception):
    """The circuit does not fit in the floorplan."""


def place(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    floorplan: Floorplan,
    seed: int = 0,
    effort: int = 1,
) -> Layout:
    """Place *circuit* on *floorplan*; returns a legal :class:`Layout`.

    Raises :class:`PlacementError` when the cells cannot fit — the caller
    (the resynthesis flow) treats that as a die-area constraint violation.
    """
    widths = {g.name: cell_tracks(cells[g.cell]) for g in circuit}
    total = sum(widths.values())
    if total > floorplan.capacity_tracks:
        raise PlacementError(
            f"{total} tracks needed, die has {floorplan.capacity_tracks}"
        )

    # --- initial snake placement in topological order ------------------
    rows: List[List[str]] = [[] for _ in range(floorplan.rows)]
    row_fill = [0] * floorplan.rows
    order = circuit.topo_order()
    target_per_row = total / floorplan.rows
    row = 0
    for gname in order:
        w = widths[gname]
        # Advance when the row reached its fair share and space remains
        # in later rows; never exceed physical row width.
        while row < floorplan.rows - 1 and (
            row_fill[row] + w > floorplan.width
            or row_fill[row] >= target_per_row
        ):
            row += 1
        if row_fill[row] + w > floorplan.width:
            # Fall back to first row with space.
            for r in range(floorplan.rows):
                if row_fill[r] + w <= floorplan.width:
                    row = r
                    break
            else:
                raise PlacementError("row overflow during initial placement")
        rows[row].append(gname)
        row_fill[row] += w

    positions: Dict[str, Tuple[int, int]] = {}

    def repack_row(r: int) -> None:
        """Recompute x positions of row *r*, spreading slack evenly."""
        gs = rows[r]
        used = sum(widths[g] for g in gs)
        slack = floorplan.width - used
        gap = slack // (len(gs) + 1) if gs else 0
        x = gap
        for g in gs:
            positions[g] = (x, r)
            x += widths[g] + gap

    for r in range(floorplan.rows):
        repack_row(r)

    # --- pin position helpers ------------------------------------------
    # PIs sit on the die's left edge, evenly spread; constants are local.
    pi_pos: Dict[str, Tuple[int, int]] = {}
    n_pi = max(1, len(circuit.inputs))
    for i, pi in enumerate(circuit.inputs):
        pi_pos[pi] = (0, (i * floorplan.rows) // n_pi)

    def net_pins(net: str) -> List[Tuple[int, int]]:
        pins: List[Tuple[int, int]] = []
        drv = circuit.driver(net)
        if drv is not None:
            x, y = positions[drv]
            pins.append((x + widths[drv] // 2, y))
        elif net in pi_pos:
            pins.append(pi_pos[net])
        for gname, _pin in circuit.loads(net):
            x, y = positions[gname]
            pins.append((x + widths[gname] // 2, y))
        return pins

    def net_hpwl(net: str) -> int:
        pins = net_pins(net)
        if len(pins) < 2:
            return 0
        xs = [p[0] for p in pins]
        ys = [p[1] for p in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def gate_nets(gname: str) -> List[str]:
        g = circuit.gates[gname]
        nets = [n for n in g.pins.values() if n not in (CONST0, CONST1)]
        nets.append(g.output)
        return nets

    # --- annealing refinement ------------------------------------------
    rng = make_rng(seed)
    names = list(circuit.gates)
    if len(names) >= 2 and effort > 0:
        iters = effort * 12 * len(names)
        temp = max(2.0, floorplan.width / 4.0)
        cooling = math.exp(math.log(0.05 / temp) / max(1, iters))
        row_of = {g: r for r in range(floorplan.rows) for g in rows[r]}
        for _ in range(iters):
            a = rng.choice(names)
            b = rng.choice(names)
            if a == b:
                continue
            ra, rb = row_of[a], row_of[b]
            if ra == rb and widths[a] != widths[b]:
                continue  # same-row unequal swap would shift neighbours
            if ra != rb:
                # Capacity check for cross-row swap.
                if (row_fill[ra] - widths[a] + widths[b] > floorplan.width or
                        row_fill[rb] - widths[b] + widths[a] > floorplan.width):
                    continue
            nets = set(gate_nets(a)) | set(gate_nets(b))
            before = sum(net_hpwl(n) for n in nets)
            ia, ib = rows[ra].index(a), rows[rb].index(b)
            rows[ra][ia], rows[rb][ib] = b, a
            row_of[a], row_of[b] = rb, ra
            if ra != rb:
                row_fill[ra] += widths[b] - widths[a]
                row_fill[rb] += widths[a] - widths[b]
            repack_row(ra)
            if rb != ra:
                repack_row(rb)
            after = sum(net_hpwl(n) for n in nets)
            delta = after - before
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                pass  # accept
            else:  # revert
                rows[ra][ia], rows[rb][ib] = a, b
                row_of[a], row_of[b] = ra, rb
                if ra != rb:
                    row_fill[ra] += widths[a] - widths[b]
                    row_fill[rb] += widths[b] - widths[a]
                repack_row(ra)
                if rb != ra:
                    repack_row(rb)
            temp *= cooling

    layout = Layout(die_width=floorplan.width, die_rows=floorplan.rows)
    for gname in names:
        x, y = positions[gname]
        layout.gates[gname] = PlacedGate(
            name=gname, cell=circuit.gates[gname].cell,
            x=x, y=y, width=widths[gname],
        )
    problems = layout.check_legal()
    if problems:
        raise PlacementError("; ".join(problems[:3]))
    return layout
