"""Physical design substrate: the paper's ``PDesign()`` primitive.

Fixed-die row-based floorplanning (70% core utilization as in the paper's
setup), seeded simulated-annealing placement, grid global routing with
explicit metal segments and vias (the geometry the DFM guideline checker
inspects), RC-annotated static timing analysis and a switching+leakage
power model.

``PDesign()`` returns a :class:`~repro.physical.pdesign.PhysicalDesign`
carrying the layout plus the three constraint metrics the resynthesis
procedure tracks: critical path delay, power consumption, and die area.
"""

from repro.physical.layout import Layout, PlacedGate, RouteSegment, Via
from repro.physical.floorplan import Floorplan, make_floorplan
from repro.physical.placement import place
from repro.physical.routing import route
from repro.physical.timing import TimingReport, static_timing
from repro.physical.power import PowerReport, power_analysis
from repro.physical.pdesign import PhysicalDesign, pdesign

__all__ = [
    "Layout",
    "PlacedGate",
    "RouteSegment",
    "Via",
    "Floorplan",
    "make_floorplan",
    "place",
    "route",
    "TimingReport",
    "static_timing",
    "PowerReport",
    "power_analysis",
    "PhysicalDesign",
    "pdesign",
]
