"""Static timing analysis on a placed-and-routed netlist.

Gate delay model: ``intrinsic + drive_res * (pin_caps + wire_cap)`` where
the wire capacitance is proportional to the routed length of the output
net.  Arrival times propagate topologically from PIs (arrival 0); the
critical path delay is the maximum PO arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.physical.layout import Layout

#: Wire capacitance per routed track (fF/track).
WIRE_CAP_PER_TRACK = 0.4
#: Capacitive load of a primary output pad (fF).
PO_LOAD_CAP = 6.0


@dataclass(frozen=True)
class TimingReport:
    """Critical path delay and the path itself (as gate names)."""

    critical_path_delay: float
    critical_path: Tuple[str, ...]
    arrival: Mapping[str, float]  # net -> arrival time


def net_load_cap(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    layout: Optional[Layout],
    net: str,
) -> float:
    """Total capacitive load on *net*: sink pins + wire + PO pad."""
    cap = 0.0
    # Sorted: loads() iteration order is salted per process, and float
    # accumulation order must not leak into timing numbers.
    for gname, pin in sorted(circuit.loads(net)):
        cap += cells[circuit.gates[gname].cell].input_cap
    if layout is not None:
        cap += WIRE_CAP_PER_TRACK * layout.net_length(net)
    if net in circuit.outputs:
        cap += PO_LOAD_CAP
    return cap


def static_timing(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    layout: Optional[Layout] = None,
) -> TimingReport:
    """Compute arrival times and the critical path."""
    arrival: Dict[str, float] = {CONST0: 0.0, CONST1: 0.0}
    from_gate: Dict[str, Optional[str]] = {}
    for pi in circuit.inputs:
        arrival[pi] = 0.0
        from_gate[pi] = None
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        cell = cells[gate.cell]
        in_arr = 0.0
        for net in gate.pins.values():
            in_arr = max(in_arr, arrival[net])
        load = net_load_cap(circuit, cells, layout, gate.output)
        arrival[gate.output] = in_arr + cell.intrinsic_delay + cell.drive_res * load
        from_gate[gate.output] = gname
    worst_net, worst = None, 0.0
    for po in circuit.outputs:
        if arrival[po] >= worst:
            worst, worst_net = arrival[po], po
    path: List[str] = []
    net = worst_net
    while net is not None:
        gname = from_gate.get(net)
        if gname is None:
            break
        path.append(gname)
        gate = circuit.gates[gname]
        # Follow the latest-arriving input.
        net = max(gate.pins.values(), key=lambda n: arrival[n], default=None)
        if net is not None and circuit.driver(net) is None:
            break
    return TimingReport(
        critical_path_delay=worst,
        critical_path=tuple(reversed(path)),
        arrival=arrival,
    )
