"""Layout data model: placed gates, routed metal segments and vias.

Coordinates are in abstract *tracks* (one routing pitch).  Rows are
horizontal; a placed gate occupies ``width`` contiguous tracks in one row.
Routing uses two layers: ``M2`` for horizontal segments and ``M3`` for
vertical segments, with a via wherever a net changes layer or enters a
pin.  This is the geometry that the DFM guideline checker inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

M2 = "M2"  # horizontal
M3 = "M3"  # vertical


@dataclass(frozen=True)
class PlacedGate:
    """A gate placed at (x, y): x = leftmost track, y = row index."""

    name: str
    cell: str
    x: int
    y: int
    width: int

    @property
    def pin_x(self) -> int:
        """Track where the gate's pins connect (cell center)."""
        return self.x + self.width // 2


@dataclass(frozen=True)
class RouteSegment:
    """An axis-parallel wire piece on one metal layer."""

    net: str
    layer: str
    x1: int
    y1: int
    x2: int
    y2: int

    @property
    def length(self) -> int:
        return abs(self.x2 - self.x1) + abs(self.y2 - self.y1)

    @property
    def horizontal(self) -> bool:
        return self.y1 == self.y2


@dataclass(frozen=True)
class Via:
    """A layer-change (or pin access) cut at (x, y).

    ``owner`` identifies the (gate, pin) this via accesses when it is a
    sink-pin via; it is ``("<gate>", "<pin>")`` there, ``("<gate>", "")``
    for a driver-pin via, and ``None`` for bend vias on the net stem.
    """

    net: str
    x: int
    y: int
    lower: str
    upper: str
    owner: Tuple[str, str] | None = None


@dataclass
class Layout:
    """A placed-and-routed design on a fixed die."""

    die_width: int
    die_rows: int
    gates: Dict[str, PlacedGate] = field(default_factory=dict)
    segments: List[RouteSegment] = field(default_factory=list)
    vias: List[Via] = field(default_factory=list)

    def net_length(self, net: str) -> int:
        """Total routed wirelength of *net* in tracks."""
        return sum(s.length for s in self.segments if s.net == net)

    def wirelength(self) -> int:
        """Total routed wirelength of the design."""
        return sum(s.length for s in self.segments)

    def utilization(self) -> float:
        """Fraction of die sites occupied by cells."""
        used = sum(g.width for g in self.gates.values())
        return used / float(self.die_width * self.die_rows)

    def row_occupancy(self) -> List[int]:
        """Occupied tracks per row."""
        occ = [0] * self.die_rows
        for g in self.gates.values():
            occ[g.y] += g.width
        return occ

    def check_legal(self) -> List[str]:
        """Return a list of placement legality violations (empty = legal)."""
        problems: List[str] = []
        by_row: Dict[int, List[PlacedGate]] = {}
        for g in self.gates.values():
            if g.y < 0 or g.y >= self.die_rows:
                problems.append(f"{g.name}: row {g.y} outside die")
                continue
            if g.x < 0 or g.x + g.width > self.die_width:
                problems.append(f"{g.name}: x span outside die")
            by_row.setdefault(g.y, []).append(g)
        for row, gs in by_row.items():
            gs.sort(key=lambda g: g.x)
            for a, b in zip(gs, gs[1:]):
                if a.x + a.width > b.x:
                    problems.append(
                        f"overlap in row {row}: {a.name} and {b.name}"
                    )
        return problems
