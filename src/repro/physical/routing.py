"""Grid global routing with explicit geometry.

Each multi-pin net is routed as a star from its driver pin: a vertical M3
segment to the sink's row followed by a horizontal M2 segment to the sink
pin, with vias at the pin access points and at each bend.  Horizontal
segments are assigned one of ``CHANNEL_TRACKS`` sub-tracks in their row
channel (and vertical segments one of the column sub-tracks) by a stable
per-net hash — this is what lets the DFM checker find pairs of nets with
long parallel runs on adjacent tracks (likely-short sites) without a full
detailed router.

Constant nets are ties realized inside the cells and are not routed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.physical.layout import M2, M3, Layout, RouteSegment, Via

#: Routing sub-tracks available per row channel / column.
CHANNEL_TRACKS = 7


from repro.utils.hashing import stable_hash as _stable_hash


def subtrack(net: str, horizontal: bool) -> int:
    """Deterministic sub-track assignment of a net within a channel."""
    return _stable_hash(("h:" if horizontal else "v:") + net) % CHANNEL_TRACKS


def route(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    layout: Layout,
) -> Layout:
    """Route every signal net of *circuit* on *layout* (in place).

    Pin locations come from the placed gates; primary inputs enter at the
    left die edge, spread over the rows.  Returns the same layout with
    ``segments`` and ``vias`` populated.
    """
    del cells  # pin geometry is uniform per track in this model
    layout.segments.clear()
    layout.vias.clear()
    pi_pos: Dict[str, Tuple[int, int]] = {}
    n_pi = max(1, len(circuit.inputs))
    for i, pi in enumerate(circuit.inputs):
        pi_pos[pi] = (0, (i * layout.die_rows) // n_pi)

    def source_of(net: str) -> Tuple[int, int]:
        drv = circuit.driver(net)
        if drv is not None:
            g = layout.gates[drv]
            return g.pin_x, g.y
        if net in pi_pos:
            return pi_pos[net]
        raise ValueError(f"net {net} has no source (undriven, not a PI)")

    for net in sorted(circuit.nets()):
        if net in (CONST0, CONST1):
            continue
        sx, sy = source_of(net)
        sinks: List[Tuple[int, int, Tuple[str, str] | None]] = [
            (layout.gates[gname].pin_x, layout.gates[gname].y, (gname, pin))
            for gname, pin in sorted(circuit.loads(net))
        ]
        if net in circuit.outputs:
            # POs exit at the right die edge in their source row.
            sinks.append((layout.die_width - 1, sy, None))
        if not sinks:
            continue
        drv = circuit.driver(net)
        layout.vias.append(
            Via(net, sx, sy, "M1", M3, owner=(drv, "") if drv else None)
        )
        for tx, ty, owner in sinks:
            if ty != sy:
                layout.segments.append(
                    RouteSegment(net, M3, sx, min(sy, ty), sx, max(sy, ty))
                )
            if tx != sx:
                layout.segments.append(
                    RouteSegment(net, M2, min(sx, tx), ty, max(sx, tx), ty)
                )
            if ty != sy and tx != sx:
                layout.vias.append(Via(net, sx, ty, M2, M3))
            layout.vias.append(Via(net, tx, ty, "M1", M2, owner=owner))
    return layout
