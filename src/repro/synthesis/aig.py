"""And-Inverter Graph with structural hashing.

Literal encoding: node *n* in positive phase is literal ``2n``, in negative
phase ``2n + 1``.  Node 0 is constant false (so literal 1 is constant
true).  PIs are nodes ``1 .. num_pis``; AND nodes follow.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.circuit import CONST0, CONST1, CellDef, Circuit

FALSE = 0
TRUE = 1


def lit_of(node: int, complemented: bool = False) -> int:
    return 2 * node + (1 if complemented else 0)


def node_of(lit: int) -> int:
    return lit >> 1


def is_compl(lit: int) -> bool:
    return bool(lit & 1)


class Aig:
    """A combinational And-Inverter Graph.

    AND nodes are created through :meth:`and_`, which applies constant
    folding, idempotence/complement rules, canonical fanin ordering and
    structural hashing, so the graph never contains two identical ANDs.
    """

    def __init__(self, num_pis: int, pi_names: Optional[Sequence[str]] = None):
        self.num_pis = num_pis
        self.pi_names = list(pi_names) if pi_names else [
            f"i{k}" for k in range(num_pis)
        ]
        if len(self.pi_names) != num_pis:
            raise ValueError("pi_names length mismatch")
        # fanins[n] = (lit0, lit1) for AND nodes; PIs and const have None.
        self.fanins: List[Optional[Tuple[int, int]]] = [None] * (num_pis + 1)
        self._strash: Dict[Tuple[int, int], int] = {}
        self.outputs: List[int] = []  # literals
        self.output_names: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def pi_lit(self, index: int) -> int:
        """Literal for PI *index* (0-based)."""
        if not 0 <= index < self.num_pis:
            raise IndexError(index)
        return lit_of(index + 1)

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with simplification and strashing."""
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a ^ b == 1:  # x AND NOT x
            return FALSE
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self.fanins)
            self.fanins.append(key)
            self._strash[key] = node
        return lit_of(node)

    def or_(self, a: int, b: int) -> int:
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        """``sel ? t : e``."""
        return self.or_(self.and_(sel, t), self.and_(sel ^ 1, e))

    def add_output(self, lit: int, name: str) -> None:
        self.outputs.append(lit)
        self.output_names.append(name)

    def from_tt(self, tt: int, input_lits: Sequence[int]) -> int:
        """Build a literal computing truth table *tt* over *input_lits*.

        Recursive Shannon decomposition on the last variable, with the
        base cases folding to constants/literals; strashing keeps shared
        subfunctions shared.
        """
        n = len(input_lits)
        size = 1 << n
        mask = (1 << size) - 1
        tt &= mask
        if tt == 0:
            return FALSE
        if tt == mask:
            return TRUE
        if n == 1:
            return input_lits[0] if tt == 0b10 else input_lits[0] ^ 1
        half = size >> 1
        lo_mask = (1 << half) - 1
        lo = self.from_tt(tt & lo_mask, input_lits[:-1])
        hi = self.from_tt(tt >> half, input_lits[:-1])
        return self.mux_(input_lits[-1], hi, lo)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total node count including constant and PIs."""
        return len(self.fanins)

    def and_nodes(self) -> range:
        return range(self.num_pis + 1, len(self.fanins))

    def is_pi(self, node: int) -> bool:
        return 1 <= node <= self.num_pis

    def num_ands(self) -> int:
        return len(self.fanins) - self.num_pis - 1

    def levels(self) -> List[int]:
        """Per-node logic depth (PIs at 0)."""
        lvl = [0] * len(self.fanins)
        for n in self.and_nodes():
            f0, f1 = self.fanins[n]  # type: ignore[misc]
            lvl[n] = 1 + max(lvl[node_of(f0)], lvl[node_of(f1)])
        return lvl

    def depth(self) -> int:
        if not self.outputs:
            return 0
        lvl = self.levels()
        return max(lvl[node_of(o)] for o in self.outputs)

    def fanout_counts(self) -> List[int]:
        """References per node from AND fanins and outputs."""
        refs = [0] * len(self.fanins)
        for n in self.and_nodes():
            f0, f1 = self.fanins[n]  # type: ignore[misc]
            refs[node_of(f0)] += 1
            refs[node_of(f1)] += 1
        for o in self.outputs:
            refs[node_of(o)] += 1
        return refs

    def reachable_from_outputs(self) -> List[bool]:
        """Mark nodes in the transitive fanin of any output."""
        mark = [False] * len(self.fanins)
        stack = [node_of(o) for o in self.outputs]
        while stack:
            n = stack.pop()
            if mark[n]:
                continue
            mark[n] = True
            fi = self.fanins[n]
            if fi is not None:
                stack.append(node_of(fi[0]))
                stack.append(node_of(fi[1]))
        return mark

    def simulate(self, pi_values: Sequence[int], mask: int) -> List[int]:
        """Bit-parallel simulation; returns per-node values."""
        if len(pi_values) != self.num_pis:
            raise ValueError("pi_values length mismatch")
        val = [0] * len(self.fanins)
        for i, v in enumerate(pi_values):
            val[i + 1] = v & mask
        for n in self.and_nodes():
            f0, f1 = self.fanins[n]  # type: ignore[misc]
            v0 = val[node_of(f0)] ^ (-1 if is_compl(f0) else 0)
            v1 = val[node_of(f1)] ^ (-1 if is_compl(f1) else 0)
            val[n] = v0 & v1 & mask
        return val

    def output_values(self, pi_values: Sequence[int], mask: int) -> List[int]:
        val = self.simulate(pi_values, mask)
        out = []
        for o in self.outputs:
            v = val[node_of(o)]
            if is_compl(o):
                v = ~v & mask
            out.append(v)
        return out

    def cleanup(self) -> "Aig":
        """Return a copy without dangling AND nodes."""
        mark = self.reachable_from_outputs()
        new = Aig(self.num_pis, self.pi_names)
        remap: Dict[int, int] = {0: FALSE}
        for i in range(1, self.num_pis + 1):
            remap[i] = lit_of(i)
        for n in self.and_nodes():
            if not mark[n]:
                continue
            f0, f1 = self.fanins[n]  # type: ignore[misc]
            a = remap[node_of(f0)] ^ (1 if is_compl(f0) else 0)
            b = remap[node_of(f1)] ^ (1 if is_compl(f1) else 0)
            remap[n] = new.and_(a, b)
        for o, name in zip(self.outputs, self.output_names):
            lit = remap[node_of(o)] ^ (1 if is_compl(o) else 0)
            new.add_output(lit, name)
        return new


def aig_from_circuit(circuit: Circuit, cells: Mapping[str, CellDef]) -> Aig:
    """Convert a mapped netlist into an AIG (PI/PO names preserved)."""
    aig = Aig(len(circuit.inputs), list(circuit.inputs))
    net_lit: Dict[str, int] = {CONST0: FALSE, CONST1: TRUE}
    for i, pi in enumerate(circuit.inputs):
        net_lit[pi] = aig.pi_lit(i)
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        cell = cells[gate.cell]
        ins = [net_lit[gate.pins[p]] for p in cell.input_pins]
        net_lit[gate.output] = aig.from_tt(cell.tt, ins)
    for po in circuit.outputs:
        aig.add_output(net_lit[po], po)
    return aig
