"""AIG optimization passes: balancing and cut-based refactoring.

These are deliberately modest versions of the classic passes: `balance`
rebuilds flattened AND trees with minimum depth (Huffman pairing on
levels), and `rewrite` re-expresses each node from the truth table of a
small structural cut, keeping the result only when it shrinks the graph.
Together with structural hashing at construction they give the mapper a
reasonable starting point.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.synthesis.aig import FALSE, Aig, is_compl, lit_of, node_of

_CUT_SIZE = 4
_CUTS_PER_NODE = 8

# Standard simulation patterns for up-to-4-variable cut functions.
_VAR_PATTERNS = (0xAAAA, 0xCCCC, 0xF0F0, 0xFF00)
_TT_MASK = 0xFFFF


def balance(aig: Aig) -> Aig:
    """Depth-minimizing AND-tree balancing.

    Conjunctions are flattened through non-complemented AND edges and
    re-paired smallest-level-first, which minimizes the depth of each
    tree; structural hashing re-shares common subtrees.
    """
    new = Aig(aig.num_pis, aig.pi_names)
    remap: Dict[int, int] = {0: FALSE}
    for i in range(1, aig.num_pis + 1):
        remap[i] = lit_of(i)
    level: Dict[int, int] = {}

    def new_level(lit: int) -> int:
        return level.get(node_of(lit), 0)

    refs = aig.fanout_counts()

    def conjuncts(lit: int, depth: int) -> List[int]:
        """Flatten the conjunction rooted at *lit* (in the old graph)."""
        node = node_of(lit)
        fi = aig.fanins[node]
        # Stop at complemented edges, PIs, shared nodes, or depth cap.
        if is_compl(lit) or fi is None or refs[node] > 1 or depth >= 8:
            return [lit]
        return conjuncts(fi[0], depth + 1) + conjuncts(fi[1], depth + 1)

    for n in aig.and_nodes():
        f0, f1 = aig.fanins[n]  # type: ignore[misc]
        parts = conjuncts(f0, 1) + conjuncts(f1, 1)
        mapped = [remap[node_of(p)] ^ (1 if is_compl(p) else 0) for p in parts]
        heap: List[Tuple[int, int, int]] = [
            (new_level(m), i, m) for i, m in enumerate(mapped)
        ]
        heapq.heapify(heap)
        uid = len(mapped)
        while len(heap) > 1:
            l0, _, a = heapq.heappop(heap)
            l1, _, b = heapq.heappop(heap)
            lit = new.and_(a, b)
            level[node_of(lit)] = max(l0, l1) + 1
            heapq.heappush(heap, (level.get(node_of(lit), 0), uid, lit))
            uid += 1
        remap[n] = heap[0][2]
    for o, name in zip(aig.outputs, aig.output_names):
        new.add_output(remap[node_of(o)] ^ (1 if is_compl(o) else 0), name)
    return new.cleanup()


def enumerate_cuts(aig: Aig) -> List[List[Tuple[int, ...]]]:
    """K-feasible cuts per node (each cut a sorted tuple of leaf nodes).

    The trivial cut ``(n,)`` is always included and is always last.
    Dominated cuts (supersets of another cut) are pruned.
    """
    cuts: List[List[Tuple[int, ...]]] = [[] for _ in range(aig.num_nodes)]
    cuts[0] = [(0,)]
    for i in range(1, aig.num_pis + 1):
        cuts[i] = [(i,)]
    for n in aig.and_nodes():
        f0, f1 = aig.fanins[n]  # type: ignore[misc]
        c0s, c1s = cuts[node_of(f0)], cuts[node_of(f1)]
        seen: Dict[Tuple[int, ...], None] = {}
        for c0 in c0s:
            for c1 in c1s:
                merged = tuple(sorted(set(c0) | set(c1)))
                if len(merged) <= _CUT_SIZE:
                    seen.setdefault(merged, None)
        cand = sorted(seen, key=lambda c: (len(c), c))
        kept: List[Tuple[int, ...]] = []
        for c in cand:
            cs = set(c)
            if any(set(k) <= cs for k in kept):
                continue
            kept.append(c)
            if len(kept) >= _CUTS_PER_NODE:
                break
        kept.append((n,))
        cuts[n] = kept
    return cuts


def cut_tt(aig: Aig, root: int, cut: Tuple[int, ...]) -> int:
    """Truth table (16-bit, over cut leaves LSB-first) of *root*'s cone."""
    values: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(cut):
        values[leaf] = _VAR_PATTERNS[i]

    def value(node: int) -> int:
        got = values.get(node)
        if got is not None:
            return got
        fi = aig.fanins[node]
        if fi is None:
            raise ValueError(f"node {node} is not covered by cut {cut}")
        f0, f1 = fi
        v0 = value(node_of(f0)) ^ (_TT_MASK if is_compl(f0) else 0)
        v1 = value(node_of(f1)) ^ (_TT_MASK if is_compl(f1) else 0)
        v = v0 & v1 & _TT_MASK
        values[node] = v
        return v

    return value(root)


def tt_support(tt: int, n: int) -> List[int]:
    """Indices of variables the n-variable function *tt* depends on."""
    out = []
    for i in range(n):
        shift = 1 << i
        moved = 0
        for m in range(1 << n):
            if not (m >> i) & 1:
                if ((tt >> m) & 1) != ((tt >> (m | shift)) & 1):
                    moved = 1
                    break
        if moved:
            out.append(i)
    return out


def shrink_tt(tt: int, n: int, support: List[int]) -> int:
    """Project *tt* onto its support variables (reindexed 0..k-1)."""
    k = len(support)
    out = 0
    for m in range(1 << k):
        full = 0
        for j, var in enumerate(support):
            if (m >> j) & 1:
                full |= 1 << var
        if (tt >> full) & 1:
            out |= 1 << m
    return out


def rewrite(aig: Aig) -> Aig:
    """Cut-based refactor: rebuild each node from a 4-cut truth table.

    The result is kept only if it has fewer AND nodes than the input
    (after cleanup); otherwise the cleaned input is returned.
    """
    base = aig.cleanup()
    cuts = enumerate_cuts(base)
    new = Aig(base.num_pis, base.pi_names)
    remap: Dict[int, int] = {0: FALSE}
    for i in range(1, base.num_pis + 1):
        remap[i] = lit_of(i)
    for n in base.and_nodes():
        best = None
        for cut in cuts[n]:
            if cut == (n,):
                continue
            tt = cut_tt(base, n, cut)
            sup = tt_support(tt, len(cut))
            leaves = [cut[i] for i in sup]
            stt = shrink_tt(tt, len(cut), sup)
            lit = new.from_tt(stt, [remap[leaf] for leaf in leaves])
            if best is None or lit < best:
                best = lit
                break  # first (smallest) cut is typically best; cheap pass
        if best is None:  # only the trivial cut: rebuild from fanins
            f0, f1 = base.fanins[n]  # type: ignore[misc]
            a = remap[node_of(f0)] ^ (1 if is_compl(f0) else 0)
            b = remap[node_of(f1)] ^ (1 if is_compl(f1) else 0)
            best = new.and_(a, b)
        remap[n] = best
    for o, name in zip(base.outputs, base.output_names):
        new.add_output(remap[node_of(o)] ^ (1 if is_compl(o) else 0), name)
    new = new.cleanup()
    return new if new.num_ands() < base.num_ands() else base
