"""Logic synthesis substrate: the paper's ``Synthesize()`` primitive.

Pipeline: netlist -> AIG (structural hashing + constant propagation) ->
rewriting/balancing -> DAG-aware technology mapping restricted to an
*allowed cell subset* -> netlist.  The allowed-subset restriction is what
the resynthesis procedure uses to exclude the cells ``cell_0 .. cell_i``
with the most internal DFM faults (Section III-B of the paper).
"""

from repro.synthesis.aig import Aig, aig_from_circuit
from repro.synthesis.rewrite import balance, rewrite
from repro.synthesis.techmap import MatchTable, TechmapError, map_aig
from repro.synthesis.synthesize import is_complete_subset, synthesize

__all__ = [
    "Aig",
    "aig_from_circuit",
    "balance",
    "rewrite",
    "MatchTable",
    "TechmapError",
    "map_aig",
    "is_complete_subset",
    "synthesize",
]
