"""``Synthesize()`` — the logic synthesis entry point of the paper.

Takes a mapped netlist (the extracted ``C_sub``), optimizes it as an AIG,
and re-maps it onto an *allowed subset* of the library.  The resynthesis
procedure calls this with shrinking cell subsets (excluding the cells with
the most internal DFM faults first).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.library.cell import StandardCell
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit
from repro.synthesis.aig import aig_from_circuit
from repro.synthesis.rewrite import balance, rewrite
from repro.synthesis.techmap import TechmapError, map_aig


def is_complete_subset(cells: Sequence[StandardCell]) -> bool:
    """True if *cells* can implement arbitrary combinational logic.

    Sufficient check: an inversion-capable cell (inverter, or NAND2/NOR2
    with tied pins) together with a 2-input AND-capable pattern (NAND2,
    NOR2, or AND2/OR2 plus inversion).  This implements eligibility rule
    (3) of Section III-B: cells ``cell_{i+1} .. cell_{m-1}`` must be
    sufficient for synthesizing ``C_sub``.
    """
    tts = {(c.n_inputs, c.tt) for c in cells}
    has_inv = (1, 0b01) in tts or (2, 0b0111) in tts or (2, 0b0001) in tts
    has_and2 = any(key in tts for key in [
        (2, 0b0111),  # NAND2
        (2, 0b0001),  # NOR2
        (2, 0b1000),  # AND2
        (2, 0b1110),  # OR2
    ])
    return has_inv and has_and2


def synthesize(
    circuit: Circuit,
    library: Library,
    allowed_cells: Optional[Sequence[str]] = None,
    objective: str = "area",
    effort: int = 1,
) -> Circuit:
    """Resynthesize *circuit* using only *allowed_cells* of *library*.

    PI/PO names are preserved so the result can be stitched back with
    :func:`repro.netlist.replace_subcircuit`.  Raises
    :class:`~repro.synthesis.techmap.TechmapError` when the allowed subset
    is insufficient.
    """
    cells = {c.name: c for c in library}
    if allowed_cells is None:
        allowed: List[StandardCell] = list(library)
    else:
        unknown = [n for n in allowed_cells if n not in cells]
        if unknown:
            raise ValueError(f"unknown cells: {unknown}")
        allowed = [cells[n] for n in allowed_cells]
    if not allowed:
        raise TechmapError("empty allowed cell subset")
    aig = aig_from_circuit(circuit, cells)
    aig = aig.cleanup()
    for _ in range(max(0, effort)):
        before = aig.num_ands()
        aig = rewrite(balance(aig))
        if aig.num_ands() >= before:
            break
    return map_aig(aig, allowed, objective=objective, name=circuit.name)
