"""DAG-aware technology mapping of an AIG into a standard cell subset.

This is the half of ``Synthesize()`` the resynthesis procedure leans on:
``map_aig(aig, cells, ...)`` covers the AIG with instances of *only* the
allowed cells.  Matching is cut-based (4-feasible cuts) and NP-aware:
cell pins may be permuted and may take *negated* leaves (each negation
paid for by the leaf's negative-phase implementation), and every node can
be realized in positive or negative output phase (NAND/NOR/AOI/OAI
naturally produce negative-phase functions) with inverters patching
mismatches.  Costs use area flow for the "area" objective and arrival
times for the "delay" objective.

Raises :class:`TechmapError` when the allowed subset cannot realize some
required function — the resynthesis procedure treats that as a failed
attempt (the cell-eligibility rule (3) of Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.synthesis.aig import Aig, is_compl, node_of
from repro.synthesis.rewrite import (
    cut_tt,
    enumerate_cuts,
    shrink_tt,
    tt_support,
)

POS, NEG = 0, 1
_INF = float("inf")


class TechmapError(Exception):
    """The allowed cell subset cannot implement the requested logic."""


@dataclass(frozen=True)
class _Match:
    cell: StandardCell
    # pin j of the cell connects to leaf pin_map[j] of the cut...
    pin_map: Tuple[int, ...]
    # ...in negative phase when bit j of neg_mask is set.
    neg_mask: int


class MatchTable:
    """Cell pattern matcher keyed by (number of leaves, truth table).

    Patterns cover all pin permutations and all input negation masks;
    2-input cells additionally register tied-pin (1-leaf) reductions so
    that inverter-free subsets containing NAND2/NOR2 stay complete.
    """

    def __init__(self, cells: Sequence[StandardCell]):
        self.cells = list(cells)
        self._table: Dict[Tuple[int, int], List[_Match]] = {}
        for cell in cells:
            n = cell.n_inputs
            if n > 4:
                continue
            for perm in permutations(range(n)):
                for neg in range(1 << n):
                    tt = _transform_tt(cell.tt, n, perm, neg)
                    self._add((n, tt), _Match(cell, tuple(perm), neg))
            if n == 2:
                for neg in (0b00, 0b11):
                    tt1 = _dup2_tt(cell.tt, neg)
                    self._add((1, tt1), _Match(cell, (0, 0), neg))

    def _add(self, key: Tuple[int, int], match: _Match) -> None:
        bucket = self._table.setdefault(key, [])
        # Keep at most a handful of alternatives per function, cheapest
        # area first and at most one per cell, to bound DP work.
        if any(m.cell.name == match.cell.name for m in bucket):
            return
        bucket.append(match)
        bucket.sort(key=lambda m: (m.cell.area, m.cell.name))
        del bucket[6:]

    def lookup(self, n_leaves: int, tt: int) -> List[_Match]:
        return self._table.get((n_leaves, tt), [])

    def inverter(self) -> Optional[_Match]:
        """Cheapest positive-leaf inverter realization, if any."""
        matches = [m for m in self.lookup(1, 0b01) if m.neg_mask == 0]
        if not matches:
            return None
        return min(matches, key=lambda m: m.cell.area)

    def identity(self) -> Optional[_Match]:
        """Cheapest positive-leaf buffer realization, if any."""
        matches = [m for m in self.lookup(1, 0b10) if m.neg_mask == 0]
        if not matches:
            return None
        return min(matches, key=lambda m: m.cell.area)


def _transform_tt(tt: int, n: int, perm: Sequence[int], neg: int) -> int:
    """Function over leaves when cell pin *j* takes leaf ``perm[j]``,
    negated when bit *j* of *neg* is set."""
    out = 0
    for leaf_minterm in range(1 << n):
        pin_minterm = 0
        for j in range(n):
            bit = (leaf_minterm >> perm[j]) & 1
            if (neg >> j) & 1:
                bit ^= 1
            if bit:
                pin_minterm |= 1 << j
        if (tt >> pin_minterm) & 1:
            out |= 1 << leaf_minterm
    return out


def _dup2_tt(tt: int, neg: int) -> int:
    """1-variable function of a 2-pin cell with both pins tied to one
    leaf (both plain for ``neg=0b00``, both negated for ``neg=0b11``)."""
    lo = tt & 1  # both pins 0
    hi = (tt >> 3) & 1  # both pins 1
    if neg:
        lo, hi = hi, lo
    return lo | (hi << 1)


@dataclass
class _Impl:
    cost: float
    arrival: float
    match: Optional[_Match]  # None => inverter patch or constant tie
    cut: Tuple[int, ...]  # () for constant ties
    const: Optional[int] = None  # 0/1 for constant ties


def map_aig(
    aig: Aig,
    cells: Sequence[StandardCell],
    objective: str = "area",
    name: str = "mapped",
) -> Circuit:
    """Cover *aig* with instances of *cells*; return a mapped netlist.

    PI and PO names of the AIG are preserved, every PO is driven by a gate
    (buffers are materialized for pass-through or constant outputs), and
    :class:`TechmapError` is raised if the subset is insufficient.
    """
    if objective not in ("area", "delay", "faults"):
        raise ValueError(f"unknown objective {objective!r}")

    def cell_cost(cell: StandardCell) -> float:
        if objective == "faults":
            # Minimize DFM internal fault sites; the flat per-gate term
            # accounts for the external fault sites each extra net
            # introduces, and the area term breaks ties.
            return cell.internal_fault_count + 2.5 + 0.02 * cell.area
        return cell.area

    table = MatchTable(cells)
    aig = aig.cleanup()
    cuts = enumerate_cuts(aig)
    refs = aig.fanout_counts()
    n_nodes = aig.num_nodes

    impl: List[List[Optional[_Impl]]] = [[None, None] for _ in range(n_nodes)]
    inv = table.inverter()
    inv_area = cell_cost(inv.cell) if inv else _INF
    inv_delay = (inv.cell.intrinsic_delay + inv.cell.drive_res * 4.0
                 if inv else _INF)

    for i in range(1, aig.num_pis + 1):
        impl[i][POS] = _Impl(0.0, 0.0, None, (i,))
        if inv:
            impl[i][NEG] = _Impl(inv_area, inv_delay, None, (i,))

    def leaf_cost(leaf: int, phase: int) -> Tuple[float, float]:
        got = impl[leaf][phase]
        if got is None:
            return _INF, _INF
        share = max(1, refs[leaf])
        return got.cost / share, got.arrival

    for node in aig.and_nodes():
        best: List[Optional[_Impl]] = [None, None]
        for cut in cuts[node]:
            if cut == (node,):
                continue
            tt = cut_tt(aig, node, cut)
            sup = tt_support(tt, len(cut))
            leaves = tuple(cut[i] for i in sup)
            stt = shrink_tt(tt, len(cut), sup)
            if not leaves:
                # Logically constant node: tie to a rail, no cell needed.
                for phase in (POS, NEG):
                    val = (stt & 1) ^ phase
                    cand = _Impl(0.0, 0.0, None, (), const=val)
                    if _better(cand, best[phase], objective):
                        best[phase] = cand
                continue
            full = (1 << (1 << len(leaves))) - 1
            for phase in (POS, NEG):
                want = stt if phase == POS else (~stt & full)
                for match in table.lookup(len(leaves), want):
                    cost = cell_cost(match.cell)
                    arr = 0.0
                    feasible = True
                    need = set()
                    for j, leaf_idx in enumerate(match.pin_map):
                        need.add((leaf_idx, (match.neg_mask >> j) & 1))
                    for leaf_idx, leaf_phase in need:
                        c, a = leaf_cost(leaves[leaf_idx], leaf_phase)
                        if c == _INF:
                            feasible = False
                            break
                        cost += c
                        arr = max(arr, a)
                    if not feasible:
                        continue
                    arr += (match.cell.intrinsic_delay
                            + match.cell.drive_res * 4.0)
                    cand = _Impl(cost, arr, match, leaves)
                    if _better(cand, best[phase], objective):
                        best[phase] = cand
        # Phase patching through an inverter.
        if inv:
            for phase in (POS, NEG):
                other = best[1 - phase]
                if other is not None:
                    cand = _Impl(other.cost + inv_area,
                                 other.arrival + inv_delay, None, (node,))
                    if _better(cand, best[phase], objective):
                        best[phase] = cand
        impl[node][POS], impl[node][NEG] = best[POS], best[NEG]

    # ------------------------------------------------------------------
    # Cover extraction.
    # ------------------------------------------------------------------
    circuit = Circuit(name)
    for pi in aig.pi_names:
        circuit.add_input(pi)
    # PO names are adopted by renaming after cover extraction; fresh
    # internal names must never collide with them.
    circuit.reserve_net_names(aig.output_names)
    nets: Dict[Tuple[int, int], str] = {(0, POS): CONST0, (0, NEG): CONST1}
    for i, pi in enumerate(aig.pi_names):
        nets[(i + 1, POS)] = pi

    def realize(node: int, phase: int) -> str:
        key = (node, phase)
        got = nets.get(key)
        if got is not None:
            return got
        chosen = impl[node][phase]
        if chosen is None:
            raise TechmapError(
                f"no implementation for node {node} phase {phase}"
            )
        if chosen.const is not None:
            net = CONST1 if chosen.const else CONST0
            nets[key] = net
            return net
        if chosen.match is None:
            # Inverter from the opposite phase (covers PI negation too).
            src = realize(node, 1 - phase)
            if inv is None:
                raise TechmapError("no inverter-capable cell in subset")
            net = circuit.fresh_net("m")
            pins = {pin: src for pin in inv.cell.input_pins}
            circuit.add_gate(circuit.fresh_gate("g"), inv.cell.name, pins, net)
            nets[key] = net
            return net
        match = chosen.match
        pins = {}
        for j, pin in enumerate(match.cell.input_pins):
            leaf = chosen.cut[match.pin_map[j]]
            leaf_phase = (match.neg_mask >> j) & 1
            pins[pin] = realize(leaf, leaf_phase)
        net = circuit.fresh_net("m")
        circuit.add_gate(circuit.fresh_gate("g"), match.cell.name, pins, net)
        nets[key] = net
        return net

    po_nets: List[str] = []
    for lit, po_name in zip(aig.outputs, aig.output_names):
        phase = NEG if is_compl(lit) else POS
        src = realize(node_of(lit), phase)
        drv = circuit.driver(src)
        if drv is not None and src not in circuit.outputs and src not in po_nets:
            # Rename the driving gate's output net to the PO name.
            _rename_net(circuit, src, po_name)
            for k, v in list(nets.items()):
                if v == src:
                    nets[k] = po_name
        else:
            # PI pass-through, constant, or net already claimed by another
            # PO: materialize an explicit identity stage.
            _drive_identity(circuit, table, src, po_name)
        po_nets.append(po_name)
    circuit.set_outputs(po_nets)
    circuit.validate()
    return circuit


def _better(cand: _Impl, cur: Optional[_Impl], objective: str) -> bool:
    if cur is None:
        return True
    if objective == "delay":
        return (cand.arrival, cand.cost) < (cur.arrival, cur.cost)
    return (cand.cost, cand.arrival) < (cur.cost, cur.arrival)


def _rename_net(circuit: Circuit, old: str, new: str) -> None:
    """Rename net *old* to *new* (driver and all loads)."""
    if old == new:
        return
    drv = circuit.driver(old)
    # Sorted: loads() is a set of str tuples, whose iteration order is
    # salted per process — gate re-insertion order must not be.
    loads = sorted(circuit.loads(old))
    gate = circuit.gates[drv]
    circuit.remove_gate(drv)
    for gname, pin in loads:
        g = circuit.gates[gname]
        circuit.remove_gate(gname)
        pins = dict(g.pins)
        pins[pin] = new
        circuit.add_gate(gname, g.cell, pins, g.output)
    circuit.add_gate(drv, gate.cell, gate.pins, new)


def _drive_identity(
    circuit: Circuit, table: MatchTable, src: str, dst: str
) -> None:
    """Add gate(s) so that net *dst* equals net *src*."""
    buf = table.identity()
    if buf is not None:
        pins = {pin: src for pin in buf.cell.input_pins}
        circuit.add_gate(circuit.fresh_gate("g"), buf.cell.name, pins, dst)
        return
    inv = table.inverter()
    if inv is None:
        raise TechmapError("subset has neither buffer nor inverter capability")
    mid = circuit.fresh_net("m")
    pins_a = {pin: src for pin in inv.cell.input_pins}
    circuit.add_gate(circuit.fresh_gate("g"), inv.cell.name, pins_a, mid)
    pins_b = {pin: mid for pin in inv.cell.input_pins}
    circuit.add_gate(circuit.fresh_gate("g"), inv.cell.name, pins_b, dst)
