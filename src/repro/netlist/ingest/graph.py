"""Format-neutral gate graph: the parsers' target, the lowerer's input.

Both foreign-format front ends (:mod:`repro.netlist.ingest.bench`,
:mod:`repro.netlist.ingest.verilog`) produce a :class:`NetGraph` — a flat
list of primitive-operator nodes plus declared PIs/POs, every element
tagged with its source line — instead of a :class:`~repro.netlist.
circuit.Circuit` directly.  That split buys three things:

* **link checking happens on the foreign names and lines**: duplicate
  signal definitions, undeclared fanins and floating outputs are
  reported as coded :class:`~repro.netlist.validate.Diagnostic` records
  pointing at the offending ``path:line`` of the *source* file, before
  any technology mapping obscures the correspondence;
* **full-scan conversion is a graph-level rewrite**: ISCAS-89 ``DFF``
  nodes are replaced by a scan input (the flop's Q net becomes a pseudo
  primary input) and a scan output (its D net becomes a pseudo primary
  output), matching the paper's full-scan premise that fault analysis
  sees only the combinational core;
* the **lowering onto standard cells** (:mod:`repro.netlist.ingest.
  lower`) is shared verbatim by every front end.

Operators are the usual structural primitives: ``AND OR NAND NOR XOR
XNOR NOT BUF DFF`` (any arity for the symmetric ones).  Constants are
the reserved nets :data:`~repro.netlist.circuit.CONST0` /
:data:`~repro.netlist.circuit.CONST1`, which may appear as node inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import CONST0, CONST1
from repro.netlist.validate import (
    ERROR,
    WARNING,
    Diagnostic,
    ValidationReport,
)

_CONSTS = frozenset((CONST0, CONST1))

#: Symmetric operators accepting two or more inputs (one input degrades
#: to BUF for AND/OR/XOR and NOT for NAND/NOR/XNOR).
VARIADIC_OPS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")
#: All operators a parser may emit.
OPS = VARIADIC_OPS + ("NOT", "BUF", "DFF")


@dataclass(frozen=True)
class Node:
    """One primitive operator driving one signal."""

    op: str
    output: str
    inputs: Tuple[str, ...]
    line: Optional[int] = None


@dataclass
class NetGraph:
    """A parsed foreign netlist, before technology mapping.

    ``report`` accumulates the parser's syntax diagnostics; *link* adds
    the cross-reference checks.  ``input_lines`` / ``output_lines``
    locate declarations for diagnostics that only surface later.
    """

    name: str
    path: Optional[str] = None
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    nodes: List[Node] = field(default_factory=list)
    report: ValidationReport = field(default_factory=ValidationReport)
    input_lines: Dict[str, int] = field(default_factory=dict)
    output_lines: Dict[str, int] = field(default_factory=dict)
    scan_cells: int = 0

    # ------------------------------------------------------------------
    def _diag(self, code: str, severity: str, message: str,
              line: Optional[int] = None, net: Optional[str] = None) -> None:
        self.report.diagnostics.append(Diagnostic(
            code=code, severity=severity, message=message,
            net=net, line=line, path=self.path,
        ))

    def add_input(self, net: str, line: Optional[int] = None) -> None:
        if net in self.input_lines:
            self._diag(
                "multi-driven-net", ERROR,
                f"signal {net!r} declared INPUT twice (first at line "
                f"{self.input_lines[net]})", line=line, net=net,
            )
            return
        self.input_lines[net] = line if line is not None else 0
        self.inputs.append(net)

    def add_output(self, net: str, line: Optional[int] = None) -> None:
        if net in self.output_lines:
            self._diag(
                "syntax", ERROR,
                f"signal {net!r} declared OUTPUT twice (first at line "
                f"{self.output_lines[net]})", line=line, net=net,
            )
            return
        self.output_lines[net] = line if line is not None else 0
        self.outputs.append(net)

    def add_node(self, op: str, output: str, inputs: Tuple[str, ...],
                 line: Optional[int] = None) -> None:
        self.nodes.append(Node(op, output, inputs, line))

    # ------------------------------------------------------------------
    def drivers(self) -> Dict[str, Node]:
        """Map of signal -> defining node (first definition wins)."""
        out: Dict[str, Node] = {}
        for node in self.nodes:
            out.setdefault(node.output, node)
        return out

    def link(self) -> ValidationReport:
        """Cross-reference the graph; append link diagnostics to report.

        Checks (all located at the *referencing* source line):

        * ``multi-driven-net`` — a signal defined by two nodes, or by a
          node and an INPUT declaration;
        * ``undriven-net`` — a node input that is neither a constant,
          a declared INPUT, nor any node's output;
        * ``floating-output`` — a declared OUTPUT no node defines;
        * ``dangling-net`` (warning) — a defined signal that nothing
          references and that is not an OUTPUT;
        * ``unused-input`` (warning) — an INPUT nothing references.
        """
        defined: Dict[str, Node] = {}
        for node in self.nodes:
            prior = defined.get(node.output)
            if prior is not None:
                self._diag(
                    "multi-driven-net", ERROR,
                    f"signal {node.output!r} defined twice "
                    f"(first at line {prior.line})",
                    line=node.line, net=node.output,
                )
                continue
            if node.output in self.input_lines:
                self._diag(
                    "multi-driven-net", ERROR,
                    f"signal {node.output!r} is an INPUT and is also "
                    f"defined by a gate (INPUT at line "
                    f"{self.input_lines[node.output]})",
                    line=node.line, net=node.output,
                )
                continue
            defined[node.output] = node

        referenced: Set[str] = set()
        known = set(self.input_lines) | set(defined) | _CONSTS
        for node in self.nodes:
            for net in node.inputs:
                referenced.add(net)
                if net not in known:
                    self._diag(
                        "undriven-net", ERROR,
                        f"signal {net!r} read by the definition of "
                        f"{node.output!r} is never defined",
                        line=node.line, net=net,
                    )
        for net in self.outputs:
            referenced.add(net)
            if net not in known:
                self._diag(
                    "floating-output", ERROR,
                    f"OUTPUT {net!r} is never defined",
                    line=self.output_lines.get(net), net=net,
                )

        po = set(self.outputs)
        for net, node in defined.items():
            if net not in referenced and net not in po:
                self._diag(
                    "dangling-net", WARNING,
                    f"signal {net!r} is defined but never used",
                    line=node.line, net=net,
                )
        for net in self.inputs:
            if net not in referenced and net not in po:
                self._diag(
                    "unused-input", WARNING,
                    f"INPUT {net!r} drives nothing",
                    line=self.input_lines.get(net), net=net,
                )
        return self.report

    # ------------------------------------------------------------------
    def scan_convert(self) -> "NetGraph":
        """Replace every ``DFF`` with a scan input / scan output pair.

        The paper's flow targets full-scan designs: in test mode every
        flop is directly controllable and observable through the scan
        chain, so for fault analysis the flop's Q pin is a pseudo
        primary input and its D pin a pseudo primary output.  Returns
        ``self`` unchanged when the graph is purely combinational.
        """
        flops = [n for n in self.nodes if n.op == "DFF"]
        if not flops:
            return self
        out = NetGraph(
            self.name, path=self.path,
            inputs=list(self.inputs), outputs=list(self.outputs),
            report=self.report,
            input_lines=dict(self.input_lines),
            output_lines=dict(self.output_lines),
            scan_cells=len(flops),
        )
        out.nodes = [n for n in self.nodes if n.op != "DFF"]
        for flop in flops:
            # Q becomes a controllable pseudo-PI...
            if flop.output not in out.input_lines:
                out.input_lines[flop.output] = flop.line or 0
                out.inputs.append(flop.output)
            # ...and D an observable pseudo-PO (unless already a PO).
            for d_net in flop.inputs[:1]:
                if d_net not in out.output_lines:
                    out.output_lines[d_net] = flop.line or 0
                    out.outputs.append(d_net)
        return out
