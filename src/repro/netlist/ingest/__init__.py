"""Ingest foreign benchmark netlists into the native circuit model.

The paper's experiments run on the ISCAS benchmark circuits; this
package is the bridge that lets every engine in the repo face those
designs.  Two foreign front ends — ISCAS-85/89 ``.bench``
(:mod:`.bench`) and a structural gate-level Verilog subset
(:mod:`.verilog`) — parse into a format-neutral :class:`~.graph.
NetGraph`, which :mod:`.lower` maps onto OSU018-style standard cells.
The native text format rides the same API through
:func:`repro.netlist.validate.lint_netlist_text`.

Three entry points, in increasing strictness:

* :func:`ingest_text` / :func:`ingest_file` — recovering: always return
  an :class:`IngestedDesign` whose ``report`` lists every coded,
  ``path:line``-located problem; ``design.circuit`` is ``None`` when
  errors made lowering impossible.
* :func:`load_file` — strict: returns the :class:`~repro.netlist.
  circuit.Circuit` or raises :class:`IngestError` (a
  :class:`~repro.netlist.circuit.NetlistError`) rendering the report.

``BUNDLED`` names the benchmark files shipped under
``examples/netlists/`` so campaign specs can say ``ingest:c17`` without
hard-coding repository paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.ingest.bench import parse_bench
from repro.netlist.ingest.graph import NetGraph, Node, OPS, VARIADIC_OPS
from repro.netlist.ingest.lower import lower_graph
from repro.netlist.ingest.verilog import parse_verilog
from repro.netlist.validate import (
    ValidationReport,
    lint_circuit,
    lint_netlist_text,
)

__all__ = [
    "BUNDLED",
    "FORMATS",
    "FORMAT_BENCH",
    "FORMAT_NATIVE",
    "FORMAT_VERILOG",
    "IngestError",
    "IngestedDesign",
    "NetGraph",
    "Node",
    "OPS",
    "VARIADIC_OPS",
    "bundled_path",
    "detect_format",
    "ingest_file",
    "ingest_text",
    "load_file",
    "lower_graph",
    "parse_bench",
    "parse_verilog",
]

FORMAT_NATIVE = "netlist"
FORMAT_BENCH = "bench"
FORMAT_VERILOG = "verilog"
FORMATS = (FORMAT_NATIVE, FORMAT_BENCH, FORMAT_VERILOG)

_EXTENSIONS = {
    ".bench": FORMAT_BENCH,
    ".v": FORMAT_VERILOG,
    ".sv": FORMAT_VERILOG,
    ".nl": FORMAT_NATIVE,
    ".net": FORMAT_NATIVE,
    ".netlist": FORMAT_NATIVE,
}

#: Benchmarks shipped with the repository (short name -> path relative
#: to the repo root).  See ``examples/netlists/README.md``.
BUNDLED: Dict[str, str] = {
    "c17": "examples/netlists/c17.bench",
    "mul32": "examples/netlists/mul32.bench",
    "ecc64": "examples/netlists/ecc64.bench",
    "sreg16": "examples/netlists/sreg16.bench",
    "alu8": "examples/netlists/alu8.v",
}


class IngestError(NetlistError):
    """Strict-mode ingestion failure; ``str()`` renders the report."""

    def __init__(self, message: str, report: Optional[ValidationReport] = None,
                 **kw: object):
        super().__init__(message, **kw)  # type: ignore[arg-type]
        self.report = report if report is not None else ValidationReport()


@dataclass
class IngestedDesign:
    """The outcome of one (recovering) ingestion run.

    ``circuit`` is the standard-cell mapping of the foreign design, or
    ``None`` when ``report`` carries errors that made lowering
    impossible; only trust it when :attr:`ok`.  ``gate_lines`` maps
    generated gate names back to source lines of *path*; ``renames``
    records foreign signal names that had to be sanitized.
    """

    circuit: Optional[Circuit]
    report: ValidationReport
    fmt: str
    path: Optional[str] = None
    source_name: str = ""
    gate_lines: Dict[str, int] = field(default_factory=dict)
    renames: Dict[str, str] = field(default_factory=dict)
    scan_cells: int = 0

    @property
    def ok(self) -> bool:
        return self.circuit is not None and self.report.ok


def detect_format(path: Optional[str], text: Optional[str] = None) -> str:
    """Infer the netlist format from *path*'s extension, else sniff *text*.

    Raises :class:`IngestError` when neither identifies the format.
    """
    if path:
        ext = os.path.splitext(path)[1].lower()
        fmt = _EXTENSIONS.get(ext)
        if fmt is not None:
            return fmt
    if text is not None:
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith("//") or line.startswith("/*") \
                    or line.split()[0] == "module":
                return FORMAT_VERILOG
            if line.startswith("#") or line.upper().startswith(("INPUT", "OUTPUT")):
                return FORMAT_BENCH
            if line.split()[0] == "circuit":
                return FORMAT_NATIVE
            break
    raise IngestError(
        f"cannot determine netlist format of {path or '<text>'!s}; "
        f"pass fmt explicitly (one of {', '.join(FORMATS)})",
        path=path,
    )


def ingest_text(
    text: str,
    fmt: str,
    path: Optional[str] = None,
    cells: Optional[Mapping[str, object]] = None,
    name: Optional[str] = None,
) -> IngestedDesign:
    """Recovering ingestion of netlist *text* in format *fmt*.

    Foreign formats parse to a :class:`NetGraph`, are link-checked on
    their own names/lines, lowered onto cells and finally run through
    the circuit-level linter; the native format takes the
    :func:`lint_netlist_text` path.  Never raises on bad input — the
    returned design's ``report`` carries every located diagnostic.
    """
    if fmt == FORMAT_NATIVE:
        circuit, report = lint_netlist_text(text, path=path, cells=cells)
        return IngestedDesign(
            circuit=circuit if report.ok else None, report=report,
            fmt=fmt, path=path,
            source_name=circuit.name if circuit is not None else "",
        )
    if fmt == FORMAT_BENCH:
        graph = parse_bench(text, path=path, name=name)
    elif fmt == FORMAT_VERILOG:
        graph = parse_verilog(text, path=path, name=name)
    else:
        raise IngestError(
            f"unknown netlist format {fmt!r} (expected one of "
            f"{', '.join(FORMATS)})", path=path,
        )
    design = IngestedDesign(
        circuit=None, report=graph.report, fmt=fmt, path=path,
        source_name=graph.name, scan_cells=graph.scan_cells,
    )
    if not graph.report.ok:
        return design
    circuit, gate_lines, renames = lower_graph(graph, cells=cells, name=name)
    design.circuit = circuit
    design.gate_lines = gate_lines
    design.renames = renames
    if circuit is None:
        return design
    # Cell-aware lint of the mapped circuit.  Connectivity was already
    # checked on the foreign graph (with better locations), so only
    # genuinely new findings are merged: any error (a mapping bug or an
    # impossible pin binding) plus fanout anomalies, which first become
    # measurable after mapping.
    mapped = lint_circuit(
        circuit, cells=cells, path=path, gate_lines=gate_lines,
    )
    for diag in mapped.errors + mapped.by_code("fanout-anomaly"):
        design.report.diagnostics.append(diag)
    if not design.report.ok:
        design.circuit = None
    return design


def ingest_file(
    path: str,
    fmt: Optional[str] = None,
    cells: Optional[Mapping[str, object]] = None,
) -> IngestedDesign:
    """Recovering ingestion of the netlist file at *path*."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    if fmt is None:
        fmt = detect_format(path, text)
    return ingest_text(text, fmt, path=path, cells=cells)


def load_file(
    path: str,
    fmt: Optional[str] = None,
    cells: Optional[Mapping[str, object]] = None,
) -> Circuit:
    """Strict ingestion: the circuit of *path*, or :class:`IngestError`.

    The exception message renders the full report (all located errors,
    not just the first) and carries ``code``/``path``/``line`` of the
    first error for machine handling.
    """
    design = ingest_file(path, fmt=fmt, cells=cells)
    if design.circuit is not None and design.report.ok:
        return design.circuit
    errors = design.report.errors
    first = errors[0] if errors else None
    raise IngestError(
        f"cannot ingest {path}:\n{design.report.render()}",
        report=design.report,
        code=first.code if first is not None else "syntax",
        path=path,
        line=first.line if first is not None else None,
    )


def repo_root() -> str:
    """Repository root inferred from the package location."""
    import repro

    return os.path.abspath(
        os.path.join(os.path.dirname(repro.__file__), os.pardir, os.pardir)
    )


def bundled_path(name: str) -> str:
    """Absolute path of the bundled benchmark *name* (see ``BUNDLED``)."""
    rel = BUNDLED.get(name)
    if rel is None:
        raise IngestError(
            f"unknown bundled benchmark {name!r} "
            f"(known: {', '.join(sorted(BUNDLED))})"
        )
    full = os.path.join(repo_root(), rel)
    if not os.path.exists(full):
        raise IngestError(f"bundled benchmark {name!r} missing at {full}")
    return full
