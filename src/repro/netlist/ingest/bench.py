"""ISCAS-85/89 ``.bench`` front end.

The ``.bench`` format (used by the ISCAS-85 combinational and ISCAS-89
sequential suites, and by many tools since) is line-oriented::

    # c17 (ISCAS-85)
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)
    G5 = DFF(G10)       # ISCAS-89: state elements
    G6 = NOT(G5)
    G7 = BUFF(G6)

Grammar subset accepted here (case-insensitive keywords, ``#`` starts a
comment, blank lines ignored, whitespace free everywhere except inside
signal names):

* ``INPUT(sig)`` / ``OUTPUT(sig)`` declarations;
* ``sig = OP(sig, sig, ...)`` with ``OP`` one of ``AND OR NAND NOR XOR
  XNOR NOT BUF BUFF DFF`` — the symmetric operators take any arity >= 1,
  ``NOT``/``BUF``/``DFF`` exactly one input;
* ``sig = sig2`` aliasing is **not** part of the format and is rejected.

Signal names are arbitrary non-whitespace tokens without ``(``, ``)``,
``,``, ``=`` or ``#`` — ISCAS files use bare integers and ``G``-prefixed
names; both pass through unchanged.

Every problem becomes a located :class:`~repro.netlist.validate.
Diagnostic` on the returned graph's report (the parser never raises),
so one pass over a broken file reports all of its defects.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.netlist.ingest.graph import NetGraph
from repro.netlist.validate import ERROR

_DECL_RE = re.compile(
    r"^(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<sig>[^\s(),=#]+)\s*\)$",
    re.IGNORECASE,
)
_ASSIGN_RE = re.compile(
    r"^(?P<out>[^\s(),=#]+)\s*=\s*(?P<op>[A-Za-z]+)\s*"
    r"\(\s*(?P<args>[^()]*?)\s*\)$",
)

#: Operator spellings found in the wild -> canonical graph ops.
_OP_ALIASES = {
    "AND": "AND", "OR": "OR", "NAND": "NAND", "NOR": "NOR",
    "XOR": "XOR", "XNOR": "XNOR", "NOT": "NOT", "INV": "NOT",
    "BUF": "BUF", "BUFF": "BUF", "DFF": "DFF",
}

_UNARY = ("NOT", "BUF", "DFF")


def parse_bench(text: str, path: Optional[str] = None,
                name: Optional[str] = None) -> NetGraph:
    """Parse ``.bench`` *text* into a linked :class:`NetGraph`.

    Recovering: malformed lines become ``syntax`` diagnostics and are
    skipped.  The graph is scan-converted (DFFs become scan I/O) and
    link-checked before it is returned, so ``graph.report`` carries the
    full picture and ``graph.report.ok`` gates any further use.
    """
    graph = NetGraph(name or _default_name(path), path=path)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _DECL_RE.match(line)
        if m:
            if m.group("kind").upper() == "INPUT":
                graph.add_input(m.group("sig"), lineno)
            else:
                graph.add_output(m.group("sig"), lineno)
            continue
        m = _ASSIGN_RE.match(line)
        if m is None:
            graph._diag(
                "syntax", ERROR,
                f"unrecognized .bench line: {line!r}", line=lineno,
            )
            continue
        op = _OP_ALIASES.get(m.group("op").upper())
        if op is None:
            graph._diag(
                "syntax", ERROR,
                f"unknown .bench operator {m.group('op')!r}",
                line=lineno, net=m.group("out"),
            )
            continue
        args = tuple(
            a.strip() for a in m.group("args").split(",") if a.strip()
        )
        if not args:
            graph._diag(
                "syntax", ERROR,
                f"operator {op} of {m.group('out')!r} has no inputs",
                line=lineno, net=m.group("out"),
            )
            continue
        if op in _UNARY and len(args) != 1:
            graph._diag(
                "syntax", ERROR,
                f"{op} takes exactly one input, got {len(args)}",
                line=lineno, net=m.group("out"),
            )
            continue
        graph.add_node(op, m.group("out"), args, lineno)
    converted = graph.scan_convert()
    converted.link()
    return converted


def _default_name(path: Optional[str]) -> str:
    if not path:
        return "bench"
    base = path.replace("\\", "/").rsplit("/", 1)[-1]
    return base.rsplit(".", 1)[0] or "bench"
