"""Lower a :class:`~repro.netlist.ingest.graph.NetGraph` onto standard cells.

Foreign formats speak in abstract operators (``NAND`` of any arity);
the engines speak in library cells with fixed pin lists.  This module
bridges the two with a deterministic structural mapping:

* variadic operators become balanced trees of 2-input cells, with the
  3-input ``NAND3X1`` / ``NOR3X1`` used directly where they fit;
* every operator has fallback realizations (``AND = INV(NAND)``,
  ``XOR`` from AND/OR/INV, ...) so restricted library variants — the
  paper's cell-exclusion ablations — still map, as long as the subset
  retains basic completeness;
* foreign signal names are sanitized into the native netlist charset
  (collisions disambiguated deterministically) and **kept** wherever
  possible, so diagnostics, fault sites and reports on the ingested
  design still read in the source file's vocabulary.

The mapping is intentionally *not* the optimizing AIG cover of
:mod:`repro.synthesis.techmap`: ingestion must preserve the foreign
netlist's structure (its gate count and topology are the benchmark),
not re-synthesize it.  Callers who want an optimized remap can run the
ingested circuit through ``synthesize()`` afterwards.

``cells`` is any mapping of cell name to a :class:`~repro.netlist.
circuit.CellDef`-shaped object (``input_pins`` / ``output_pin``), e.g.
the OSU018 library or one of its variants; ``None`` assumes the full
OSU018 naming so the netlist layer keeps zero dependency on the library
layer.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.netlist.ingest.graph import NetGraph, Node
from repro.netlist.validate import ERROR, Diagnostic

_CONSTS = frozenset((CONST0, CONST1))

#: Default pin lists when no cell mapping is supplied (full OSU018).
_DEFAULT_PINS: Dict[str, Tuple[str, ...]] = {
    "INVX1": ("A",), "INVX2": ("A",), "INVX4": ("A",), "INVX8": ("A",),
    "BUFX2": ("A",), "BUFX4": ("A",),
    "NAND2X1": ("A", "B"), "NAND3X1": ("A", "B", "C"),
    "NOR2X1": ("A", "B"), "NOR3X1": ("A", "B", "C"),
    "AND2X1": ("A", "B"), "AND2X2": ("A", "B"),
    "OR2X1": ("A", "B"), "OR2X2": ("A", "B"),
    "XOR2X1": ("A", "B"), "XNOR2X1": ("A", "B"),
}

_SAFE_RE = re.compile(r"[^A-Za-z0-9_\[\]\.$]")


class LowerError(Exception):
    """The available cell subset cannot realize a required operator."""


class _CellPicker:
    """Resolve abstract 1/2-input operators to available cells."""

    def __init__(self, cells: Optional[Mapping[str, object]]):
        self._cells = cells

    def has(self, name: str) -> bool:
        if self._cells is None:
            return name in _DEFAULT_PINS
        return name in self._cells

    def pins(self, name: str) -> Tuple[str, ...]:
        if self._cells is None:
            return _DEFAULT_PINS[name]
        return tuple(self._cells[name].input_pins)

    def first(self, *names: str) -> Optional[str]:
        for name in names:
            if self.has(name):
                return name
        return None


class Lowerer:
    """One-shot lowering of a linked, error-free graph."""

    def __init__(
        self,
        graph: NetGraph,
        cells: Optional[Mapping[str, object]] = None,
        name: Optional[str] = None,
    ):
        self.graph = graph
        self.pick = _CellPicker(cells)
        self.circuit = Circuit(name or graph.name)
        self.gate_lines: Dict[str, int] = {}
        self._rename: Dict[str, str] = {}
        self._taken: Dict[str, str] = {}  # safe name -> foreign owner
        self._gate_uid = 0

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def net(self, foreign: str) -> str:
        """Sanitized, collision-free native name for a foreign signal."""
        if foreign in _CONSTS:
            return foreign
        got = self._rename.get(foreign)
        if got is not None:
            return got
        safe = _SAFE_RE.sub("_", foreign) or "_"
        if safe in _CONSTS:
            safe += "_sig"
        candidate = safe
        serial = 0
        while candidate in self._taken and self._taken[candidate] != foreign:
            serial += 1
            candidate = f"{safe}_{serial}"
        self._taken[candidate] = foreign
        self._rename[foreign] = candidate
        return candidate

    def rename_map(self) -> Dict[str, str]:
        """Foreign -> native names that actually changed."""
        return {f: n for f, n in self._rename.items() if f != n}

    def _fresh_net(self) -> str:
        return self.circuit.fresh_net("w")

    def _gate_name(self) -> str:
        self._gate_uid += 1
        return f"u{self._gate_uid}"

    # ------------------------------------------------------------------
    # Cell emission
    # ------------------------------------------------------------------
    def _emit(self, cell: str, ins: Sequence[str], out: Optional[str],
              line: Optional[int]) -> str:
        pins = self.pick.pins(cell)
        if out is None:
            out = self._fresh_net()
        gname = self._gate_name()
        self.circuit.add_gate(gname, cell, dict(zip(pins, ins)), out)
        if line is not None:
            self.gate_lines[gname] = line
        return out

    def _inv(self, a: str, out: Optional[str], line) -> str:
        cell = self.pick.first("INVX1", "INVX2", "INVX4", "INVX8")
        if cell:
            return self._emit(cell, (a,), out, line)
        cell = self.pick.first("NAND2X1", "NOR2X1")
        if cell:
            return self._emit(cell, (a, a), out, line)
        raise LowerError("no inverter-capable cell available")

    def _buf(self, a: str, out: Optional[str], line) -> str:
        cell = self.pick.first("BUFX2", "BUFX4")
        if cell:
            return self._emit(cell, (a,), out, line)
        return self._inv(self._inv(a, None, line), out, line)

    def _and2(self, a: str, b: str, out: Optional[str], line) -> str:
        cell = self.pick.first("AND2X1", "AND2X2")
        if cell:
            return self._emit(cell, (a, b), out, line)
        if self.pick.has("NAND2X1"):
            return self._inv(
                self._emit("NAND2X1", (a, b), None, line), out, line
            )
        if self.pick.has("NOR2X1"):  # AND(a,b) = NOR(~a, ~b)
            return self._emit(
                "NOR2X1",
                (self._inv(a, None, line), self._inv(b, None, line)),
                out, line,
            )
        raise LowerError("no AND-capable cell available")

    def _or2(self, a: str, b: str, out: Optional[str], line) -> str:
        cell = self.pick.first("OR2X1", "OR2X2")
        if cell:
            return self._emit(cell, (a, b), out, line)
        if self.pick.has("NOR2X1"):
            return self._inv(
                self._emit("NOR2X1", (a, b), None, line), out, line
            )
        if self.pick.has("NAND2X1"):  # OR(a,b) = NAND(~a, ~b)
            return self._emit(
                "NAND2X1",
                (self._inv(a, None, line), self._inv(b, None, line)),
                out, line,
            )
        raise LowerError("no OR-capable cell available")

    def _nand2(self, a: str, b: str, out: Optional[str], line) -> str:
        if self.pick.has("NAND2X1"):
            return self._emit("NAND2X1", (a, b), out, line)
        return self._inv(self._and2(a, b, None, line), out, line)

    def _nor2(self, a: str, b: str, out: Optional[str], line) -> str:
        if self.pick.has("NOR2X1"):
            return self._emit("NOR2X1", (a, b), out, line)
        return self._inv(self._or2(a, b, None, line), out, line)

    def _xor2(self, a: str, b: str, out: Optional[str], line) -> str:
        if self.pick.has("XOR2X1"):
            return self._emit("XOR2X1", (a, b), out, line)
        if self.pick.has("XNOR2X1"):
            return self._inv(
                self._emit("XNOR2X1", (a, b), None, line), out, line
            )
        na, nb = self._inv(a, None, line), self._inv(b, None, line)
        return self._or2(
            self._and2(a, nb, None, line),
            self._and2(na, b, None, line), out, line,
        )

    def _xnor2(self, a: str, b: str, out: Optional[str], line) -> str:
        if self.pick.has("XNOR2X1"):
            return self._emit("XNOR2X1", (a, b), out, line)
        return self._inv(self._xor2(a, b, None, line), out, line)

    # ------------------------------------------------------------------
    # Trees
    # ------------------------------------------------------------------
    def _tree(self, op2, nets: Sequence[str], out: Optional[str],
              line) -> str:
        """Balanced reduction of *nets* under a 2-input builder."""
        if len(nets) == 1:
            return self._buf(nets[0], out, line)
        level = list(nets)
        while len(level) > 2:
            nxt: List[str] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op2(level[i], level[i + 1], None, line))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return op2(level[0], level[1], out, line)

    def _inverted_tree(self, op2, cell3: str, root2, nets: Sequence[str],
                       out: Optional[str], line) -> str:
        """NAND/NOR of any arity: reduce with *op2*, complement at root.

        ``cell3`` (NAND3X1/NOR3X1) is used directly for arity 3; larger
        arities split into two subtrees joined by the 2-input
        complementing root *root2*.
        """
        if len(nets) == 1:
            return self._inv(nets[0], out, line)
        if len(nets) == 2:
            return root2(nets[0], nets[1], out, line)
        if len(nets) == 3 and self.pick.has(cell3):
            return self._emit(cell3, tuple(nets), out, line)
        half = (len(nets) + 1) // 2
        left = self._tree(op2, nets[:half], None, line)
        right = self._tree(op2, nets[half:], None, line)
        return root2(left, right, out, line)

    # ------------------------------------------------------------------
    def lower_node(self, node: Node) -> None:
        ins = [self.net(i) for i in node.inputs]
        out = self.net(node.output)
        line = node.line
        op = node.op
        if op == "NOT":
            self._inv(ins[0], out, line)
        elif op == "BUF":
            self._buf(ins[0], out, line)
        elif op == "AND":
            self._tree(self._and2, ins, out, line)
        elif op == "OR":
            self._tree(self._or2, ins, out, line)
        elif op == "NAND":
            self._inverted_tree(
                self._and2, "NAND3X1", self._nand2, ins, out, line
            )
        elif op == "NOR":
            self._inverted_tree(
                self._or2, "NOR3X1", self._nor2, ins, out, line
            )
        elif op == "XOR":
            if len(ins) == 1:
                self._buf(ins[0], out, line)
            else:
                folded = self._tree(self._xor2, ins, out, line)
                assert folded == out
        elif op == "XNOR":
            if len(ins) == 1:
                self._inv(ins[0], out, line)
            else:
                head = ins[0] if len(ins) == 2 else self._tree(
                    self._xor2, ins[:-1], None, line
                )
                self._xnor2(head, ins[-1], out, line)
        else:  # pragma: no cover - parsers only emit known ops
            raise LowerError(f"unknown operator {op!r}")


def lower_graph(
    graph: NetGraph,
    cells: Optional[Mapping[str, object]] = None,
    name: Optional[str] = None,
) -> Tuple[Optional[Circuit], Dict[str, int], Dict[str, str]]:
    """Map *graph* onto standard cells.

    Returns ``(circuit, gate_lines, renames)``; ``circuit`` is ``None``
    when lowering hit a structural impossibility, which is recorded on
    ``graph.report`` as a located ERROR diagnostic (``reserved-name``
    for signals colliding with the constant nets, ``unmappable-op``
    when the cell subset lacks the needed logic).  *graph* must be
    link-clean (``graph.report.ok``) — lowering a graph with undriven
    or multi-driven signals raises :class:`LowerError` outright.
    """
    if not graph.report.ok:
        raise LowerError(
            "cannot lower a graph with link errors; consult graph.report"
        )
    lw = Lowerer(graph, cells=cells, name=name)
    for node in graph.nodes:
        if node.output in _CONSTS:
            graph.report.diagnostics.append(Diagnostic(
                code="reserved-name", severity=ERROR,
                message=(
                    f"signal {node.output!r} collides with a reserved "
                    "constant net and cannot be driven"
                ),
                net=node.output, line=node.line, path=graph.path,
            ))
            return None, {}, {}
    for foreign in graph.inputs:
        lw.circuit.add_input(lw.net(foreign))
    # Reserve every foreign name up front so decomposition-internal
    # fresh nets can never collide with a signal that appears later.
    lw.circuit.reserve_net_names(
        lw.net(s)
        for node in graph.nodes
        for s in (node.output, *node.inputs)
    )
    try:
        for node in graph.nodes:
            lw.lower_node(node)
    except LowerError as exc:
        graph.report.diagnostics.append(Diagnostic(
            code="unmappable-op", severity=ERROR,
            message=str(exc), path=graph.path,
        ))
        return None, {}, {}
    lw.circuit.set_outputs([lw.net(o) for o in graph.outputs])
    return lw.circuit, lw.gate_lines, lw.rename_map()
