"""Structural gate-level Verilog front end (a deliberately small subset).

Accepted grammar — one module per file, primitive-gate structural style
as emitted by synthesis tools in "gate-level netlist" mode::

    // line comments and /* block comments */
    module top (a, b, cin, sum, cout);
      input a, b, cin;
      output sum, cout;
      wire w1, w2, w3;
      xor g1 (w1, a, b);
      xor g2 (sum, w1, cin);
      and g3 (w2, a, b);
      and    (w3, w1, cin);      // instance name optional
      or  g5 (cout, w2, w3);
      assign dbg = w1;           // alias / buffer
    endmodule

* **Declarations** — ``input`` / ``output`` / ``wire`` with an optional
  ``[msb:lsb]`` range; a ranged declaration expands to per-bit nets
  ``name[i]`` (msb first).  ANSI-style port directions inside the module
  header are accepted too.
* **Primitive gates** — ``and nand or nor xor xnor`` (first port is the
  output, any number of inputs) and ``not buf`` (last port is the
  input, every earlier port an output).  Several instances may share one
  statement (``and g1 (...), g2 (...);``).
* **assign** — right-hand side restricted to a plain signal, a bit
  select, or the constants ``1'b0`` / ``1'b1`` (tied to the reserved
  constant nets).
* **Flops** — not part of the subset; a ``module``-level instantiation
  of an unknown primitive is a located ``syntax`` diagnostic.  (Scan
  handling lives in the ``.bench`` front end, where ISCAS-89 keeps its
  state elements.)

Everything else (behavioural blocks, parameters, generate, hierarchical
instances) is out of scope and produces a located diagnostic rather
than a misparse: the parser never raises, and ``graph.report.ok`` gates
any further use of the result.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from repro.netlist.circuit import CONST0, CONST1
from repro.netlist.ingest.graph import NetGraph
from repro.netlist.validate import ERROR, WARNING

_PRIMITIVES = {
    "and": "AND", "nand": "NAND", "or": "OR", "nor": "NOR",
    "xor": "XOR", "xnor": "XNOR", "not": "NOT", "buf": "BUF",
}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_SIGNAL_RE = re.compile(rf"^{_IDENT}(\[\d+\])?$")
_RANGE_RE = re.compile(r"^\[\s*(\d+)\s*:\s*(\d+)\s*\]")
_MODULE_RE = re.compile(
    rf"^module\s+(?P<name>{_IDENT})\s*(?:\((?P<ports>.*)\))?\s*$",
    re.DOTALL,
)
_INSTANCE_RE = re.compile(rf"(?:(?P<inst>{_IDENT})\s*)?\((?P<ports>[^()]*)\)")
_CONSTANTS = {"1'b0": CONST0, "1'b1": CONST1, "1'd0": CONST0, "1'd1": CONST1}


def _strip_comments(text: str) -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line structure."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _statements(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(start_line, statement)`` pairs, split on ``;``.

    ``endmodule`` terminates a statement on its own (no semicolon in
    the language), so it is promoted to a separate statement.
    """
    text = re.sub(r"\bendmodule\b", ";endmodule;", text)
    line = 1
    buf: List[str] = []
    start = 1
    has_content = False
    for ch in text:
        if ch == ";":
            if has_content:
                yield start, "".join(buf).strip()
            buf = []
            has_content = False
        else:
            if not has_content and not ch.isspace():
                start = line
                has_content = True
            buf.append(ch)
        if ch == "\n":
            line += 1
    if has_content:
        yield start, "".join(buf).strip()


class _Parser:
    def __init__(self, graph: NetGraph):
        self.graph = graph
        self.in_module = False
        self.done = False
        # name -> (msb, lsb) for ranged declarations; None for scalars.
        self.widths: dict = {}
        self.declared_dirs: dict = {}
        # Header port order; directions may arrive later (non-ANSI).
        self.header_ports: List[str] = []

    # ------------------------------------------------------------------
    def expand(self, name: str, rng: Optional[Tuple[int, int]]) -> List[str]:
        if rng is None:
            return [name]
        msb, lsb = rng
        step = -1 if msb >= lsb else 1
        return [f"{name}[{i}]" for i in range(msb, lsb + step, step)]

    def declare(self, direction: str, name: str,
                rng: Optional[Tuple[int, int]], line: int) -> None:
        self.widths[name] = rng
        if direction == "wire":
            return
        prior = self.declared_dirs.get(name)
        if prior is not None and prior != direction:
            self.graph._diag(
                "syntax", ERROR,
                f"port {name!r} declared both {prior} and {direction}",
                line=line, net=name,
            )
            return
        if prior == direction:
            self.graph._diag(
                "syntax", ERROR,
                f"duplicate {direction} declaration of {name!r}",
                line=line, net=name,
            )
            return
        self.declared_dirs[name] = direction
        for bit in self.expand(name, rng):
            if direction == "input":
                self.graph.add_input(bit, line)
            else:
                self.graph.add_output(bit, line)

    def resolve(self, token: str, line: int) -> Optional[str]:
        """A port-connection token -> net name (None on a diagnostic)."""
        token = token.strip()
        const = _CONSTANTS.get(token.replace(" ", ""))
        if const is not None:
            return const
        if not _SIGNAL_RE.match(token):
            self.graph._diag(
                "syntax", ERROR,
                f"unsupported expression {token!r} in port connection "
                "(subset allows plain signals, bit selects and 1'b0/1'b1)",
                line=line,
            )
            return None
        if "[" not in token and self.widths.get(token) is not None:
            self.graph._diag(
                "syntax", ERROR,
                f"vector {token!r} used without a bit select",
                line=line, net=token,
            )
            return None
        return token

    # ------------------------------------------------------------------
    def parse_decl_list(self, body: str, line: int, direction: str) -> None:
        body = body.strip()
        rng = None
        m = _RANGE_RE.match(body)
        if m:
            rng = (int(m.group(1)), int(m.group(2)))
            body = body[m.end():]
        for name in body.split(","):
            name = name.strip()
            if not name:
                continue
            if not re.match(rf"^{_IDENT}$", name):
                self.graph._diag(
                    "syntax", ERROR,
                    f"bad {direction} declaration {name!r}", line=line,
                )
                continue
            self.declare(direction, name, rng, line)

    def parse_header_ports(self, ports: str, line: int) -> None:
        """Module header port list, plain or ANSI-style."""
        direction = None
        rng = None
        for item in ports.split(","):
            item = item.strip()
            if not item:
                continue
            m = re.match(r"^(input|output|inout)\b\s*(.*)$", item, re.DOTALL)
            if m:
                direction = m.group(1)
                item = m.group(2).strip()
                rng = None
                if direction == "inout":
                    self.graph._diag(
                        "syntax", ERROR,
                        "inout ports are outside the structural subset",
                        line=line,
                    )
                    direction = None
                    continue
                r = _RANGE_RE.match(item)
                if r:
                    rng = (int(r.group(1)), int(r.group(2)))
                    item = item[r.end():].strip()
            if not item:
                continue
            if not re.match(rf"^{_IDENT}$", item):
                self.graph._diag(
                    "syntax", ERROR, f"bad port {item!r}", line=line,
                )
                continue
            self.header_ports.append(item)
            if direction is not None:
                self.declare(direction, item, rng, line)

    def parse_gate(self, op: str, rest: str, line: int) -> None:
        found = False
        for m in _INSTANCE_RE.finditer(rest):
            found = True
            ports = [
                p for p in (t.strip() for t in m.group("ports").split(","))
                if p
            ]
            nets = [self.resolve(p, line) for p in ports]
            if any(n is None for n in nets):
                continue
            if op in ("NOT", "BUF"):
                if len(nets) < 2:
                    self.graph._diag(
                        "syntax", ERROR,
                        f"{op.lower()} needs at least one output and one "
                        f"input, got {len(nets)} port(s)", line=line,
                    )
                    continue
                src = nets[-1]
                for out in nets[:-1]:
                    self.graph.add_node(op, out, (src,), line)
            else:
                if len(nets) < 3:
                    self.graph._diag(
                        "syntax", ERROR,
                        f"{op.lower()} needs one output and at least two "
                        f"inputs, got {len(nets)} port(s)", line=line,
                    )
                    continue
                self.graph.add_node(op, nets[0], tuple(nets[1:]), line)
        if not found:
            self.graph._diag(
                "syntax", ERROR,
                f"malformed {op.lower()} instantiation", line=line,
            )

    def parse_assign(self, rest: str, line: int) -> None:
        lhs, eq, rhs = rest.partition("=")
        if not eq:
            self.graph._diag(
                "syntax", ERROR, "malformed assign (no '=')", line=line,
            )
            return
        dst = self.resolve(lhs, line)
        src = self.resolve(rhs, line)
        if dst is None or src is None:
            return
        self.graph.add_node("BUF", dst, (src,), line)

    # ------------------------------------------------------------------
    def feed(self, line: int, stmt: str) -> None:
        stmt = re.sub(r"\s+", " ", stmt).strip()
        if self.done:
            self.graph._diag(
                "syntax", ERROR,
                "statement after endmodule (one module per file)",
                line=line,
            )
            return
        if not self.in_module:
            m = _MODULE_RE.match(stmt)
            if m is None:
                self.graph._diag(
                    "syntax", ERROR,
                    f"expected 'module', got {stmt[:40]!r}", line=line,
                )
                return
            self.in_module = True
            self.graph.name = m.group("name")
            if m.group("ports"):
                self.parse_header_ports(m.group("ports"), line)
            return
        if stmt == "endmodule":
            self.done = True
            return
        for direction in ("input", "output", "wire"):
            m = re.match(rf"^{direction}\b(.*)$", stmt, re.DOTALL)
            if m:
                self.parse_decl_list(m.group(1), line, direction)
                return
        m = re.match(rf"^({_IDENT})\b(.*)$", stmt, re.DOTALL)
        if m and m.group(1) in _PRIMITIVES:
            self.parse_gate(_PRIMITIVES[m.group(1)], m.group(2), line)
            return
        if m and m.group(1) == "assign":
            self.parse_assign(m.group(2), line)
            return
        self.graph._diag(
            "syntax", ERROR,
            f"unsupported statement {stmt[:60]!r} (structural subset: "
            "declarations, primitive gates, assign)", line=line,
        )


def parse_verilog(text: str, path: Optional[str] = None,
                  name: Optional[str] = None) -> NetGraph:
    """Parse structural Verilog *text* into a linked :class:`NetGraph`.

    Recovering like :func:`~repro.netlist.ingest.bench.parse_bench`:
    statements outside the subset become located ``syntax`` diagnostics
    and are skipped; the graph is link-checked before being returned.
    """
    graph = NetGraph(name or "top", path=path)
    parser = _Parser(graph)
    for line, stmt in _statements(_strip_comments(text)):
        parser.feed(line, stmt)
    if not parser.in_module:
        graph._diag("syntax", ERROR, "no 'module' found")
    elif not parser.done:
        graph._diag("syntax", WARNING, "missing 'endmodule'")
    # Header ports without a direction declaration anywhere.
    for port in parser.header_ports:
        if port not in parser.declared_dirs:
            graph._diag(
                "syntax", ERROR,
                f"port {port!r} has no input/output declaration",
                net=port,
            )
    graph.link()
    return graph
