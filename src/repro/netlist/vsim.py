"""Wide-batch vectorized logic simulation (numpy backend).

The event backend packs one machine word of patterns (64 pairs) per pass
and spends a Python-level lambda call per gate per word.  This module
widens the word: each net's value is a ``numpy uint64`` array of *W*
words — ``64 * W`` patterns per pass (default ``W = 64``, i.e. 4096) —
and a single pass over the levelized plan evaluates every gate with
vectorized bitwise ops.  The compiled sum-of-products evaluators from
:mod:`repro.netlist.simulator` are reused verbatim: their bodies contain
only ``&``, ``|`` and ``~``, which numpy applies elementwise, so the
wide backend shares the event backend's topological order, pin indices
and truth tables and is bit-identical to it by construction.

Good-machine values are cached in the *same* per-plan LRU as the event
backend, under keys tagged with the backend name and word count, so
event and wide entries never collide and the shared
``GOOD_CACHE_SIZE`` bound governs both.  Wide entries carry their own
checksums (CRC over the raw array bytes); verification obeys the same
``REPRO_CACHE_INTEGRITY`` switch and fires the same
``fsim.good_cache_hit`` chaos seam, so the corruption-repair invariants
hold for both representations.

Environment knobs:

* ``REPRO_SIM_BACKEND`` — default simulation backend (``event``/``wide``);
* ``REPRO_SIM_WORDS`` — wide batch capacity in 64-bit words (default 64);
* ``REPRO_SIM_WORKERS`` — default fault-partition worker count for call
  sites that do not pass ``workers=`` explicitly (default 1);
* ``REPRO_SIM_EXEC`` — default execution mode for ``workers > 1``:
  ``serial`` / ``thread`` / ``process`` / ``auto`` (default ``auto``:
  threads for the event backend, shared-memory processes for the wide
  backend — see :mod:`repro.faults.psim`).
"""

from __future__ import annotations

import os
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.circuit import NetlistError
from repro.netlist.simulator import CompiledCircuit, cache_integrity_enabled
from repro.utils import seams, supervise
from repro.utils.observability import EngineStats

BACKEND_EVENT = "event"
BACKEND_WIDE = "wide"
_BACKENDS = (BACKEND_EVENT, BACKEND_WIDE)

# One machine word of patterns: the event backend's batch capacity and
# the wide backend's per-array-element width.
WORD_BITS = 64


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend choice; ``None`` falls back to the environment.

    ``REPRO_SIM_BACKEND`` is read at call time (not import time) so the
    runner campaigns and the resynthesis loop pick the backend up
    without call-site changes, and tests can monkeypatch it.
    """
    if backend is None:
        backend = os.environ.get("REPRO_SIM_BACKEND", "").strip() or BACKEND_EVENT
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; expected one of {_BACKENDS}"
        )
    return backend


EXEC_SERIAL = "serial"
EXEC_THREAD = "thread"
EXEC_PROCESS = "process"
EXEC_AUTO = "auto"
_EXEC_MODES = (EXEC_SERIAL, EXEC_THREAD, EXEC_PROCESS, EXEC_AUTO)


def resolve_exec(exec_mode: Optional[str] = None) -> str:
    """Normalize an execution-mode choice; ``None`` falls back to the env.

    ``REPRO_SIM_EXEC`` is read at call time for the same reason as
    ``REPRO_SIM_BACKEND``: campaigns and the resynthesis loop pick the
    mode up without call-site changes, and tests can monkeypatch it.
    """
    if exec_mode is None:
        exec_mode = (
            os.environ.get("REPRO_SIM_EXEC", "").strip() or EXEC_AUTO
        )
    if exec_mode not in _EXEC_MODES:
        raise ValueError(
            f"unknown execution mode {exec_mode!r}; "
            f"expected one of {_EXEC_MODES}"
        )
    return exec_mode


def resolve_atpg_exec(exec_mode: Optional[str] = None) -> str:
    """Execution mode for the deterministic ATPG SAT phase.

    An explicit *exec_mode* wins — it is the same value ``run_atpg``
    hands its fault-simulation batches, so one argument steers the whole
    run.  Otherwise ``REPRO_ATPG_EXEC`` decides, defaulting to
    ``REPRO_SIM_EXEC`` (one env knob parallelizes everything) and
    finally to ``auto``.  Note the SAT phase only shards across
    processes under an explicit ``process`` mode: ``auto`` keeps it
    serial, because unlike a simulation batch the phase's dispatch cost
    (per-worker solver encodings) only pays off on real multi-core
    hardware (see :mod:`repro.atpg.patpg`).
    """
    if exec_mode is None:
        exec_mode = (
            os.environ.get("REPRO_ATPG_EXEC", "").strip()
            or os.environ.get("REPRO_SIM_EXEC", "").strip()
            or EXEC_AUTO
        )
    if exec_mode not in _EXEC_MODES:
        raise ValueError(
            f"unknown execution mode {exec_mode!r}; "
            f"expected one of {_EXEC_MODES}"
        )
    return exec_mode


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count; ``None`` falls back to ``REPRO_SIM_WORKERS`` (1).

    When the campaign scheduler has a :class:`~repro.utils.supervise.Lease`
    active on this thread (or a process-isolated task worker installed a
    static share from ``REPRO_RUN_CORE_SHARE``), the request is
    negotiated against the core ledger: ``None`` with no environment
    override means "my fair share", and an explicit count is capped at
    the share.  Unmanaged callers see the historical behaviour exactly.
    """
    if workers is None:
        raw = os.environ.get("REPRO_SIM_WORKERS", "").strip()
        if raw:
            workers = int(raw)
        else:
            granted = supervise.negotiate_workers(None)
            return 1 if granted is None else granted
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    granted = supervise.negotiate_workers(workers)
    return workers if granted is None else granted


def resolve_words(words: Optional[int] = None) -> int:
    """Wide batch capacity in 64-bit words (``REPRO_SIM_WORDS``, default 64)."""
    if words is None:
        words = int(os.environ.get("REPRO_SIM_WORDS", "64"))
    if words < 1:
        raise ValueError(f"wide backend needs at least one word, got {words}")
    return words


def batch_capacity(
    backend: Optional[str] = None, words: Optional[int] = None
) -> int:
    """Maximum patterns per batch for *backend*.

    The event backend packs one machine word (64 pairs); the wide
    backend packs ``64 * REPRO_SIM_WORDS`` (4096 by default).
    """
    if resolve_backend(backend) == BACKEND_EVENT:
        return WORD_BITS
    return WORD_BITS * resolve_words(words)


def words_for(n_patterns: int) -> int:
    """Words needed to hold *n_patterns* (at least one)."""
    return max(1, -(-n_patterns // WORD_BITS))


# ----------------------------------------------------------------------
# Packing between Python-int bit vectors and uint64 word arrays
# ----------------------------------------------------------------------
def pack_word(value: int, words: int) -> np.ndarray:
    """Split a Python-int bit vector into *words* little-endian uint64 words."""
    raw = (value & ((1 << (WORD_BITS * words)) - 1)).to_bytes(
        8 * words, "little"
    )
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


def unpack_word(array: np.ndarray) -> int:
    """Inverse of :func:`pack_word`: word array back to one Python int."""
    return int.from_bytes(
        np.ascontiguousarray(array, dtype="<u8").tobytes(), "little"
    )


def wide_mask(n_patterns: int, words: int) -> np.ndarray:
    """The all-patterns-ones mask as a word array (bits ``>= n`` clear)."""
    return pack_word((1 << n_patterns) - 1, words)


# ----------------------------------------------------------------------
# Wide good-machine simulation with shared, checksummed LRU caching
# ----------------------------------------------------------------------
def wide_checksum(entry: Tuple[np.ndarray, ...]) -> Tuple[int, ...]:
    """Order-sensitive checksum of a cached wide entry (one CRC per frame)."""
    return tuple(
        zlib.crc32(np.ascontiguousarray(frame, dtype=np.uint64).tobytes())
        for frame in entry
    )


def simulate_wide(
    plan: CompiledCircuit,
    pi_values: Mapping[str, int],
    mask: np.ndarray,
    words: int,
) -> np.ndarray:
    """One dense vectorized pass; returns a ``(n_nets, words)`` uint64 array.

    Row *i* holds net *i*'s value words (the plan's dense net indices).
    """
    values = np.zeros((plan.n_nets, words), dtype=np.uint64)
    values[1] = mask
    net_index = plan.net_index
    for pi in plan.pi_order:
        try:
            packed = pack_word(pi_values[pi], words)
        except KeyError:
            raise NetlistError(
                f"missing value for primary input {pi}"
            ) from None
        values[net_index[pi]] = packed & mask
    gate_eval = plan.gate_eval
    gate_out = plan.gate_out
    for gi in range(len(gate_out)):
        values[gate_out[gi]] = gate_eval[gi](values, mask)
    return values


def wide_good_values(
    plan: CompiledCircuit,
    batch_key: tuple,
    frames: Sequence[Mapping[str, int]],
    mask: np.ndarray,
    words: int,
    stats: Optional[EngineStats] = None,
) -> Tuple[np.ndarray, ...]:
    """LRU-cached wide good-machine simulation of packed input *frames*.

    Shares the plan's good-value LRU (and its lock, bound and eviction)
    with the event backend; *batch_key* must already carry the backend
    tag and word count so the two representations never collide.  Hits
    are verified against a CRC checksum when cache integrity checking is
    on — a corrupted entry is dropped and re-simulated, keeping results
    bit-exact, with the repair counted on
    ``EngineStats.cache_integrity_failures``.
    """
    with plan._good_lock:
        cached = plan.good_cache.get(batch_key)
        if cached is not None and seams.active:
            # Same chaos seam as the event path: a harness may corrupt
            # (or drop) the entry in place before it is served.
            seams.fire(
                "fsim.good_cache_hit", plan=plan, batch_key=batch_key
            )
            cached = plan.good_cache.get(batch_key)
        if cached is not None and cache_integrity_enabled():
            expect = plan.good_sums.get(batch_key)
            if expect is not None and wide_checksum(cached) != expect:
                del plan.good_cache[batch_key]
                plan.good_sums.pop(batch_key, None)
                if stats is not None:
                    stats.cache_integrity_failures += 1
                cached = None
        if cached is not None:
            plan.good_cache.move_to_end(batch_key)
            if stats is not None:
                stats.good_cache_hits += len(cached)
            return cached
    result = tuple(simulate_wide(plan, f, mask, words) for f in frames)
    if stats is not None:
        stats.good_simulations += len(result)
        stats.vector_ops += len(result) * len(plan.gate_out)
    with plan._good_lock:
        winner = plan.good_cache.get(batch_key)
        if winner is not None:
            plan.good_cache.move_to_end(batch_key)
            return winner
        plan.good_cache[batch_key] = result
        plan.good_sums[batch_key] = wide_checksum(result)
        while len(plan.good_cache) > plan.GOOD_CACHE_SIZE:
            evicted, _ = plan.good_cache.popitem(last=False)
            plan.good_sums.pop(evicted, None)
    return result
