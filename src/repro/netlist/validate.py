"""Structural netlist linting with located, structured diagnostics.

:meth:`Circuit.validate` is the fail-fast integrity gate: it raises on
the first broken invariant.  This module is the *reporting* counterpart
used by campaign preflight (``repro.runner check``): it walks the whole
circuit, collects **every** problem as a :class:`Diagnostic` with a
stable machine-readable code, the offending net/gate, and — when the
circuit came from a netlist file — the source line, so a user fixing a
hand-written benchmark sees all of its problems at once.

Two entry points:

* :func:`lint_circuit` — lint an already-constructed :class:`Circuit`
  (construction already guarantees single drivers, so the checks cover
  undriven nets, floating outputs, combinational loops, unknown cells,
  pin mismatches, and fanout/connectivity warnings);
* :func:`lint_netlist_text` — the *recovering* text-level front end: it
  parses like :func:`repro.netlist.io.parse_netlist` but records syntax
  and construction errors (bad pin specs, duplicate gates, multi-driven
  nets, ...) as diagnostics instead of raising, skips the offending
  lines, and lints whatever circuit could still be built.

Diagnostic codes are part of the tool's interface (tests and the runner
match on them):

``undriven-net``, ``floating-output``, ``multi-driven-net``,
``combinational-loop``, ``unknown-cell``, ``bad-pins``, ``syntax``
(errors) and ``dangling-net``, ``unused-input``, ``fanout-anomaly``
(warnings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import CONST0, CONST1, Circuit, NetlistError

_CONSTS = frozenset((CONST0, CONST1))

ERROR = "error"
WARNING = "warning"

# A net loaded by more pins than this is flagged as a fanout anomaly —
# far beyond what the OSU 0.18um cells drive in practice, so it almost
# always indicates a netlist-generation bug rather than a real design.
FANOUT_WARN_THRESHOLD = 64


@dataclass(frozen=True)
class Diagnostic:
    """One linting finding, locatable and machine-matchable.

    ``code`` is a stable kebab-case identifier; ``severity`` is
    :data:`ERROR` or :data:`WARNING`.  ``net``/``gate`` name the
    offending objects where applicable; ``line`` (1-based) and ``path``
    point into the source netlist when the circuit came from text.
    """

    code: str
    severity: str
    message: str
    net: Optional[str] = None
    gate: Optional[str] = None
    line: Optional[int] = None
    path: Optional[str] = None

    def __str__(self) -> str:
        where = self.path or "<netlist>"
        if self.line is not None:
            where = f"{where}:{self.line}"
        return f"{where}: {self.severity}: [{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """All diagnostics of one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when the circuit is usable (warnings do not fail it)."""
        return not self.errors

    def codes(self) -> Set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render(self) -> str:
        """Human-readable multi-line summary (one line per diagnostic)."""
        if not self.diagnostics:
            return "clean: no problems found"
        lines = [str(d) for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def _add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)


def _find_cycle(circuit: Circuit, stuck: Set[str]) -> List[str]:
    """One concrete gate cycle within *stuck* (gates Kahn couldn't order).

    Every gate in *stuck* has a fanin inside *stuck*, so walking fanin
    edges restricted to *stuck* must revisit a gate — the walk from that
    revisit onward is a cycle, returned in drive order.
    """
    start = sorted(stuck)[0]
    path: List[str] = []
    index: Dict[str, int] = {}
    g = start
    while g not in index:
        index[g] = len(path)
        path.append(g)
        g = sorted(h for h in circuit.gate_fanin_gates(g) if h in stuck)[0]
    cycle = path[index[g]:]
    cycle.reverse()  # fanin walk visits against the drive direction
    return cycle


def lint_circuit(
    circuit: Circuit,
    cells: Optional[Mapping[str, object]] = None,
    path: Optional[str] = None,
    gate_lines: Optional[Mapping[str, int]] = None,
    output_lines: Optional[Mapping[str, int]] = None,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Collect every structural problem of *circuit* as diagnostics.

    *cells* (cell name -> :class:`~repro.netlist.circuit.CellDef`)
    enables the ``unknown-cell`` / ``bad-pins`` checks; without it only
    connectivity is linted.  *gate_lines* / *output_lines* map gate
    names and PO nets to their source lines for located diagnostics.
    Unlike :meth:`Circuit.validate` this never raises — a circuit with a
    combinational loop is fully linted, not aborted at ``topo_order``.
    """
    rep = report if report is not None else ValidationReport()
    gline = dict(gate_lines or {})
    oline = dict(output_lines or {})

    loaded: Set[str] = set()
    for name, gate in sorted(circuit.gates.items()):
        line = gline.get(name)
        for pin, net in sorted(gate.pins.items()):
            loaded.add(net)
            if net in _CONSTS or net in circuit.inputs:
                continue
            if circuit.driver(net) is None:
                rep._add(Diagnostic(
                    code="undriven-net", severity=ERROR,
                    message=(
                        f"net {net!r} feeding pin {pin} of gate {name!r} "
                        "has no driver"
                    ),
                    net=net, gate=name, line=line, path=path,
                ))
        if cells is not None:
            cell = cells.get(gate.cell)
            if cell is None:
                rep._add(Diagnostic(
                    code="unknown-cell", severity=ERROR,
                    message=(
                        f"gate {name!r} instantiates unknown cell "
                        f"{gate.cell!r}"
                    ),
                    gate=name, line=line, path=path,
                ))
            else:
                want = tuple(sorted(cell.input_pins))
                have = tuple(sorted(gate.pins))
                if want != have:
                    rep._add(Diagnostic(
                        code="bad-pins", severity=ERROR,
                        message=(
                            f"gate {name!r} ({gate.cell}) connects pins "
                            f"{list(have)}, cell defines {list(want)}"
                        ),
                        gate=name, line=line, path=path,
                    ))

    for net in circuit.outputs:
        if net not in _CONSTS and circuit.driver(net) is None \
                and net not in circuit.inputs:
            rep._add(Diagnostic(
                code="floating-output", severity=ERROR,
                message=f"primary output {net!r} has no driver",
                net=net, line=oline.get(net), path=path,
            ))

    # Combinational loops: Kahn elimination; whatever remains is cyclic.
    indeg: Dict[str, int] = {}
    for name, gate in circuit.gates.items():
        indeg[name] = sum(
            1 for net in gate.pins.values() if circuit.driver(net) is not None
        )
    queue = [n for n, d in indeg.items() if d == 0]
    ordered = 0
    while queue:
        name = queue.pop()
        ordered += 1
        # Relax one edge per load *pin*, mirroring the per-pin indegree
        # above — a gate tying two pins to the same net is not a cycle.
        for succ, _pin in circuit.loads(circuit.gates[name].output):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                queue.append(succ)
    stuck = {n for n, d in indeg.items() if d > 0}
    if stuck:
        cycle = _find_cycle(circuit, stuck)
        nets = [circuit.gates[g].output for g in cycle]
        rep._add(Diagnostic(
            code="combinational-loop", severity=ERROR,
            message=(
                "combinational loop through gates "
                f"{cycle} (nets {nets})"
            ),
            net=nets[0], gate=cycle[0],
            line=gline.get(cycle[0]), path=path,
        ))

    # Warnings: dead connectivity and implausible fanout.
    po = set(circuit.outputs)
    for name, gate in sorted(circuit.gates.items()):
        out = gate.output
        if out not in po and not circuit.loads(out):
            rep._add(Diagnostic(
                code="dangling-net", severity=WARNING,
                message=(
                    f"net {out!r} driven by gate {name!r} is neither "
                    "loaded nor a primary output"
                ),
                net=out, gate=name, line=gline.get(name), path=path,
            ))
    for pi in circuit.inputs:
        if pi not in loaded and pi not in po:
            rep._add(Diagnostic(
                code="unused-input", severity=WARNING,
                message=f"primary input {pi!r} drives nothing",
                net=pi, path=path,
            ))
    for net in sorted(circuit.nets()):
        n_loads = len(circuit.loads(net))
        if n_loads > FANOUT_WARN_THRESHOLD:
            rep._add(Diagnostic(
                code="fanout-anomaly", severity=WARNING,
                message=(
                    f"net {net!r} fans out to {n_loads} pins "
                    f"(threshold {FANOUT_WARN_THRESHOLD})"
                ),
                net=net, gate=circuit.driver(net), path=path,
            ))
    return rep


def lint_netlist_text(
    text: str,
    path: Optional[str] = None,
    cells: Optional[Mapping[str, object]] = None,
) -> Tuple[Optional[Circuit], ValidationReport]:
    """Recovering parse + lint of netlist *text*.

    Unlike :func:`repro.netlist.io.parse_netlist`, a bad line does not
    abort the parse: it becomes a located diagnostic and the line is
    skipped, so one pass reports every problem in the file.  Returns the
    best-effort :class:`Circuit` (``None`` only when no ``circuit``
    header was found) together with the full report; the circuit is
    only trustworthy when ``report.ok``.
    """
    rep = ValidationReport()
    circuit: Optional[Circuit] = None
    outputs: List[str] = []
    gate_lines: Dict[str, int] = {}
    output_lines: Dict[str, int] = {}

    def syntax(lineno: int, message: str, **kw: object) -> None:
        rep._add(Diagnostic(
            code="syntax", severity=ERROR, message=message,
            line=lineno, path=path, **kw,  # type: ignore[arg-type]
        ))

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        if kind == "circuit":
            if len(tokens) != 2:
                syntax(lineno, "expected 'circuit <name>'")
            elif circuit is not None:
                syntax(lineno, "duplicate 'circuit' header")
            else:
                circuit = Circuit(tokens[1])
            continue
        if circuit is None:
            syntax(lineno, "statement before 'circuit' header")
            continue
        if kind == "input":
            for name in tokens[1:]:
                try:
                    circuit.add_input(name)
                except NetlistError as exc:
                    syntax(lineno, str(exc), net=name)
        elif kind == "output":
            for name in tokens[1:]:
                if name in output_lines:
                    syntax(lineno, f"duplicate output {name}", net=name)
                else:
                    output_lines[name] = lineno
                    outputs.append(name)
        elif kind == "gate":
            _lint_gate_line(
                circuit, tokens, line, lineno, path, rep, gate_lines
            )
        else:
            syntax(lineno, f"unknown directive {kind!r}")

    if circuit is None:
        rep._add(Diagnostic(
            code="syntax", severity=ERROR,
            message="no 'circuit' line found", path=path,
        ))
        return None, rep
    circuit.set_outputs(outputs)  # duplicates already filtered above
    lint_circuit(
        circuit, cells=cells, path=path,
        gate_lines=gate_lines, output_lines=output_lines, report=rep,
    )
    return circuit, rep


def _lint_gate_line(
    circuit: Circuit,
    tokens: Sequence[str],
    line: str,
    lineno: int,
    path: Optional[str],
    rep: ValidationReport,
    gate_lines: Dict[str, int],
) -> None:
    """Parse one ``gate`` line, recording problems instead of raising."""
    def syntax(message: str, **kw: object) -> None:
        rep._add(Diagnostic(
            code="syntax", severity=ERROR, message=message,
            line=lineno, path=path, **kw,  # type: ignore[arg-type]
        ))

    if len(tokens) < 3 or ">" not in tokens:
        syntax(f"malformed 'gate' line: {line!r}")
        return
    name, cell = tokens[1], tokens[2]
    arrow = tokens.index(">")
    if arrow + 2 != len(tokens):
        syntax("expected single output net after '>'", gate=name)
        return
    pins: Dict[str, str] = {}
    for pair in tokens[3:arrow]:
        pin, _, net = pair.partition("=")
        if not net:
            syntax(f"bad pin spec {pair!r}", gate=name)
            return
        pins[pin] = net
    output = tokens[arrow + 1]
    prior = circuit.driver(output)
    try:
        circuit.add_gate(name, cell, pins, output)
    except NetlistError as exc:
        code = "multi-driven-net" if prior is not None else "syntax"
        rep._add(Diagnostic(
            code=code, severity=ERROR, message=str(exc),
            net=output if prior is not None else None,
            gate=name, line=lineno, path=path,
        ))
        return
    gate_lines[name] = lineno
