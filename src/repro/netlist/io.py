"""Structural netlist text format.

A deliberately simple line-oriented format::

    circuit adder
    input a b cin
    output sum cout
    gate U1 XOR2X1 A=a B=b > n1
    gate U2 XOR2X1 A=n1 B=cin > sum
    ...

``input``/``output`` lines may repeat and accumulate.  ``#`` starts a
comment.  Gate output nets follow the ``>`` marker; input pins are
``PIN=net`` pairs.

Every parse error carries a source location (``path:line:``) so a bad
netlist in a large campaign points straight at the offending line rather
than surfacing as a bare exception from circuit construction.  For
recovering, multi-diagnostic ingestion (collect *all* problems instead
of stopping at the first), see :func:`repro.netlist.validate.
lint_netlist_text`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.netlist.circuit import Circuit, NetlistError


def write_netlist(circuit: Circuit) -> str:
    """Serialize *circuit* to the text format."""
    lines: List[str] = [f"circuit {circuit.name}"]
    if circuit.inputs:
        lines.append("input " + " ".join(circuit.inputs))
    if circuit.outputs:
        lines.append("output " + " ".join(circuit.outputs))
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        pins = " ".join(f"{p}={n}" for p, n in sorted(gate.pins.items()))
        lines.append(f"gate {gname} {gate.cell} {pins} > {gate.output}")
    return "\n".join(lines) + "\n"


def _located(
    path: Optional[str],
    lineno: Optional[int],
    message: str,
    code: str = "syntax",
) -> NetlistError:
    """A :class:`NetlistError` prefixed with its source location.

    *code* is the matching lint diagnostic code (see
    :mod:`repro.netlist.validate`); it rides on the exception's
    ``code`` attribute together with ``path``/``line`` so callers can
    handle parse failures like lint findings instead of string-matching.
    """
    where = path or "<netlist>"
    if lineno is not None:
        where = f"{where}:{lineno}"
    return NetlistError(f"{where}: {message}", code=code, path=path, line=lineno)


#: Map a :meth:`Circuit.validate` failure message onto its lint code.
_VALIDATE_CODES = (
    ("output net", "floating-output"),
    ("undriven", "undriven-net"),
    ("cycle", "combinational-loop"),
)


def _validate_code(message: str) -> str:
    for marker, code in _VALIDATE_CODES:
        if marker in message:
            return code
    return "syntax"


def parse_netlist(text: str, path: Optional[str] = None) -> Circuit:
    """Parse the text format into a :class:`Circuit`.

    *path* is only used to label error messages (``path:line: ...``);
    the text itself is always taken from *text*.  Raises
    :class:`NetlistError` on the first problem found — syntax errors,
    construction errors (duplicate gate, multi-driven net, ...) and
    structural validation failures (undriven net, combinational loop)
    all carry the file name and, where attributable, the line number.
    """
    circuit: Optional[Circuit] = None
    outputs: List[str] = []
    # Source line of each gate / each output declaration, for locating
    # structural errors that only surface at validate() time.
    gate_lines: Dict[str, int] = {}
    output_lines: Dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "circuit":
                if circuit is not None:
                    raise _located(path, lineno, "duplicate 'circuit' header")
                circuit = Circuit(tokens[1])
            elif kind == "input":
                _require(circuit, path, lineno)
                for name in tokens[1:]:
                    dup = name in circuit.inputs \
                        or circuit.driver(name) is not None
                    try:
                        circuit.add_input(name)
                    except NetlistError as exc:
                        raise _located(
                            path, lineno, str(exc),
                            code="multi-driven-net" if dup else "syntax",
                        ) from exc
            elif kind == "output":
                _require(circuit, path, lineno)
                for name in tokens[1:]:
                    if name in output_lines:
                        raise _located(
                            path, lineno, f"duplicate output {name}"
                        )
                    output_lines[name] = lineno
                    outputs.append(name)
            elif kind == "gate":
                _require(circuit, path, lineno)
                name, cell = tokens[1], tokens[2]
                arrow = tokens.index(">")
                pins = {}
                for pair in tokens[3:arrow]:
                    pin, _, net = pair.partition("=")
                    if not net:
                        raise _located(path, lineno, f"bad pin spec {pair!r}")
                    pins[pin] = net
                if arrow + 2 != len(tokens):
                    raise _located(
                        path, lineno, "expected single output net after '>'"
                    )
                out_net = tokens[arrow + 1]
                dup = circuit.driver(out_net) is not None \
                    or out_net in circuit.inputs
                try:
                    circuit.add_gate(name, cell, pins, out_net)
                except NetlistError as exc:
                    raise _located(
                        path, lineno, str(exc),
                        code="multi-driven-net" if dup else "syntax",
                    ) from exc
                gate_lines[name] = lineno
            else:
                raise _located(path, lineno, f"unknown directive {kind!r}")
        except (IndexError, ValueError) as exc:
            raise _located(
                path, lineno, f"malformed {kind!r} line: {line!r}"
            ) from exc
    if circuit is None:
        raise _located(path, None, "no 'circuit' line found")
    # Duplicates were rejected at their declaration line above, so
    # set_outputs cannot raise here.
    circuit.set_outputs(outputs)
    try:
        circuit.validate()
    except NetlistError as exc:
        raise _located(
            path, _blame_line(str(exc), gate_lines, output_lines), str(exc),
            code=_validate_code(str(exc)),
        ) from exc
    return circuit


def parse_file(
    path: str,
    fmt: Optional[str] = None,
    cells: Optional[Dict[str, object]] = None,
) -> Circuit:
    """Load a netlist file in any supported format (strict).

    The native text format parses via :func:`parse_netlist`; ``.bench``
    and structural Verilog go through :mod:`repro.netlist.ingest`, which
    technology-maps them onto standard cells.  *fmt* overrides the
    extension-based format detection.  Raises :class:`NetlistError`
    (with ``code``/``path``/``line`` context) on any defect.
    """
    from repro.netlist.ingest import load_file

    return load_file(path, fmt=fmt, cells=cells)


def _blame_line(
    message: str,
    gate_lines: Dict[str, int],
    output_lines: Dict[str, int],
) -> Optional[int]:
    """Best-effort source line for a validation failure.

    Validation errors name the offending gate (``"gate U2 pin A: net n3
    undriven"``) or output net (``"output net x undriven"``); if exactly
    one known name appears in the message, its declaration line is the
    location.
    """
    tokens = set(message.replace(",", " ").replace(":", " ").split())
    hits = [g for g in gate_lines if g in tokens]
    if len(hits) == 1:
        return gate_lines[hits[0]]
    hits = [n for n in output_lines if n in tokens]
    if len(hits) == 1:
        return output_lines[hits[0]]
    return None


def _require(circuit: Optional[Circuit], path: Optional[str], lineno: int) -> None:
    if circuit is None:
        raise _located(path, lineno, "statement before 'circuit' header")
