"""Structural netlist text format.

A deliberately simple line-oriented format::

    circuit adder
    input a b cin
    output sum cout
    gate U1 XOR2X1 A=a B=b > n1
    gate U2 XOR2X1 A=n1 B=cin > sum
    ...

``input``/``output`` lines may repeat and accumulate.  ``#`` starts a
comment.  Gate output nets follow the ``>`` marker; input pins are
``PIN=net`` pairs.
"""

from __future__ import annotations

from typing import List

from repro.netlist.circuit import Circuit, NetlistError


def write_netlist(circuit: Circuit) -> str:
    """Serialize *circuit* to the text format."""
    lines: List[str] = [f"circuit {circuit.name}"]
    if circuit.inputs:
        lines.append("input " + " ".join(circuit.inputs))
    if circuit.outputs:
        lines.append("output " + " ".join(circuit.outputs))
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        pins = " ".join(f"{p}={n}" for p, n in sorted(gate.pins.items()))
        lines.append(f"gate {gname} {gate.cell} {pins} > {gate.output}")
    return "\n".join(lines) + "\n"


def parse_netlist(text: str) -> Circuit:
    """Parse the text format into a :class:`Circuit`."""
    circuit: Circuit | None = None
    outputs: List[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "circuit":
                circuit = Circuit(tokens[1])
            elif kind == "input":
                _require(circuit, lineno)
                for name in tokens[1:]:
                    circuit.add_input(name)
            elif kind == "output":
                _require(circuit, lineno)
                outputs.extend(tokens[1:])
            elif kind == "gate":
                _require(circuit, lineno)
                name, cell = tokens[1], tokens[2]
                arrow = tokens.index(">")
                pins = {}
                for pair in tokens[3:arrow]:
                    pin, _, net = pair.partition("=")
                    if not net:
                        raise NetlistError(f"bad pin spec {pair!r}")
                    pins[pin] = net
                if arrow + 2 != len(tokens):
                    raise NetlistError("expected single output net after '>'")
                circuit.add_gate(name, cell, pins, tokens[arrow + 1])
            else:
                raise NetlistError(f"unknown directive {kind!r}")
        except (IndexError, ValueError) as exc:
            raise NetlistError(f"line {lineno}: malformed line {line!r}") from exc
    if circuit is None:
        raise NetlistError("no 'circuit' line found")
    circuit.set_outputs(outputs)
    circuit.validate()
    return circuit


def _require(circuit: Circuit | None, lineno: int) -> Circuit:
    if circuit is None:
        raise NetlistError(f"line {lineno}: statement before 'circuit' header")
    return circuit
