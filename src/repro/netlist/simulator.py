"""Bit-parallel logic simulation.

Net values are Python integers used as arbitrary-width bit vectors: bit *i*
of a net's value is the net's logic value under pattern *i*.  A single pass
over the circuit therefore simulates as many patterns as the word width,
which is what makes Python-side fault simulation practical.

Cell functions are given as truth tables (bit *m* of ``tt`` is the output
for input minterm *m*, with ``input_pins[0]`` as the least significant bit).
For speed, each (arity, tt) pair is compiled once into a Python lambda in
sum-of-products (or product-of-sums, whichever is smaller) form and cached.

:class:`CompiledCircuit` hoists every per-gate cost out of the simulation
loops: nets are mapped to dense integer indices, each gate's evaluator is
resolved exactly once, and load/PO structure is precomputed.  Plans are
cached per circuit (invalidated automatically when the circuit mutates),
so repeated simulation of the same design — the normal case inside the
resynthesis loop — pays the compile cost once.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.circuit import CONST0, CONST1, CellDef, Circuit, NetlistError
from repro.utils import seams
from repro.utils.observability import EngineStats

Evaluator = Callable[..., int]

# Good-value cache integrity checking.  Checksums are always *recorded*
# at store time (a tuple of per-frame value sums — O(n_nets) additions,
# negligible next to the simulation that produced the entry); they are
# only *verified* on hits when this flag is on, so the default hot path
# pays nothing.  A mismatch (bit-rot, a buggy in-process mutation, or a
# chaos-injected corruption) is repaired by dropping the entry and
# re-simulating — results stay bit-identical to an uncached run — and
# counted on ``EngineStats.cache_integrity_failures``.
_CACHE_INTEGRITY = os.environ.get("REPRO_CACHE_INTEGRITY", "") not in ("", "0")


def set_cache_integrity(enabled: bool) -> bool:
    """Enable/disable good-cache checksum verification; returns the old value."""
    global _CACHE_INTEGRITY
    old = _CACHE_INTEGRITY
    _CACHE_INTEGRITY = bool(enabled)
    return old


def cache_integrity_enabled() -> bool:
    """Current state of good-cache checksum verification.

    The wide backend (:mod:`repro.netlist.vsim`) shares the per-plan
    good-value LRU but verifies its array entries with its own checksum,
    so it needs to observe this flag without importing the private
    global.
    """
    return _CACHE_INTEGRITY


def _good_checksum(result: Tuple[List[int], ...]) -> Tuple[int, ...]:
    """Order-sensitive checksum of a cached good-value entry.

    One position-weighted sum per frame: any single-value corruption
    (and any swap of two distinct net values) changes the sum.
    """
    return tuple(
        sum((j + 1) * v for j, v in enumerate(vec)) for vec in result
    )

# Bound of the global (n_inputs, truth_table) -> evaluator cache.  Real
# libraries have a few dozen distinct cell functions, so the bound only
# matters for adversarial workloads (e.g. fuzzing over random truth
# tables) where an unbounded cache is a slow leak.  Tunable via the
# environment for such runs; hit/miss counts surface on EngineStats.
EVAL_CACHE_SIZE = int(os.environ.get("REPRO_EVAL_CACHE_SIZE", "1024"))


@lru_cache(maxsize=EVAL_CACHE_SIZE)
def compile_cell_eval(n_inputs: int, tt: int) -> Evaluator:
    """Compile a truth table into a bitwise evaluator.

    The returned callable takes ``n_inputs`` integer bit vectors followed by
    a ``mask`` keyword-only-by-position final argument and returns the output
    bit vector (already masked).
    """
    if n_inputs == 0:
        # `mask` / `mask & 0` instead of `-1 & mask`: these forms are
        # valid for Python-int masks *and* for the numpy uint64 arrays
        # the wide backend passes through the same evaluators (numpy
        # rejects the out-of-range literal -1 in uint64 arithmetic).
        if tt & 1:
            return lambda mask: mask
        return lambda mask: mask & 0
    size = 1 << n_inputs
    if tt >= (1 << size) or tt < 0:
        raise ValueError(f"truth table 0x{tt:x} out of range for {n_inputs} inputs")
    minterms = [m for m in range(size) if (tt >> m) & 1]
    use_complement = len(minterms) > size // 2
    terms = (
        [m for m in range(size) if not (tt >> m) & 1] if use_complement else minterms
    )
    args = [f"v{i}" for i in range(n_inputs)]

    def term_expr(m: int) -> str:
        lits = []
        for i in range(n_inputs):
            lits.append(args[i] if (m >> i) & 1 else f"~{args[i]}")
        return "(" + " & ".join(lits) + ")"

    if not terms:
        body = "0" if not use_complement else "mask"
    else:
        sop = " | ".join(term_expr(m) for m in terms)
        body = f"~({sop}) & mask" if use_complement else f"({sop}) & mask"
    src = f"lambda {', '.join(args)}, mask: {body}"
    return eval(src)  # noqa: S307 - source is generated from integers only


def _bind_gate_eval(fn: Evaluator, ins: Tuple[int, ...]) -> Callable:
    """Specialize a cell evaluator to one gate's input net indices.

    The returned closure takes ``(values, mask)`` and indexes the value
    vector directly — the event loop avoids building an argument list
    and unpacking it per evaluation.  Common arities are unrolled.
    """
    n = len(ins)
    if n == 1:
        a, = ins
        return lambda v, mask: fn(v[a], mask)
    if n == 2:
        a, b = ins
        return lambda v, mask: fn(v[a], v[b], mask)
    if n == 3:
        a, b, c = ins
        return lambda v, mask: fn(v[a], v[b], v[c], mask)
    if n == 4:
        a, b, c, d = ins
        return lambda v, mask: fn(v[a], v[b], v[c], v[d], mask)
    return lambda v, mask: fn(*[v[i] for i in ins], mask)


class CompiledCircuit:
    """A circuit prepared for repeated simulation.

    Nets are assigned dense indices (``CONST0`` = 0, ``CONST1`` = 1, then
    primary inputs, then gate outputs in topological order), and per-gate
    evaluators/pin indices are resolved once.  ``good_cache`` is an LRU of
    good-machine value vectors keyed by packed input frames — fault
    simulation consults it so re-simulating the same pattern batch (test
    re-grading, compaction, resynthesis re-analysis) is free.

    Use :meth:`get` rather than the constructor: plans are cached per
    circuit and invalidated when the circuit's topology changes.
    """

    # Per-plan LRU bound for good-machine value vectors.  A class
    # attribute on purpose: it is a tunable — assign to it (or set
    # REPRO_GOOD_CACHE_SIZE) to trade memory for good-simulation reuse;
    # instances may also override it individually.
    GOOD_CACHE_SIZE = int(os.environ.get("REPRO_GOOD_CACHE_SIZE", "32"))

    __slots__ = (
        "circuit", "cells", "pi_order", "net_index", "n_nets",
        "gate_names", "gate_index", "gate_fn", "gate_in", "gate_out",
        "gate_eval", "loads_of", "is_po", "po_index", "eval_compiles",
        "good_cache", "good_sums", "_good_lock", "_cone_sizes",
        "_cone_gates", "_topo_ref", "__weakref__",
    )

    def __init__(self, circuit: Circuit, cells: Mapping[str, CellDef]):
        self.circuit = circuit
        self.cells = cells
        topo = circuit.topo_order()
        self._topo_ref = circuit.topology_token()
        net_index: Dict[str, int] = {CONST0: 0, CONST1: 1}
        for pi in circuit.inputs:
            net_index[pi] = len(net_index)
        for gname in topo:
            net_index[circuit.gates[gname].output] = len(net_index)
        self.net_index = net_index
        self.n_nets = len(net_index)
        self.pi_order = list(circuit.inputs)

        gate_fn: List[Evaluator] = []
        gate_in: List[Tuple[int, ...]] = []
        gate_out: List[int] = []
        compiled: Dict[Tuple[int, int], Evaluator] = {}
        for gname in topo:
            gate = circuit.gates[gname]
            cell = cells[gate.cell]
            key = (len(cell.input_pins), cell.tt)
            fn = compiled.get(key)
            if fn is None:
                fn = compile_cell_eval(*key)
                compiled[key] = fn
            gate_fn.append(fn)
            try:
                gate_in.append(
                    tuple(net_index[gate.pins[p]] for p in cell.input_pins)
                )
            except KeyError as exc:
                raise NetlistError(
                    f"gate {gname}: input net {exc.args[0]} undriven"
                ) from None
            gate_out.append(net_index[gate.output])
        self.gate_names = list(topo)
        self.gate_index = {g: i for i, g in enumerate(topo)}
        self.gate_fn = gate_fn
        self.gate_in = gate_in
        self.gate_out = gate_out
        self.gate_eval = [
            _bind_gate_eval(fn, ins)
            for fn, ins in zip(gate_fn, gate_in)
        ]
        self.eval_compiles = len(compiled)

        loads_of: List[List[int]] = [[] for _ in range(self.n_nets)]
        for gi, ins in enumerate(gate_in):
            for idx in set(ins):
                loads_of[idx].append(gi)
        self.loads_of = loads_of

        self.is_po = bytearray(self.n_nets)
        po_index: List[int] = []
        for po in circuit.outputs:
            idx = net_index.get(po)
            if idx is None:
                raise NetlistError(f"output net {po} undriven")
            self.is_po[idx] = 1
            po_index.append(idx)
        self.po_index = po_index
        self.good_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        # Checksums of good_cache entries, maintained in lockstep (same
        # keys).  Kept out of good_cache itself so cached values remain
        # plain frame tuples for every existing consumer.
        self.good_sums: Dict[tuple, Tuple[int, ...]] = {}
        # Fault-partition worker threads (and concurrent candidate
        # evaluations sharing one plan) all consult the LRU; OrderedDict
        # get/move_to_end/popitem are not safe to interleave, so every
        # cache touch happens under this lock.  The good simulation
        # itself runs outside the lock.
        self._good_lock = threading.Lock()
        self._cone_sizes: Optional[List[int]] = None
        # Lazily computed forward cones: net index -> (gate indices in
        # topological order, PO net indices reachable from the net).
        # Used by the wide backend's dense cone-scoped propagation.
        self._cone_gates: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    def valid_for(self, circuit: Circuit, cells: Mapping[str, CellDef]) -> bool:
        return (
            self.circuit is circuit
            and self.cells is cells
            and self._topo_ref is circuit.topology_token()
        )

    @classmethod
    def get(
        cls,
        circuit: Circuit,
        cells: Mapping[str, CellDef],
        stats: Optional[EngineStats] = None,
    ) -> "CompiledCircuit":
        """Cached plan for (*circuit*, *cells*); rebuilt after mutation.

        Thread-safe: the module-level plan cache is consulted and
        updated under a lock (WeakKeyDictionary mutation may race with
        GC callbacks from other threads).  Plan construction runs
        outside the lock, so two threads may build the same plan
        concurrently — the plans are identical and the last insert wins.
        """
        with _PLAN_LOCK:
            plan = _PLAN_CACHE.get(circuit)
        if plan is not None and plan.valid_for(circuit, cells):
            if stats is not None:
                stats.plan_cache_hits += 1
            return plan
        # cache_info is absent when tests substitute a bare function for
        # the lru-cached evaluator compiler — skip the delta then.
        info = getattr(compile_cell_eval, "cache_info", None)
        before = info() if info is not None else None
        plan = cls(circuit, cells)
        with _PLAN_LOCK:
            _PLAN_CACHE[circuit] = plan
        if stats is not None:
            stats.plan_builds += 1
            stats.eval_compiles += plan.eval_compiles
            if before is not None:
                after = compile_cell_eval.cache_info()
                # Concurrent builds may skew the deltas; clamp at zero so
                # the counters stay monotone.
                stats.eval_cache_hits += max(0, after.hits - before.hits)
                stats.eval_cache_misses += max(0, after.misses - before.misses)
        return plan

    # ------------------------------------------------------------------
    def simulate_values(
        self, pi_values: Mapping[str, int], mask: int
    ) -> List[int]:
        """Bit-parallel simulation; returns net values indexed by net index."""
        values = [0] * self.n_nets
        values[1] = mask
        net_index = self.net_index
        for pi in self.pi_order:
            try:
                values[net_index[pi]] = pi_values[pi] & mask
            except KeyError:
                raise NetlistError(
                    f"missing value for primary input {pi}"
                ) from None
        gate_eval = self.gate_eval
        gate_out = self.gate_out
        for gi in range(len(gate_out)):
            values[gate_out[gi]] = gate_eval[gi](values, mask)
        return values

    def good_values(
        self,
        batch_key: tuple,
        frames: Sequence[Mapping[str, int]],
        mask: int,
        stats: Optional[EngineStats] = None,
    ) -> Tuple[List[int], ...]:
        """LRU-cached good-machine simulation of packed input *frames*.

        Thread-safe: lookups, recency updates and eviction are guarded
        by the plan's lock; a racing miss may simulate the same frames
        twice (the results are identical), but the hit/miss counters and
        the cache structure stay consistent.
        """
        with self._good_lock:
            cached = self.good_cache.get(batch_key)
            if cached is not None and seams.active:
                # Chaos seam: a harness may corrupt (or drop) this entry
                # in place before it is served, to prove the integrity
                # check catches it.  Re-read after firing.
                seams.fire(
                    "fsim.good_cache_hit", plan=self, batch_key=batch_key
                )
                cached = self.good_cache.get(batch_key)
            if cached is not None and _CACHE_INTEGRITY:
                expect = self.good_sums.get(batch_key)
                if expect is not None and _good_checksum(cached) != expect:
                    # Corrupted entry: discard it and fall through to a
                    # fresh simulation — callers still get bit-exact
                    # values; only the counter records the repair.
                    del self.good_cache[batch_key]
                    self.good_sums.pop(batch_key, None)
                    if stats is not None:
                        stats.cache_integrity_failures += 1
                    cached = None
            if cached is not None:
                self.good_cache.move_to_end(batch_key)
                if stats is not None:
                    stats.good_cache_hits += len(cached)
                return cached
        result = tuple(self.simulate_values(f, mask) for f in frames)
        if stats is not None:
            stats.good_simulations += len(result)
        with self._good_lock:
            winner = self.good_cache.get(batch_key)
            if winner is not None:
                # Another thread simulated the same frames first; serve
                # its (identical) vectors so every caller shares one copy.
                self.good_cache.move_to_end(batch_key)
                return winner
            self.good_cache[batch_key] = result
            self.good_sums[batch_key] = _good_checksum(result)
            while len(self.good_cache) > self.GOOD_CACHE_SIZE:
                evicted, _ = self.good_cache.popitem(last=False)
                self.good_sums.pop(evicted, None)
        return result

    def cone_sizes(self) -> List[int]:
        """Per-net fanout-cone gate-count estimates (for load balancing).

        Computed by a reverse-topological sum capped at the gate count;
        reconvergence makes it an overestimate, which is fine for
        partitioning work by expected propagation cost.
        """
        if self._cone_sizes is None:
            n_gates = len(self.gate_out)
            gate_cost = [1] * n_gates
            for gi in range(n_gates - 1, -1, -1):
                total = 1
                for gj in self.loads_of[self.gate_out[gi]]:
                    total += gate_cost[gj]
                gate_cost[gi] = min(total, n_gates)
            cone = [1] * self.n_nets
            for idx in range(self.n_nets):
                total = 1
                for gj in self.loads_of[idx]:
                    total += gate_cost[gj]
                cone[idx] = min(total, n_gates) if n_gates else 1
            self._cone_sizes = cone
        return self._cone_sizes

    def cone_gates(
        self, net_idx: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Forward cone of a net: affected gates and observable POs.

        Returns ``(gates, pos)`` where *gates* are the indices of every
        gate whose output can be influenced by *net_idx*, sorted in
        topological order (gate indices are assigned in topo order, so a
        plain sort suffices), and *pos* are the PO net indices among
        ``{net_idx} ∪ {outputs of gates}``.  Memoized per plan — fault
        sites repeat across batches, so the wide backend's dense
        propagation pays the traversal once per site.
        """
        cached = self._cone_gates.get(net_idx)
        if cached is not None:
            return cached
        seen_gates = set()
        frontier = [net_idx]
        while frontier:
            idx = frontier.pop()
            for gi in self.loads_of[idx]:
                if gi not in seen_gates:
                    seen_gates.add(gi)
                    frontier.append(self.gate_out[gi])
        gates = tuple(sorted(seen_gates))
        pos = []
        if self.is_po[net_idx]:
            pos.append(net_idx)
        for gi in gates:
            out = self.gate_out[gi]
            if self.is_po[out]:
                pos.append(out)
        result = (gates, tuple(pos))
        self._cone_gates[net_idx] = result
        return result


_PLAN_CACHE: "weakref.WeakKeyDictionary[Circuit, CompiledCircuit]" = (
    weakref.WeakKeyDictionary()
)
_PLAN_LOCK = threading.Lock()


def clear_compiled_cache() -> None:
    """Drop all cached plans and compiled evaluators (test hook)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
    compile_cell_eval.cache_clear()


def simulate(
    circuit: Circuit,
    cells: Mapping[str, CellDef],
    pi_values: Mapping[str, int],
    mask: int,
) -> Dict[str, int]:
    """Simulate the circuit; return the value of every net.

    *pi_values* maps each primary input net to a bit vector; *mask* is the
    all-patterns-ones mask, ``(1 << n_patterns) - 1``.
    """
    plan = CompiledCircuit.get(circuit, cells)
    values = plan.simulate_values(pi_values, mask)
    return {net: values[i] for net, i in plan.net_index.items()}


def simulate_patterns(
    circuit: Circuit,
    cells: Mapping[str, CellDef],
    patterns: Sequence[Mapping[str, int]],
) -> List[Dict[str, int]]:
    """Simulate scalar patterns; return one {net: 0/1} dict per pattern.

    Convenience wrapper that packs the patterns into bit vectors, runs one
    bit-parallel simulation, and unpacks the results.
    """
    n = len(patterns)
    if n == 0:
        return []
    mask = (1 << n) - 1
    packed: Dict[str, int] = {}
    for pi in circuit.inputs:
        word = 0
        for i, pat in enumerate(patterns):
            if pat[pi]:
                word |= 1 << i
        packed[pi] = word
    values = simulate(circuit, cells, packed, mask)
    out: List[Dict[str, int]] = []
    for i in range(n):
        out.append({net: (val >> i) & 1 for net, val in values.items()})
    return out


def outputs_of(
    circuit: Circuit, values: Mapping[str, int]
) -> List[int]:
    """Extract the PO bit vectors from a simulation result, in PO order."""
    return [values[po] for po in circuit.outputs]
