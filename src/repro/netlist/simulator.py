"""Bit-parallel logic simulation.

Net values are Python integers used as arbitrary-width bit vectors: bit *i*
of a net's value is the net's logic value under pattern *i*.  A single pass
over the circuit therefore simulates as many patterns as the word width,
which is what makes Python-side fault simulation practical.

Cell functions are given as truth tables (bit *m* of ``tt`` is the output
for input minterm *m*, with ``input_pins[0]`` as the least significant bit).
For speed, each (arity, tt) pair is compiled once into a Python lambda in
sum-of-products (or product-of-sums, whichever is smaller) form and cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Sequence

from repro.netlist.circuit import CONST0, CONST1, CellDef, Circuit, NetlistError

Evaluator = Callable[..., int]


@lru_cache(maxsize=None)
def compile_cell_eval(n_inputs: int, tt: int) -> Evaluator:
    """Compile a truth table into a bitwise evaluator.

    The returned callable takes ``n_inputs`` integer bit vectors followed by
    a ``mask`` keyword-only-by-position final argument and returns the output
    bit vector (already masked).
    """
    if n_inputs == 0:
        const = -1 if tt & 1 else 0
        return lambda mask: const & mask
    size = 1 << n_inputs
    if tt >= (1 << size) or tt < 0:
        raise ValueError(f"truth table 0x{tt:x} out of range for {n_inputs} inputs")
    minterms = [m for m in range(size) if (tt >> m) & 1]
    use_complement = len(minterms) > size // 2
    terms = (
        [m for m in range(size) if not (tt >> m) & 1] if use_complement else minterms
    )
    args = [f"v{i}" for i in range(n_inputs)]

    def term_expr(m: int) -> str:
        lits = []
        for i in range(n_inputs):
            lits.append(args[i] if (m >> i) & 1 else f"~{args[i]}")
        return "(" + " & ".join(lits) + ")"

    if not terms:
        body = "0" if not use_complement else "mask"
    else:
        sop = " | ".join(term_expr(m) for m in terms)
        body = f"~({sop}) & mask" if use_complement else f"({sop}) & mask"
    src = f"lambda {', '.join(args)}, mask: {body}"
    return eval(src)  # noqa: S307 - source is generated from integers only


def simulate(
    circuit: Circuit,
    cells: Mapping[str, CellDef],
    pi_values: Mapping[str, int],
    mask: int,
) -> Dict[str, int]:
    """Simulate the circuit; return the value of every net.

    *pi_values* maps each primary input net to a bit vector; *mask* is the
    all-patterns-ones mask, ``(1 << n_patterns) - 1``.
    """
    values: Dict[str, int] = {CONST0: 0, CONST1: mask}
    for pi in circuit.inputs:
        try:
            values[pi] = pi_values[pi] & mask
        except KeyError:
            raise NetlistError(f"missing value for primary input {pi}") from None
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        cell = cells[gate.cell]
        fn = compile_cell_eval(len(cell.input_pins), cell.tt)
        ins = [values[gate.pins[p]] for p in cell.input_pins]
        values[gate.output] = fn(*ins, mask)
    return values


def simulate_patterns(
    circuit: Circuit,
    cells: Mapping[str, CellDef],
    patterns: Sequence[Mapping[str, int]],
) -> List[Dict[str, int]]:
    """Simulate scalar patterns; return one {net: 0/1} dict per pattern.

    Convenience wrapper that packs the patterns into bit vectors, runs one
    bit-parallel simulation, and unpacks the results.
    """
    n = len(patterns)
    if n == 0:
        return []
    mask = (1 << n) - 1
    packed: Dict[str, int] = {}
    for pi in circuit.inputs:
        word = 0
        for i, pat in enumerate(patterns):
            if pat[pi]:
                word |= 1 << i
        packed[pi] = word
    values = simulate(circuit, cells, packed, mask)
    out: List[Dict[str, int]] = []
    for i in range(n):
        out.append({net: (val >> i) & 1 for net, val in values.items()})
    return out


def outputs_of(
    circuit: Circuit, values: Mapping[str, int]
) -> List[int]:
    """Extract the PO bit vectors from a simulation result, in PO order."""
    return [values[po] for po in circuit.outputs]
