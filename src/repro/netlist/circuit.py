"""Gate-level circuit data model.

A :class:`Circuit` is a combinational network of single-output gates, each
an instance of a named standard cell.  The model deliberately knows nothing
about cell *functions* — those come from a cell provider (see
:class:`CellDef`), so the netlist layer has no dependency on the library
layer.

Two reserved net names, :data:`CONST0` and :data:`CONST1`, represent tie-low
and tie-high sources.  They are implicitly driven, carry no external faults,
and cost nothing in physical design.

The module also provides the two surgery primitives the paper's resynthesis
procedure is built on:

* :func:`extract_subcircuit` — pull the gates of ``C_sub`` (e.g. ``G_max``)
  out of ``C_all`` as a standalone circuit whose PIs/POs are the boundary
  nets shared with the rest of the design (Section III-B of the paper).
* :func:`replace_subcircuit` — stitch a resynthesized replacement back into
  the full design by boundary-net name.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Set, Tuple

CONST0 = "CONST0"
CONST1 = "CONST1"
_CONSTS = frozenset((CONST0, CONST1))


class NetlistError(Exception):
    """Raised on structurally invalid netlist operations.

    Parsers and loaders attach machine-matchable context where they can:
    ``code`` is a :mod:`repro.netlist.validate` diagnostic code (e.g.
    ``multi-driven-net``, ``undriven-net``, ``syntax``), ``path`` and
    ``line`` locate the offending source.  Errors raised directly by
    :class:`Circuit` mutation methods carry no context (``code`` is
    ``None``); the parsing layer wraps them.
    """

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        path: Optional[str] = None,
        line: Optional[int] = None,
    ):
        super().__init__(message)
        self.code = code
        self.path = path
        self.line = line

    def diagnostic(self) -> object:
        """This error as a :class:`repro.netlist.validate.Diagnostic`."""
        from repro.netlist.validate import ERROR, Diagnostic

        return Diagnostic(
            code=self.code or "syntax", severity=ERROR,
            message=str(self), path=self.path, line=self.line,
        )


class CellDef(Protocol):
    """What the netlist layer needs to know about a standard cell.

    Provided by :class:`repro.library.cell.StandardCell`; any object with
    these attributes works.
    """

    name: str
    input_pins: Tuple[str, ...]
    output_pin: str
    tt: int  # truth table: bit m = output for input minterm m


class Gate:
    """A single-output standard-cell instance.

    ``pins`` maps input pin names to net names; ``output`` is the net driven
    by the cell's (single) output pin.
    """

    __slots__ = ("name", "cell", "pins", "output")

    def __init__(self, name: str, cell: str, pins: Dict[str, str], output: str):
        self.name = name
        self.cell = cell
        self.pins = dict(pins)
        self.output = output

    def input_nets(self) -> Tuple[str, ...]:
        """Nets connected to input pins, in pin-dict order."""
        return tuple(self.pins.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pins = " ".join(f"{p}={n}" for p, n in self.pins.items())
        return f"Gate({self.name} {self.cell} {pins} > {self.output})"


class Circuit:
    """A combinational gate-level netlist.

    Invariants (checked by :meth:`validate`):

    * every gate input net is a PI, a constant, or driven by exactly one gate;
    * every PO net is a PI or driven by a gate;
    * the gate graph is acyclic.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        # net -> gate name driving it (PIs/consts are absent).
        self._driver: Dict[str, str] = {}
        # net -> set of (gate name, input pin) loads.
        self._loads: Dict[str, Set[Tuple[str, str]]] = {}
        self._topo: Optional[List[str]] = None
        self._uid = 0
        self._reserved: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare *name* as a primary input net."""
        if name in _CONSTS:
            raise NetlistError(f"{name} is reserved")
        if name in self.inputs:
            raise NetlistError(f"duplicate input {name}")
        if name in self._driver:
            raise NetlistError(f"input {name} is already driven by a gate")
        self.inputs.append(name)
        return name

    def add_gate(
        self, name: str, cell: str, pins: Dict[str, str], output: str
    ) -> Gate:
        """Instantiate cell *cell* as gate *name* driving net *output*."""
        if name in self.gates:
            raise NetlistError(f"duplicate gate {name}")
        if output in _CONSTS:
            raise NetlistError("cannot drive a constant net")
        if output in self._driver:
            raise NetlistError(f"net {output} already driven by {self._driver[output]}")
        if output in self.inputs:
            raise NetlistError(f"net {output} is a primary input")
        gate = Gate(name, cell, pins, output)
        self.gates[name] = gate
        self._driver[output] = name
        for pin, net in gate.pins.items():
            self._loads.setdefault(net, set()).add((name, pin))
        self._topo = None
        return gate

    def remove_gate(self, name: str) -> Gate:
        """Remove gate *name*; its output net becomes undriven."""
        gate = self.gates.pop(name)
        del self._driver[gate.output]
        for pin, net in gate.pins.items():
            self._loads[net].discard((name, pin))
            if not self._loads[net]:
                del self._loads[net]
        self._topo = None
        return gate

    def set_outputs(self, names: Sequence[str]) -> None:
        """Declare the ordered list of primary output nets."""
        seen = set()
        for n in names:
            if n in seen:
                raise NetlistError(f"duplicate output {n}")
            seen.add(n)
        self.outputs = list(names)

    def reserve_net_names(self, names: Iterable[str]) -> None:
        """Prevent :meth:`fresh_net` from generating any of *names*.

        Used when net names from another circuit (e.g. boundary nets of a
        host design) will be introduced later: fresh internal names must
        never collide with them.
        """
        self._reserved.update(names)

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a net name not used anywhere in the circuit."""
        while True:
            self._uid += 1
            name = f"{prefix}_{self._uid}"
            if (name not in self._driver and name not in self.inputs
                    and name not in self._loads
                    and name not in self._reserved):
                return name

    def fresh_gate(self, prefix: str = "g") -> str:
        """Return a gate name not used in the circuit."""
        while True:
            self._uid += 1
            name = f"{prefix}_{self._uid}"
            if name not in self.gates:
                return name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def driver(self, net: str) -> Optional[str]:
        """Gate name driving *net*, or None for PIs/constants/floating."""
        return self._driver.get(net)

    def loads(self, net: str) -> Set[Tuple[str, str]]:
        """Set of (gate, pin) pairs loading *net*."""
        return set(self._loads.get(net, ()))

    def nets(self) -> Set[str]:
        """All net names appearing in the circuit (excluding constants)."""
        out: Set[str] = set(self.inputs)
        out.update(self.outputs)
        out.update(self._driver)
        out.update(n for n in self._loads if n not in _CONSTS)
        return out

    def internal_nets(self) -> Set[str]:
        """Nets driven by gates, excluding primary outputs."""
        return set(self._driver) - set(self.outputs)

    def gate_fanin_gates(self, gate: str) -> Set[str]:
        """Gates directly driving *gate*'s input nets."""
        g = self.gates[gate]
        out = set()
        for net in g.pins.values():
            drv = self._driver.get(net)
            if drv is not None:
                out.add(drv)
        return out

    def gate_fanout_gates(self, gate: str) -> Set[str]:
        """Gates directly driven by *gate*'s output net."""
        g = self.gates[gate]
        return {gname for gname, _pin in self._loads.get(g.output, ())}

    def topo_order(self) -> List[str]:
        """Gate names in topological (fanin-before-fanout) order."""
        if self._topo is not None:
            return self._topo
        indeg: Dict[str, int] = {}
        for name, gate in self.gates.items():
            deg = 0
            for net in gate.pins.values():
                if net in self._driver:
                    deg += 1
            indeg[name] = deg
        ready = sorted(name for name, d in indeg.items() if d == 0)
        order: List[str] = []
        queue = list(ready)
        while queue:
            name = queue.pop()
            order.append(name)
            gate = self.gates[name]
            for gname, _pin in sorted(self._loads.get(gate.output, ())):
                indeg[gname] -= 1
                if indeg[gname] == 0:
                    queue.append(gname)
        if len(order) != len(self.gates):
            raise NetlistError("combinational cycle detected")
        self._topo = order
        return order

    def topology_token(self) -> object:
        """Identity token that changes whenever the gate graph mutates.

        Simulation plans (:class:`repro.netlist.simulator.CompiledCircuit`)
        hold the token they were built against and compare it by identity:
        any :meth:`add_gate` / :meth:`remove_gate` resets the cached topo
        order, so a stale plan can be detected in O(1).
        """
        return self.topo_order()

    def levelize(self) -> Dict[str, int]:
        """Map each gate to its logic level (PIs/constants are level 0)."""
        level: Dict[str, int] = {}
        for name in self.topo_order():
            gate = self.gates[name]
            lvl = 0
            for net in gate.pins.values():
                drv = self._driver.get(net)
                if drv is not None:
                    lvl = max(lvl, level[drv] + 1)
                else:
                    lvl = max(lvl, 1)
            level[name] = lvl
        return level

    def fanout_cone(self, net: str) -> Set[str]:
        """All gates transitively reachable from *net* (inclusive of loads)."""
        cone: Set[str] = set()
        frontier = [gname for gname, _pin in self._loads.get(net, ())]
        while frontier:
            gname = frontier.pop()
            if gname in cone:
                continue
            cone.add(gname)
            out_net = self.gates[gname].output
            frontier.extend(g for g, _p in self._loads.get(out_net, ()))
        return cone

    def fanin_cone(self, net: str) -> Set[str]:
        """All gates transitively feeding *net* (inclusive of its driver)."""
        cone: Set[str] = set()
        frontier = []
        drv = self._driver.get(net)
        if drv is not None:
            frontier.append(drv)
        while frontier:
            gname = frontier.pop()
            if gname in cone:
                continue
            cone.add(gname)
            for in_net in self.gates[gname].pins.values():
                d = self._driver.get(in_net)
                if d is not None:
                    frontier.append(d)
        return cone

    def cell_histogram(self) -> Dict[str, int]:
        """Count of gate instances per cell type."""
        hist: Dict[str, int] = {}
        for gate in self.gates.values():
            hist[gate.cell] = hist.get(gate.cell, 0) + 1
        return hist

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates.values())

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` if any structural invariant fails."""
        for name, gate in self.gates.items():
            for pin, net in gate.pins.items():
                if net in _CONSTS or net in self.inputs:
                    continue
                if net not in self._driver:
                    raise NetlistError(f"gate {name} pin {pin}: net {net} undriven")
        for net in self.outputs:
            if net not in self._driver and net not in self.inputs:
                raise NetlistError(f"output net {net} undriven")
        self.topo_order()  # raises on cycles

    @classmethod
    def from_file(
        cls,
        path: str,
        fmt: Optional[str] = None,
        cells: Optional[Dict[str, "CellDef"]] = None,
    ) -> "Circuit":
        """Load a circuit from any supported netlist format.

        Dispatches on *fmt* (``netlist`` / ``bench`` / ``verilog``), or
        on the file extension when *fmt* is ``None``.  Foreign formats
        are technology-mapped onto standard cells during loading; pass
        *cells* to restrict the mapping to a library variant and enable
        cell-aware linting.  Strict: raises :class:`NetlistError` (with
        ``code``/``path``/``line`` context) on any defect.
        """
        from repro.netlist.ingest import load_file

        return load_file(path, fmt=fmt, cells=cells)

    def clone(self, name: Optional[str] = None) -> "Circuit":
        """Return a deep structural copy of the circuit."""
        c = Circuit(name or self.name)
        for pi in self.inputs:
            c.add_input(pi)
        for gname in self.topo_order():
            gate = self.gates[gname]
            c.add_gate(gname, gate.cell, gate.pins, gate.output)
        c.set_outputs(self.outputs)
        c._uid = self._uid
        c._reserved = set(self._reserved)
        return c


def extract_subcircuit(
    circuit: Circuit, gate_names: Iterable[str], name: str = "sub"
) -> Circuit:
    """Extract the gates *gate_names* of *circuit* as a standalone circuit.

    The subcircuit's PIs are the nets feeding the selected gates from
    outside the selection (circuit PIs included; constants stay constant),
    and its POs are output nets of selected gates that either feed a gate
    outside the selection or are primary outputs of *circuit*.  Boundary net
    names are preserved so the result can be resynthesized and stitched back
    with :func:`replace_subcircuit`.
    """
    selected = set(gate_names)
    missing = selected - set(circuit.gates)
    if missing:
        raise NetlistError(f"unknown gates: {sorted(missing)[:5]}")
    sub = Circuit(name)
    pi_order: List[str] = []
    pi_seen: Set[str] = set()
    po: List[str] = []
    order = [g for g in circuit.topo_order() if g in selected]
    for gname in order:
        gate = circuit.gates[gname]
        for net in gate.pins.values():
            if net in _CONSTS or net in pi_seen:
                continue
            drv = circuit.driver(net)
            if drv is None or drv not in selected:
                pi_seen.add(net)
                pi_order.append(net)
    for net in pi_order:
        sub.add_input(net)
    for gname in order:
        gate = circuit.gates[gname]
        sub.add_gate(gname, gate.cell, gate.pins, gate.output)
        out = gate.output
        external_load = any(
            g not in selected for g, _pin in circuit.loads(out)
        )
        if external_load or out in circuit.outputs:
            po.append(out)
    sub.set_outputs(po)
    return sub


def replace_subcircuit(
    circuit: Circuit, gate_names: Iterable[str], replacement: Circuit
) -> Circuit:
    """Return a new circuit with *gate_names* replaced by *replacement*.

    *replacement* must drive, by name, every boundary output net that the
    removed gates drove toward the rest of the design, and may only use the
    boundary input nets (plus constants) as its PIs.  Internal nets and gate
    names of the replacement are freshened to avoid collisions.
    """
    selected = set(gate_names)
    result = circuit.clone()
    boundary_out: Set[str] = set()
    for gname in selected:
        gate = circuit.gates[gname]
        out = gate.output
        if out in circuit.outputs or any(
            g not in selected for g, _pin in circuit.loads(out)
        ):
            boundary_out.add(out)
    missing = boundary_out - set(replacement.outputs)
    if missing:
        raise NetlistError(
            f"replacement does not drive boundary nets: {sorted(missing)[:5]}"
        )
    for gname in selected:
        result.remove_gate(gname)
    available = set(result.inputs) | set(result._driver) | _CONSTS
    bad_pi = [n for n in replacement.inputs if n not in available]
    if bad_pi:
        raise NetlistError(f"replacement inputs not present in host: {bad_pi[:5]}")

    # Map replacement-internal nets/gates onto fresh host names.  Boundary
    # nets (replacement PIs and POs) keep their names.
    keep = set(replacement.inputs) | set(replacement.outputs) | _CONSTS
    net_map: Dict[str, str] = {}

    def host_net(net: str) -> str:
        if net in keep:
            return net
        if net not in net_map:
            net_map[net] = result.fresh_net("rs")
        return net_map[net]

    for gname in replacement.topo_order():
        gate = replacement.gates[gname]
        pins = {pin: host_net(net) for pin, net in gate.pins.items()}
        result.add_gate(result.fresh_gate("rs"), gate.cell, pins, host_net(gate.output))
    result.validate()
    return result
