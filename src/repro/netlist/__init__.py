"""Gate-level netlist substrate.

Defines the :class:`~repro.netlist.circuit.Circuit` data model used by every
other subsystem, a bit-parallel logic simulator, subcircuit extraction and
replacement (the surgery primitives used by the resynthesis procedure), and
a human-readable structural netlist format.
"""

from repro.netlist.circuit import (
    CONST0,
    CONST1,
    CellDef,
    Circuit,
    Gate,
    NetlistError,
    extract_subcircuit,
    replace_subcircuit,
)
from repro.netlist.simulator import (
    CompiledCircuit,
    clear_compiled_cache,
    compile_cell_eval,
    set_cache_integrity,
    simulate,
    simulate_patterns,
)
from repro.netlist.vsim import (
    BACKEND_EVENT,
    BACKEND_WIDE,
    batch_capacity,
    resolve_backend,
    resolve_words,
    simulate_wide,
)
from repro.netlist.io import parse_file, parse_netlist, write_netlist
from repro.netlist.validate import (
    Diagnostic,
    ValidationReport,
    lint_circuit,
    lint_netlist_text,
)

__all__ = [
    "CompiledCircuit",
    "clear_compiled_cache",
    "CONST0",
    "CONST1",
    "CellDef",
    "Circuit",
    "Gate",
    "NetlistError",
    "extract_subcircuit",
    "replace_subcircuit",
    "compile_cell_eval",
    "set_cache_integrity",
    "simulate",
    "simulate_patterns",
    "BACKEND_EVENT",
    "BACKEND_WIDE",
    "batch_capacity",
    "resolve_backend",
    "resolve_words",
    "simulate_wide",
    "parse_file",
    "parse_netlist",
    "write_netlist",
    "Diagnostic",
    "ValidationReport",
    "lint_circuit",
    "lint_netlist_text",
]
