"""Wide-batch vectorized fault simulation (numpy backend).

The counterpart of :mod:`repro.faults.fsim` for the wide simulation
backend: the same four fault models, the same detection semantics, and
bit-identical detect words — but pattern batches are ``64 * W`` pairs
wide (net values are ``numpy uint64`` arrays of *W* words, see
:mod:`repro.netlist.vsim`) instead of one machine word.

Fault propagation stays cone-scoped: each fault site's forward cone
(gates in topological order plus the reachable POs) is memoized on the
compiled plan, and propagation evaluates exactly those gates densely
with vectorized bitwise ops on whole word arrays.  There is no
event-driven change tracking — for thousands of patterns per pass
virtually every cone gate carries a difference somewhere in the batch,
so the per-gate bookkeeping the event backend uses to skip work would
cost more than the work itself.  Detection is one popcount-style
reduction per fault: XOR the cone's PO rows against the good machine,
OR the words together with the activation mask, and collapse the word
array into a single Python-int detect word whose bit *i* means pair *i*
detects the fault.

Equivalence with the event backend is structural: both backends share
``CompiledCircuit``'s topological order, pin indices, truth tables and
compiled evaluators (numpy applies the same ``&``/``|``/``~`` bodies
elementwise), and the differential suite in
``tests/test_vfsim_differential.py`` locks the bit-identity in on every
bundled benchmark circuit.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.library.cell import StandardCell
from repro.library.defects import CellDefect
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import CompiledCircuit
from repro.netlist.vsim import (
    WORD_BITS,
    unpack_word,
    wide_good_values,
    wide_mask,
    words_for,
)
from repro.utils.observability import EngineStats

# Per-plan dense-propagation cones, prepared for the hot loop: net index
# -> (list of (evaluator, output index) pairs in topo order, fancy-index
# array of the cone's output rows for one-shot restore, fancy-index
# array of observable PO rows).  Weakly keyed so dropped plans free
# their cones.
_ConeEntry = Tuple[
    List[Tuple[Callable, int]], np.ndarray, np.ndarray
]
_PLAN_CONES: "weakref.WeakKeyDictionary[CompiledCircuit, Dict[int, _ConeEntry]]" = (
    weakref.WeakKeyDictionary()
)


def _cone_entry(plan: CompiledCircuit, root: int) -> _ConeEntry:
    cones = _PLAN_CONES.get(plan)
    if cones is None:
        cones = {}
        _PLAN_CONES[plan] = cones
    entry = cones.get(root)
    if entry is None:
        gates, pos = plan.cone_gates(root)
        pairs = [(plan.gate_eval[gi], plan.gate_out[gi]) for gi in gates]
        outs = np.fromiter(
            (plan.gate_out[gi] for gi in gates), dtype=np.intp,
            count=len(gates),
        )
        entry = (pairs, outs, np.asarray(pos, dtype=np.intp))
        cones[root] = entry
    return entry


class _WideContext:
    """One wide batch's good-machine arrays over a shared compiled plan.

    ``good1`` / ``good2`` are ``(n_nets, words)`` uint64 arrays indexed
    by the plan's dense net indices; ``scratch`` is a working copy of
    ``good2`` that dense propagation writes faulty rows into and
    restores afterwards.
    """

    __slots__ = (
        "plan", "mask", "words", "good1", "good2", "scratch", "vector_ops",
    )

    def __init__(
        self,
        plan: CompiledCircuit,
        mask: np.ndarray,
        words: int,
        good1: np.ndarray,
        good2: np.ndarray,
    ):
        self.plan = plan
        self.mask = mask
        self.words = words
        self.good1 = good1
        self.good2 = good2
        self.scratch = good2.copy()
        self.vector_ops = 0

    def propagate(
        self, root: int, seeded: np.ndarray, activation: np.ndarray
    ) -> int:
        """Dense cone propagation; returns the fault's detect word.

        *seeded* is the faulty value forced onto net *root* (the fault
        site stays forced — its driver is never re-evaluated, which a
        DAG guarantees structurally since a net's driver is not in its
        own forward cone); *activation* masks the patterns for which
        the fault is active at its site.
        """
        if not activation.any():
            return 0
        good = self.good2
        values = self.scratch
        mask = self.mask
        seeded = seeded & mask
        if np.array_equal(seeded, good[root]):
            # The forced value never differs at the site (e.g. a branch
            # gate whose output absorbs the forced input): no effect.
            return 0
        pairs, outs, pos = _cone_entry(self.plan, root)
        values[root] = seeded
        for fn, out in pairs:
            values[out] = fn(values, mask)
        self.vector_ops += len(pairs) + 1
        detect = np.zeros(self.words, dtype=np.uint64)
        if len(pos):
            np.bitwise_or.reduce(
                values[pos] ^ good[pos], axis=0, out=detect
            )
        values[root] = good[root]
        if len(outs):
            values[outs] = good[outs]
        detect &= activation
        return unpack_word(detect)


def _branch_site_wide(
    ctx: _WideContext,
    net: str,
    branch: Optional[Tuple[str, str]],
    forced: np.ndarray,
) -> Tuple[int, Optional[np.ndarray], bool]:
    """Fault site and seeded faulty value for a stem or branch fault.

    Mirrors :func:`repro.faults.fsim._branch_overrides`: a branch fault
    forces the value on one gate input only, so the seeded net is that
    gate's output, recomputed with the forced input word array.
    Returns ``(root net index, seeded value, ok)`` — *ok* is False when
    the branch no longer exists (stale fault after resynthesis).
    """
    plan = ctx.plan
    if branch is None:
        return plan.net_index[net], forced, True
    gname, pin = branch
    gate = plan.circuit.gates.get(gname)
    if gate is None or gate.pins.get(pin) != net:
        return 0, None, False
    gi = plan.gate_index[gname]
    cell = plan.cells[gate.cell]
    fn = plan.gate_fn[gi]
    ins = []
    for p, idx in zip(cell.input_pins, plan.gate_in[gi]):
        if p == pin:
            ins.append(forced)
        else:
            ins.append(ctx.good2[idx])
    ctx.vector_ops += 1
    return plan.gate_out[gi], fn(*ins, ctx.mask), True


def _cell_faulty_words(
    defect: CellDefect,
    input_rows: Sequence[np.ndarray],
    good_out: np.ndarray,
    mask: np.ndarray,
    frame1_rows: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Frame-2 faulty output rows of a defective cell instance.

    Word-array mirror of :func:`repro.faults.fsim._cell_faulty_word`,
    including the dynamic-retention and no-credit-for-unknown rules.
    """
    n = len(input_rows)

    def match(rows: Sequence[np.ndarray], m: int) -> np.ndarray:
        w = mask.copy()
        for i in range(n):
            w &= rows[i] if (m >> i) & 1 else ~rows[i]
        return w

    out = np.zeros_like(mask)
    retained = valid1 = None
    if frame1_rows is not None and defect.floating:
        retained = np.zeros_like(mask)
        valid1 = np.zeros_like(mask)
        for m, fval in enumerate(defect.faulty):
            if fval is None:
                continue
            m1 = match(frame1_rows, m)
            valid1 |= m1
            if fval:
                retained |= m1
    for m, fval in enumerate(defect.faulty):
        w = match(input_rows, m)
        if not w.any():
            continue
        if fval is not None:
            if fval:
                out |= w
        elif m in defect.floating and frame1_rows is not None:
            # Retain the frame-1 driven faulty value; undriven frame-1
            # initialization gives no detection credit (follow good).
            out |= w & valid1 & retained
            out |= w & ~valid1 & good_out
        else:
            out |= w & good_out  # unknown response: no credit
    return out & mask


def _simulate_one_wide(ctx: _WideContext, fault: Fault) -> int:
    mask = ctx.mask
    plan = ctx.plan
    net_index = plan.net_index
    zeros = np.zeros_like(mask)
    if isinstance(fault, StuckAtFault):
        idx = net_index.get(fault.net)
        if idx is None:
            return 0
        forced = mask if fault.value else zeros
        root, seeded, ok = _branch_site_wide(
            ctx, fault.net, fault.branch, forced
        )
        if not ok:
            return 0
        activation = ctx.good2[idx] ^ forced
        return ctx.propagate(root, seeded, activation)
    if isinstance(fault, TransitionFault):
        idx = net_index.get(fault.net)
        if idx is None:
            return 0
        init = mask if fault.initial_value else zeros
        initialized = ~(ctx.good1[idx] ^ init) & mask
        if not initialized.any():
            return 0
        forced = mask if fault.stuck_value else zeros
        root, seeded, ok = _branch_site_wide(
            ctx, fault.net, fault.branch, forced
        )
        if not ok:
            return 0
        activation = (ctx.good2[idx] ^ forced) & initialized
        return ctx.propagate(root, seeded, activation)
    if isinstance(fault, BridgingFault):
        vi = net_index.get(fault.victim)
        ai = net_index.get(fault.aggressor)
        if vi is None or ai is None:
            return 0
        aggr = ctx.good2[ai]
        activation = ctx.good2[vi] ^ aggr
        return ctx.propagate(vi, aggr, activation)
    if isinstance(fault, CellAwareFault):
        gate = plan.circuit.gates.get(fault.gate)
        if gate is None:
            return 0
        gi = plan.gate_index[fault.gate]
        in_idx = plan.gate_in[gi]
        out_idx = plan.gate_out[gi]
        in2 = [ctx.good2[i] for i in in_idx]
        good_out = ctx.good2[out_idx]
        frame1 = None
        if fault.defect.floating:
            frame1 = [ctx.good1[i] for i in in_idx]
        faulty = _cell_faulty_words(
            fault.defect, in2, good_out, mask, frame1_rows=frame1,
        )
        activation = faulty ^ good_out
        return ctx.propagate(out_idx, faulty, activation)
    raise TypeError(type(fault).__name__)


def wide_batch_key(plan: CompiledCircuit, batch, words: int) -> tuple:
    """Good-value LRU key of one wide batch (backend-tagged, word-counted).

    Shared with the process-parallel layer (:mod:`repro.faults.psim`):
    the parent process keys its good-value lookup exactly like the
    serial wide path, so a process-parallel run and a serial run of the
    same batch hit the same cache entry.
    """
    return (
        "wide", words, batch.n,
        tuple(batch.frame1.get(pi, 0) for pi in plan.pi_order),
        tuple(batch.frame2.get(pi, 0) for pi in plan.pi_order),
    )


def wide_fault_simulate(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    batch,  # PatternBatch; untyped to avoid a circular import with fsim
    *,
    words: Optional[int] = None,
    stats: Optional[EngineStats] = None,
) -> List[int]:
    """Per-fault detect words over one wide batch (bit *i* = pair *i*).

    Same contract as :func:`repro.faults.fsim.fault_simulate` — bit *i*
    of word *f* is set iff pair *i* detects fault *f* — and bit-identical
    to it for the same batch.  *words* sizes the uint64 arrays; by
    default just enough words to hold ``batch.n`` patterns, so small
    batches (compaction chunks, inherited tests) stay cheap.

    The wide backend is single-threaded by design: vectorization over
    the pattern dimension replaces the event backend's fault-partitioned
    thread pool, so a ``workers`` knob would only add dispatch overhead.
    Counters land on *stats* in one atomic merge, mirroring the event
    path's discipline.
    """
    local = EngineStats()
    plan = CompiledCircuit.get(circuit, cells, stats=local)
    if words is None:
        words = words_for(batch.n)
    elif words * WORD_BITS < batch.n:
        raise ValueError(
            f"{words} word(s) hold {words * WORD_BITS} patterns, "
            f"but the batch has {batch.n}"
        )
    mask = wide_mask(batch.n, words)
    batch_key = wide_batch_key(plan, batch, words)
    good1, good2 = wide_good_values(
        plan, batch_key, (batch.frame1, batch.frame2), mask, words,
        stats=local,
    )
    ctx = _WideContext(plan, mask, words, good1, good2)
    results = [_simulate_one_wide(ctx, fault) for fault in faults]
    local.batches += 1
    local.wide_batches += 1
    local.words_per_batch = max(local.words_per_batch, words)
    local.faults_simulated += len(faults)
    local.vector_ops += ctx.vector_ops
    if stats is not None:
        stats.merge(local)
    return results
