"""Process-parallel fault sharding over shared-memory batch arrays.

``workers=N`` threading (:mod:`repro.faults.fsim`) is GIL-bound: outside
numpy segments, N threads simulate at roughly single-core speed.  This
module is the true multi-core layer — the fault universe of one batch is
LPT-partitioned (the same deterministic :func:`~repro.faults.fsim.
_partition_faults` shards the thread path uses) across ``multiprocessing``
worker processes, and the batch's good-value and pattern arrays are
placed in a ``multiprocessing.shared_memory`` block so every worker
attaches zero-copy instead of re-simulating the good machine or paying a
pickle of ``n_nets * words`` words per shard.

Execution model:

* the **parent** compiles the plan, simulates (or cache-serves) the
  good machine exactly as the serial path does, packs ``good1`` /
  ``good2`` / ``frame1`` / ``frame2`` into one CRC-checksummed shared
  block, and dispatches one pickled ``(indices, faults)`` shard per
  worker;
* each **worker** attaches the block by name, verifies the CRC (a
  corrupted block is *detected*, never silently simulated), rebuilds the
  backend context over zero-copy views, runs the same
  ``_simulate_one`` / ``_simulate_one_wide`` per-fault propagation the
  serial path runs, and returns ``(fault index, detect word)`` pairs
  plus an :class:`~repro.utils.observability.EngineStats` delta;
* the parent merges detect words by fault index and folds the worker
  deltas into one per-call stats instance — exactly the serial
  per-chunk merge discipline — so results and semantic counters are
  bit-identical to a serial run.

Nothing in a worker draws randomness: shard composition, merge order
and propagation are all index-deterministic, so worker count and shard
order can never change a detect word (the differential and property
suites lock this in).

Worker pools are cached per ``(circuit identity, topology, workers)``
and reused across the many batches one ATPG run issues; a topology
change (resynthesis) retires the stale pool.  On POSIX the pool forks,
so workers inherit the parent's compiled plan for free; on spawn-only
platforms the circuit is pickled once per pool.

Failure handling is explicit, never silent:

* *unavailable* process execution (no shared memory, unpicklable
  faults, pool creation failure) raises :class:`ProcessExecUnavailable`,
  which :func:`~repro.faults.fsim.fault_simulate` turns into a coded
  warning plus a thread/serial fallback;
* a **worker death** mid-shard (SIGKILL, OOM) shuts the broken pool
  down, unlinks the shared block, and raises :class:`WorkerCrashError`
  — a clear error the runner's per-task retry machinery can retry;
* a **corrupted shared block** (CRC mismatch on attach — the
  ``fsim.shm_block`` chaos seam injects exactly this) is repaired once
  by rebuilding the block from the parent's pristine arrays (counted on
  ``EngineStats.cache_integrity_failures`` with a degradation record);
  a second consecutive corruption raises :class:`SharedMemoryCorruption`;
* a **hung worker** (deadlock, pathological shard — the
  ``psim.shard_start`` chaos seam injects exactly this) is caught by the
  supervision layer (:mod:`repro.utils.supervise`) when
  ``REPRO_SUPERVISE_SHARD_TIMEOUT`` or a task deadline is active:
  workers bump a per-shard heartbeat slot appended after the block's
  CRC-covered payload, the parent polls futures with bounded waits, and
  a stale shard gets its pool killed and rebuilt with the lost shards
  re-run once (``MC-WORKER-HUNG`` / ``MC-SHARD-RETRY`` warnings,
  ``hung_workers`` / ``shard_retries`` counters) before a second hang
  raises :class:`~repro.utils.supervise.WorkerHungError`; repeated
  process-layer failures open a circuit breaker per
  ``(backend, topology)`` that rejects further attempts with
  ``MC-BREAKER-OPEN`` until a timed half-open probe succeeds.

Every shared segment is named ``repro_mc_*`` and unlinked in a
``finally`` block, so ``/dev/shm`` holds no orphans after a run — the CI
leak check greps for the prefix, and an :func:`atexit` emergency hook
additionally unlinks any block still live when the interpreter exits
abnormally mid-batch.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import weakref
import zlib
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import multiprocessing as mp

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - stdlib always has it on 3.8+
    shared_memory = None  # type: ignore[assignment]

import numpy as np

from repro.faults.model import Fault
from repro.library.cell import StandardCell
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import CompiledCircuit
from repro.netlist.vsim import (
    BACKEND_EVENT,
    BACKEND_WIDE,
    pack_word,
    unpack_word,
    wide_good_values,
    wide_mask,
    words_for,
)
from repro.utils import seams
from repro.utils.observability import EngineStats, warn_coded
from repro.utils.supervise import (
    CODE_BREAKER_OPEN,
    CODE_SHARD_RETRY,
    CODE_WORKER_HUNG,
    SuperviseConfig,
    WorkerHungError,
    active_core_share,
    breaker_for,
    resolve_supervision,
    supervise_futures,
)

SHM_PREFIX = "repro_mc_"

# Warning / error codes surfaced through EngineStats.warnings and error
# messages (see repro.utils.observability.warn_coded).
CODE_NO_SHM = "MC-FALLBACK-SHM"
CODE_UNPICKLABLE = "MC-FALLBACK-PICKLE"
CODE_NO_POOL = "MC-FALLBACK-POOL"
CODE_WORKER_CRASH = "MC-WORKER-CRASH"
CODE_SHM_CORRUPT = "MC-SHM-CORRUPT"
CODE_TRACKER_UNREG = "MC-TRACKER-UNREG"


class ProcessExecUnavailable(RuntimeError):
    """Process execution cannot run here; callers fall back with a warning."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class WorkerCrashError(RuntimeError):
    """A worker process died mid-shard (after cleanup of its resources)."""


class SharedMemoryCorruption(RuntimeError):
    """A shared good-value block failed its CRC verification."""


# ----------------------------------------------------------------------
# Shared-memory block: good1 | good2 | frame1 | frame2, uint64 rows
# ----------------------------------------------------------------------
_SHM_COUNTER = itertools.count()


def shm_supported() -> bool:
    """Probe (once) whether POSIX shared memory works in this environment.

    Only the failures that genuinely mean "no shared memory here" —
    ``OSError`` (``/dev/shm`` missing, read-only, or out of space) and
    ``ValueError`` (a platform rejecting the segment size) — count as an
    unsupported environment, and the reason is kept in
    :func:`shm_probe_error` so the eventual ``MC-FALLBACK-SHM`` warning
    says *why* process execution degraded.  Anything else (a typo-level
    ``TypeError``, a ``KeyboardInterrupt``) propagates: a probe bug must
    not silently demote every run to threads.
    """
    global _SHM_PROBE, _SHM_PROBE_ERROR
    if _SHM_PROBE is None:
        if shared_memory is None:
            _SHM_PROBE = False
            _SHM_PROBE_ERROR = "multiprocessing.shared_memory not importable"
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=8)
                probe.close()
                probe.unlink()
                _SHM_PROBE = True
            except (OSError, ValueError) as exc:
                _SHM_PROBE = False
                _SHM_PROBE_ERROR = f"{type(exc).__name__}: {exc}"
    return _SHM_PROBE


def shm_probe_error() -> Optional[str]:
    """Why :func:`shm_supported` returned False (None when it passed)."""
    return _SHM_PROBE_ERROR


_SHM_PROBE: Optional[bool] = None
_SHM_PROBE_ERROR: Optional[str] = None


class SharedBatchBlock:
    """One batch's arrays in a named shared segment, CRC-checksummed.

    Rows (all ``words`` uint64 wide, little-endian): ``n_nets`` rows of
    frame-1 good values, ``n_nets`` of frame-2 good values, then
    ``n_pis`` packed frame-1 and ``n_pis`` frame-2 pattern words.  The
    CRC is computed over the payload *after* writing and carried
    out-of-band in each shard task, so block rot cannot forge its own
    checksum.

    When *hb_slots* is non-zero, one uint64 **heartbeat** slot per shard
    is appended *after* the CRC-covered payload: workers bump their slot
    as they make progress and the parent's supervisor loop reads them
    via :meth:`heartbeats` to distinguish a slow shard from a hung one.
    The slots live outside the checksummed range on purpose — they
    mutate while shards run, and they are advisory-only (a torn or
    garbage beat can at worst delay hang detection by one poll, never
    corrupt a result).
    """

    def __init__(self, shm, rows: int, words: int, n_nets: int, crc: int,
                 hb_slots: int = 0):
        self.shm = shm
        self.rows = rows
        self.words = words
        self.n_nets = n_nets
        self.crc = crc
        self.hb_slots = hb_slots
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def nbytes(self) -> int:
        return self.rows * self.words * 8

    @classmethod
    def create(
        cls,
        good1: np.ndarray,
        good2: np.ndarray,
        frame1: np.ndarray,
        frame2: np.ndarray,
        hb_slots: int = 0,
    ) -> "SharedBatchBlock":
        n_nets, words = good1.shape
        rows = 2 * n_nets + 2 * len(frame1)
        nbytes = rows * words * 8
        shm = None
        try:
            for _ in range(8):
                name = f"{SHM_PREFIX}{os.getpid()}_{next(_SHM_COUNTER)}"
                try:
                    shm = shared_memory.SharedMemory(
                        create=True, size=nbytes + 8 * hb_slots, name=name
                    )
                    break
                except FileExistsError:
                    continue
            if shm is None:
                raise ProcessExecUnavailable(
                    CODE_NO_SHM, "could not allocate a unique shared segment"
                )
        except ProcessExecUnavailable:
            raise
        except Exception as exc:
            raise ProcessExecUnavailable(
                CODE_NO_SHM, f"shared memory unavailable: {exc}"
            ) from exc
        view = np.ndarray((rows, words), dtype=np.uint64, buffer=shm.buf)
        view[:n_nets] = good1
        view[n_nets:2 * n_nets] = good2
        view[2 * n_nets:2 * n_nets + len(frame1)] = frame1
        view[2 * n_nets + len(frame1):] = frame2
        if hb_slots:
            hb = np.ndarray(
                (hb_slots,), dtype=np.uint64, buffer=shm.buf, offset=nbytes
            )
            hb[:] = 0
        crc = zlib.crc32(shm.buf[:nbytes])
        block = cls(shm, rows, words, n_nets, crc, hb_slots)
        _LIVE_SEGMENTS.add(block)
        if seams.active:
            # Chaos seam: a harness may corrupt the block *after* the
            # checksum is recorded, modelling rot between the parent's
            # write and a worker's read; the worker-side CRC check must
            # catch it.
            seams.fire("fsim.shm_block", block=block, view=view)
        return block

    def heartbeats(self) -> Dict[int, int]:
        """Current per-shard heartbeat values (supervisor-side read)."""
        if not self.hb_slots or self._unlinked:
            return {}
        hb = np.ndarray(
            (self.hb_slots,), dtype=np.uint64, buffer=self.shm.buf,
            offset=self.nbytes,
        )
        return {i: int(hb[i]) for i in range(self.hb_slots)}

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


def _attach(name: str, stats: Optional[EngineStats] = None):
    """Worker-side attach that leaves unlinking to the parent.

    Attaching registers the segment with a resource tracker.  Under the
    fork start method the workers share the *parent's* tracker process,
    where the duplicate registration is a no-op and must be left alone
    (unregistering would clobber the parent's own bookkeeping).  Under
    spawn each worker runs its own tracker, which would unlink — and
    warn about — a segment the parent still owns when the worker exits,
    so there the registration is withdrawn.

    A failed withdrawal is survivable (the segment just gets a spurious
    tracker unlink attempt at worker exit) but never silent: it lands as
    a coded ``MC-TRACKER-UNREG`` warning on *stats*, which the parent
    merges into the batch's stats like any other worker delta.
    """
    shm = shared_memory.SharedMemory(name=name)
    if not _WORKER_STATE.get("shared_tracker", True):
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except (ImportError, AttributeError, KeyError, ValueError,
                OSError) as exc:
            warn_coded(
                stats, CODE_TRACKER_UNREG,
                f"could not withdraw segment {name} from this worker's "
                f"resource tracker ({type(exc).__name__}: {exc}); the "
                f"tracker may log a spurious unlink at worker exit",
            )
    return shm


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    shared_tracker: bool,
) -> None:
    _WORKER_STATE["circuit"] = circuit
    _WORKER_STATE["cells"] = cells
    _WORKER_STATE["plan"] = None
    _WORKER_STATE["shared_tracker"] = shared_tracker


def _worker_plan() -> CompiledCircuit:
    """The worker's compiled plan, without touching cross-thread locks.

    A forked worker usually inherits the parent's plan via the module
    plan cache; it is read directly (the child is single-threaded, so
    the lock the parent uses to guard concurrent mutation is both
    unnecessary and — having been forked in an unknown state — unsafe
    to acquire).  A miss (spawn start method, or a plan the parent
    never built) compiles locally and caches per worker.
    """
    plan = _WORKER_STATE.get("plan")
    circuit = _WORKER_STATE["circuit"]
    cells = _WORKER_STATE["cells"]
    if plan is not None and plan.valid_for(circuit, cells):
        return plan
    from repro.netlist.simulator import _PLAN_CACHE

    plan = _PLAN_CACHE.get(circuit)
    if plan is None or not plan.valid_for(circuit, cells):
        plan = CompiledCircuit(circuit, cells)
    _WORKER_STATE["plan"] = plan
    return plan


def _run_shard(blob: bytes) -> Tuple[List[Tuple[int, int]], EngineStats]:
    """Simulate one shard against the shared block; returns (pairs, delta)."""
    task = pickle.loads(blob)
    if seams.active:
        # Robustness-test seam (fires in the worker): a handler may
        # SIGKILL this process to model a mid-shard worker death.
        seams.fire(
            "psim.shard", indices=task["indices"], pid=os.getpid()
        )
    plan = _worker_plan()
    stats = EngineStats()
    shm = _attach(task["name"], stats)
    try:
        nbytes = task["rows"] * task["words"] * 8
        if zlib.crc32(shm.buf[:nbytes]) != task["crc"]:
            raise SharedMemoryCorruption(
                f"{CODE_SHM_CORRUPT}: shared block {task['name']} failed "
                f"CRC verification on attach"
            )
        shard = task.get("shard", 0)
        hb = None
        if task.get("hb_slots"):
            # The heartbeat slots sit after the CRC-covered payload; a
            # bump per fault is the liveness signal the parent-side
            # supervisor watches (any change counts — wraparound and
            # torn reads are harmless because the beats are advisory).
            hb = np.ndarray(
                (task["hb_slots"],), dtype=np.uint64, buffer=shm.buf,
                offset=nbytes,
            )
            hb[shard] += 1
        if seams.active:
            # Chaos seam for the supervision layer: handlers hang or
            # slow this shard (and may scribble on the heartbeat row)
            # to exercise stall detection, pool rebuild, and retry.
            seams.fire(
                "psim.shard_start",
                shard=shard,
                indices=task["indices"],
                pid=os.getpid(),
                heartbeats=hb,
            )
        view = np.ndarray(
            (task["rows"], task["words"]), dtype=np.uint64, buffer=shm.buf
        )
        view.flags.writeable = False
        n_nets = task["n_nets"]
        g1 = view[:n_nets]
        g2 = view[n_nets:2 * n_nets]
        out = []
        if task["backend"] == BACKEND_WIDE:
            from repro.faults.vfsim import _simulate_one_wide, _WideContext

            mask = wide_mask(task["n"], task["words"])
            ctx = _WideContext(plan, mask, task["words"], g1, g2)
            for i, fault in zip(task["indices"], task["faults"]):
                out.append((i, _simulate_one_wide(ctx, fault)))
                if hb is not None:
                    hb[shard] += 1
            stats.vector_ops += ctx.vector_ops
        else:
            from repro.faults.fsim import _simulate_one, _SimContext

            good1 = [unpack_word(row) for row in g1]
            good2 = [unpack_word(row) for row in g2]
            mask = (1 << task["n"]) - 1
            ctx = _SimContext(plan, mask, good1, good2)
            for i, fault in zip(task["indices"], task["faults"]):
                out.append((i, _simulate_one(ctx, fault)))
                if hb is not None:
                    hb[shard] += 1
            stats.events_propagated += ctx.events
        return out, stats
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Pool cache: one pool per (circuit identity, topology, workers)
# ----------------------------------------------------------------------
_POOLS: "OrderedDict[Tuple[int, int], Tuple[ProcessPoolExecutor, object, object, object]]" = (
    OrderedDict()
)
_MAX_POOLS = 2


def _make_pool(
    circuit: Circuit, cells: Mapping[str, StandardCell], workers: int
) -> ProcessPoolExecutor:
    methods = mp.get_all_start_methods()
    method = "fork" if "fork" in methods else None
    try:
        ctx = mp.get_context(method)
    except ValueError as exc:  # pragma: no cover - method list just probed
        raise ProcessExecUnavailable(
            CODE_NO_POOL, f"no usable start method: {exc}"
        ) from exc
    if method != "fork":
        # Spawned workers pickle the initargs; surface an unpicklable
        # circuit here as a typed condition instead of a broken pool.
        try:
            pickle.dumps((circuit, cells))
        except Exception as exc:
            raise ProcessExecUnavailable(
                CODE_UNPICKLABLE, f"circuit/cells not picklable: {exc}"
            ) from exc
    try:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(circuit, cells, method == "fork"),
        )
    except Exception as exc:
        raise ProcessExecUnavailable(
            CODE_NO_POOL, f"could not start a process pool: {exc}"
        ) from exc


def _pool_for(
    circuit: Circuit, cells: Mapping[str, StandardCell], workers: int
) -> ProcessPoolExecutor:
    key = (id(circuit), workers)
    entry = _POOLS.get(key)
    if entry is not None:
        pool, held_circuit, token, held_cells = entry
        if (
            held_circuit is circuit
            and held_cells is cells
            and token is circuit.topology_token()
        ):
            _POOLS.move_to_end(key)
            return pool
        # Stale pool (the circuit mutated): its forked workers hold an
        # outdated copy of the netlist.  Retire it.
        del _POOLS[key]
        pool.shutdown(wait=False, cancel_futures=True)
    pool = _make_pool(circuit, cells, workers)
    _POOLS[key] = (pool, circuit, circuit.topology_token(), cells)
    while len(_POOLS) > _MAX_POOLS:
        _, (old, *_rest) = _POOLS.popitem(last=False)
        old.shutdown(wait=False, cancel_futures=True)
    return pool


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    for key, entry in list(_POOLS.items()):
        if entry[0] is pool:
            del _POOLS[key]
    pool.shutdown(wait=False, cancel_futures=True)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly retire *pool*: SIGKILL its workers, then shut it down.

    The graceful ``shutdown`` used by :func:`_discard_pool` leaves a
    *hung* worker running (the executor only asks workers to exit once
    their current item finishes — which a hung item never does), so the
    supervisor must kill the worker processes directly before the
    executor's bookkeeping is torn down.
    """
    for key, entry in list(_POOLS.items()):
        if entry[0] is pool:
            del _POOLS[key]
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - worker already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut every cached worker pool down (test hook / atexit)."""
    while _POOLS:
        _, (pool, *_rest) = _POOLS.popitem(last=False)
        pool.shutdown(wait=False, cancel_futures=True)


# Every live shared segment owner (SharedBatchBlock, and the ATPG
# TestBoard via register_segment) — weak, so normal `close()` in the
# happy-path ``finally`` blocks remains the owner's job and collected
# blocks drop out on their own.
_LIVE_SEGMENTS: "weakref.WeakSet" = weakref.WeakSet()


def register_segment(owner) -> None:
    """Track *owner* (anything with an idempotent ``close()``) for
    emergency unlinking at interpreter exit."""
    _LIVE_SEGMENTS.add(owner)


def _emergency_cleanup() -> None:
    """atexit backstop: release pools and unlink still-live segments.

    The happy path closes every block in a ``finally`` and CI greps
    ``/dev/shm`` for leaks, but an abnormal exit mid-batch (unhandled
    exception in the driver thread, ``sys.exit`` from a signal handler)
    used to orphan the current block and leave pool workers running.
    ``close()`` is idempotent, so double-closing a block that already
    went through its ``finally`` is safe.
    """
    shutdown_pools()
    for owner in list(_LIVE_SEGMENTS):
        try:
            owner.close()
        except Exception:  # pragma: no cover - best-effort at exit
            pass


atexit.register(_emergency_cleanup)


# ----------------------------------------------------------------------
# Parent-side driver
# ----------------------------------------------------------------------
def _parent_arrays(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    batch,
    backend: str,
    stats: EngineStats,
) -> Tuple[CompiledCircuit, np.ndarray, np.ndarray, int]:
    """Plan plus (n_nets, words) good-value arrays for *batch*.

    The wide backend's arrays come straight from the shared
    backend-tagged good-value LRU; the event backend's Python-int
    vectors are packed into little-endian words (the worker unpacks
    them back, so event detect words stay arbitrary-precision exact).
    """
    words = words_for(batch.n)
    if backend == BACKEND_WIDE:
        from repro.faults.vfsim import wide_batch_key

        plan = CompiledCircuit.get(circuit, cells, stats=stats)
        mask = wide_mask(batch.n, words)
        key = wide_batch_key(plan, batch, words)
        good1, good2 = wide_good_values(
            plan, key, (batch.frame1, batch.frame2), mask, words,
            stats=stats,
        )
        return plan, good1, good2, words
    from repro.faults.fsim import _make_context

    ctx = _make_context(circuit, cells, batch, stats=stats)
    good1 = np.vstack([pack_word(v, words) for v in ctx.good1])
    good2 = np.vstack([pack_word(v, words) for v in ctx.good2])
    return ctx.plan, good1, good2, words


def process_fault_simulate(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    batch,  # PatternBatch; untyped to avoid a circular import with fsim
    *,
    workers: int,
    backend: str = BACKEND_EVENT,
    stats: Optional[EngineStats] = None,
) -> List[int]:
    """Per-fault detect words over one batch, sharded across processes.

    Same contract as :func:`repro.faults.fsim.fault_simulate` and
    bit-identical to its serial path for the same batch and backend.
    Raises :class:`ProcessExecUnavailable` when process execution cannot
    run here (callers fall back with a coded warning),
    :class:`WorkerCrashError` when a worker dies mid-shard, and
    :class:`SharedMemoryCorruption` when the shared block fails CRC
    verification twice in a row.
    """
    if not shm_supported():
        reason = shm_probe_error() or "unknown probe failure"
        raise ProcessExecUnavailable(
            CODE_NO_SHM,
            f"multiprocessing.shared_memory is not functional ({reason})",
        )
    from repro.faults.fsim import _fault_site_index, _partition_faults

    local = EngineStats()
    # Dispatch-time renegotiation against the campaign core ledger: a
    # task that started with 4 in-flight peers and now runs alone widens
    # to the full machine on this batch; a newly crowded ledger shrinks
    # it.  Unmanaged callers (no lease, no static share) keep *workers*.
    share = active_core_share()
    if share is not None:
        workers = max(1, min(workers, share))
        local.ledger_grants += 1
        local.ledger_workers = max(local.ledger_workers, workers)
    plan, good1, good2, words = _parent_arrays(
        circuit, cells, batch, backend, local
    )
    local.batches += 1
    if backend == BACKEND_WIDE:
        local.wide_batches += 1
        local.words_per_batch = max(local.words_per_batch, words)
    local.faults_simulated += len(faults)

    chunks = _partition_faults(plan, faults, workers)
    cone = plan.cone_sizes()
    costs = []
    for fault in faults:
        idx = _fault_site_index(plan, fault)
        costs.append(cone[idx] if idx is not None else 1)
    loads = [sum(costs[i] for i in chunk) for chunk in chunks]
    total = sum(loads)
    if total and chunks:
        local.shard_imbalance = max(
            local.shard_imbalance, max(loads) / (total / len(chunks))
        )

    frame1 = np.vstack(
        [pack_word(batch.frame1.get(pi, 0), words) for pi in plan.pi_order]
    ) if plan.pi_order else np.zeros((0, words), dtype=np.uint64)
    frame2 = np.vstack(
        [pack_word(batch.frame2.get(pi, 0), words) for pi in plan.pi_order]
    ) if plan.pi_order else np.zeros((0, words), dtype=np.uint64)

    sup = resolve_supervision()
    # The topology token is an identity-compared object; its id (plus
    # the circuit name for readability) is the hashable stand-in, so a
    # resynthesized circuit gets a fresh health score.
    bkey = ("fsim", backend, circuit.name, id(circuit.topology_token()))
    breaker = breaker_for(bkey, sup)
    if breaker is not None and not breaker.allow():
        if stats is not None:
            stats.breaker_state[str(bkey)] = breaker.state
        raise ProcessExecUnavailable(
            CODE_BREAKER_OPEN,
            f"process execution breaker is open for {bkey} after "
            f"{breaker.failures} consecutive process-layer failures; "
            f"next half-open probe in "
            f"{breaker.seconds_until_probe():.1f}s",
        )
    try:
        results = _dispatch_shards(
            circuit, cells, faults, batch, chunks, good1, good2,
            frame1, frame2, words, workers, backend, sup, local,
        )
    except (WorkerCrashError, SharedMemoryCorruption, WorkerHungError):
        # Only process-layer failures feed the breaker's health score:
        # an *unavailable* environment (no shm, unpicklable faults)
        # fails instantly and deterministically, so tripping the
        # breaker for it would add nothing.
        if breaker is not None:
            breaker.record_failure()
            if stats is not None:
                stats.breaker_state[str(bkey)] = breaker.state
        raise
    except BaseException:
        if breaker is not None:
            breaker.cancel_probe()
        raise
    if breaker is not None:
        breaker.record_success()
        local.breaker_state[str(bkey)] = breaker.state
    local.proc_shards += len(chunks)
    if stats is not None:
        stats.merge(local)
    return results


def _dispatch_shards(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    batch,
    chunks: Sequence[Sequence[int]],
    good1: np.ndarray,
    good2: np.ndarray,
    frame1: np.ndarray,
    frame2: np.ndarray,
    words: int,
    workers: int,
    backend: str,
    sup: SuperviseConfig,
    local: EngineStats,
) -> List[int]:
    """Submit *chunks*, supervise them, and assemble the detect words.

    Recovery loop: a CRC-corrupted block is rebuilt once from the
    parent's pristine arrays (every shard re-runs against the fresh
    block); a hung shard gets its pool killed and rebuilt, and only the
    *lost* shards (hung plus collaterally-killed in-flight siblings)
    are re-submitted once.  Shard outputs are staged per shard id and
    committed only after every shard has succeeded, so neither retry
    can merge a worker delta — or a detect word — twice.
    """
    pool = _pool_for(circuit, cells, workers)
    local.proc_workers = max(local.proc_workers, workers)
    shard_timeout = sup.effective_timeout()
    results: List[int] = [0] * len(faults)
    staged: Dict[int, Tuple[List[Tuple[int, int]], EngineStats]] = {}
    pending = list(range(len(chunks)))
    corruption_retried = False
    hang_retried = False
    while pending:
        block = SharedBatchBlock.create(
            good1, good2, frame1, frame2, hb_slots=len(chunks)
        )
        local.shm_bytes += block.nbytes
        try:
            futures: Dict[int, Future] = {}
            for s in pending:
                chunk = chunks[s]
                task = {
                    "name": block.name,
                    "rows": block.rows,
                    "words": words,
                    "n_nets": block.n_nets,
                    "crc": block.crc,
                    "n": batch.n,
                    "backend": backend,
                    "indices": chunk,
                    "faults": [faults[i] for i in chunk],
                    "shard": s,
                    "hb_slots": len(chunks),
                }
                try:
                    blob = pickle.dumps(task)
                except Exception as exc:
                    raise ProcessExecUnavailable(
                        CODE_UNPICKLABLE,
                        f"fault shard not picklable: {exc}",
                    ) from exc
                futures[s] = pool.submit(_run_shard, blob)
            try:
                done, hung = supervise_futures(
                    futures,
                    block.heartbeats,
                    shard_timeout=shard_timeout,
                    poll_s=sup.poll_s,
                    stats=local,
                )
                for s in done:
                    staged[s] = futures[s].result()
                if hung:
                    local.hung_workers += len(hung)
                    _kill_pool(pool)
                    lost = [s for s in pending if s not in staged]
                    if hang_retried:
                        raise WorkerHungError(
                            f"{len(hung)} fault-simulation shard(s) hung "
                            f"past the {shard_timeout:.2f}s deadline again "
                            f"after a pool rebuild; giving up on process "
                            f"execution for this batch",
                            hung_workers=local.hung_workers,
                            shard_retries=local.shard_retries,
                        )
                    hang_retried = True
                    warn_coded(
                        local, CODE_WORKER_HUNG,
                        f"reaped {len(hung)} hung fault-simulation "
                        f"worker(s) on {circuit.name} (no heartbeat for "
                        f"{shard_timeout:.2f}s); pool killed and rebuilt",
                    )
                    warn_coded(
                        local, CODE_SHARD_RETRY,
                        f"re-running {len(lost)} lost shard(s) on a "
                        f"fresh pool (one-shot retry before the "
                        f"thread/serial fallback ladder)",
                    )
                    local.shard_retries += len(lost)
                    pool = _pool_for(circuit, cells, workers)
                    pending = lost
                    continue
                pending = []
            except BrokenProcessPool as exc:
                _discard_pool(pool)
                raise WorkerCrashError(
                    f"{CODE_WORKER_CRASH}: a fault-simulation worker died "
                    f"mid-shard ({exc}); its shared segment was unlinked — "
                    f"re-run the batch (the runner's retry policy does "
                    f"this per task)"
                ) from exc
            except SharedMemoryCorruption:
                # Every future has settled (the supervisor waits for
                # all of them before results are read), and the block
                # is shared — siblings fail the same check, so the
                # whole round is discarded and re-run.
                if not corruption_retried:
                    corruption_retried = True
                    local.cache_integrity_failures += 1
                    local.degradations.append(
                        f"psim[{circuit.name}]: shared good-value block "
                        f"{block.name} failed CRC verification; rebuilt "
                        f"from the parent's pristine arrays"
                    )
                    staged.clear()
                    pending = list(range(len(chunks)))
                    continue
                raise
        finally:
            block.close()
    for s in sorted(staged):
        out, delta = staged[s]
        local.merge(delta)
        for i, word in out:
            results[i] = word
    return results
