"""Fault classes.

Every fault knows the DFM guideline that produced it and whether it is
*internal* (inside a standard cell — a :class:`CellAwareFault` carrying a
switch-level defect response) or *external* (on gate pins and nets —
stuck-at, transition, or dominant bridging).

``corresponding_gates`` implements the paper's Section II definition: a
gate corresponds to an internal fault located inside it, and to an
external fault located on its inputs or outputs (so stem faults and
bridges correspond to several gates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.library.defects import CellDefect
from repro.netlist.circuit import Circuit

INTERNAL = "internal"
EXTERNAL = "external"

RISE = "rise"
FALL = "fall"


@dataclass(frozen=True)
class Fault:
    """Base fault: a unique id plus provenance."""

    fault_id: str
    guideline: str

    @property
    def origin(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class StuckAtFault(Fault):
    """Net (or branch) permanently at *value*.

    ``branch`` is ``(gate, pin)`` for an open that only disconnects one
    sink; ``None`` means a stem fault affecting every sink of the net.
    """

    net: str = ""
    value: int = 0
    branch: Optional[Tuple[str, str]] = None

    @property
    def origin(self) -> str:
        return EXTERNAL


@dataclass(frozen=True)
class TransitionFault(Fault):
    """Slow-to-rise / slow-to-fall at a net or branch (enhanced scan)."""

    net: str = ""
    slow_to: str = RISE
    branch: Optional[Tuple[str, str]] = None

    @property
    def origin(self) -> str:
        return EXTERNAL

    @property
    def initial_value(self) -> int:
        """Frame-1 site value (0 before a rising transition)."""
        return 0 if self.slow_to == RISE else 1

    @property
    def stuck_value(self) -> int:
        """Frame-2 equivalent stuck-at value."""
        return 0 if self.slow_to == RISE else 1


@dataclass(frozen=True)
class BridgingFault(Fault):
    """Dominant bridge: *victim* net takes the *aggressor* net's value."""

    victim: str = ""
    aggressor: str = ""

    @property
    def origin(self) -> str:
        return EXTERNAL


@dataclass(frozen=True)
class CellAwareFault(Fault):
    """A cell-internal defect on one gate instance (UDFM-modeled)."""

    gate: str = ""
    defect: CellDefect = None  # type: ignore[assignment]

    @property
    def origin(self) -> str:
        return INTERNAL


def _net_gates(circuit: Circuit, net: str) -> FrozenSet[str]:
    """Driver and load gates of a net."""
    gates = {g for g, _pin in circuit.loads(net)}
    drv = circuit.driver(net)
    if drv is not None:
        gates.add(drv)
    return frozenset(gates)


def corresponding_gates(fault: Fault, circuit: Circuit) -> FrozenSet[str]:
    """The set of gates that correspond to *fault* (Section II).

    Internal faults correspond to exactly one gate.  External stem faults
    correspond to the net's driver and all loads; branch faults to the
    driver and the branch's gate; bridging faults to the gates of both
    shorted nets.  Gates no longer present in *circuit* are dropped (a
    fault enumerated on an older version of the design).
    """
    if isinstance(fault, CellAwareFault):
        return frozenset({fault.gate}) if fault.gate in circuit.gates else frozenset()
    if isinstance(fault, (StuckAtFault, TransitionFault)):
        if fault.branch is not None:
            gates = set()
            drv = circuit.driver(fault.net)
            if drv is not None:
                gates.add(drv)
            if fault.branch[0] in circuit.gates:
                gates.add(fault.branch[0])
            return frozenset(gates)
        return _net_gates(circuit, fault.net)
    if isinstance(fault, BridgingFault):
        return _net_gates(circuit, fault.victim) | _net_gates(
            circuit, fault.aggressor
        )
    raise TypeError(f"unknown fault type {type(fault).__name__}")
