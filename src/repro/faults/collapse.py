"""Fault collapsing.

Distinct physical defect sites frequently share one logical behaviour
(e.g. several contact-open sites on the same transistor, or the same net
flagged by two metal guidelines).  ATPG only needs one representative per
behaviour class; counts (F, U, clusters) always use the full site list.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)


def behaviour_key(fault: Fault) -> Tuple:
    """Hashable key identifying a fault's logical behaviour.

    Faults with equal keys are logically identical on a given circuit.
    Because fault detection is a *functional* property, a key's
    detected/undetectable status survives any functionally-equivalent
    local resynthesis that leaves the key's referenced objects (gate /
    net names) in place — the basis of the status inheritance used by
    the resynthesis flow.
    """
    if isinstance(fault, CellAwareFault):
        return ("ca", fault.gate, fault.defect.signature)
    if isinstance(fault, StuckAtFault):
        return ("sa", fault.net, fault.value, fault.branch)
    if isinstance(fault, TransitionFault):
        return ("tr", fault.net, fault.slow_to, fault.branch)
    if isinstance(fault, BridgingFault):
        return ("br", fault.victim, fault.aggressor)
    raise TypeError(type(fault).__name__)


_behaviour_key = behaviour_key  # internal alias


def collapse_faults(faults: Iterable[Fault]) -> Dict[Fault, List[Fault]]:
    """Group faults by identical logical behaviour.

    Returns {representative: [all faults in the class]} with the
    representative being the first-seen fault of each class; iteration
    order is deterministic given a deterministic input order.
    """
    classes: Dict[Tuple, List[Fault]] = {}
    for fault in faults:
        classes.setdefault(_behaviour_key(fault), []).append(fault)
    return {members[0]: members for members in classes.values()}
