"""Bit-parallel, event-driven fault simulation for all four fault models.

Tests are *pattern pairs* (enhanced scan): frame 1 initializes, frame 2
launches and is the only observed frame.  A batch packs up to the word
width of pairs; faulty values are propagated event-driven through each
fault's output cone only, so cost scales with cone size rather than
circuit size.

Detection semantics per model (matching the ATPG encodings):

* stuck-at — site forced to the stuck value in frame 2;
* transition — site must carry the initial value in frame 1, then behave
  as the corresponding stuck-at in frame 2;
* dominant bridge — victim net takes the aggressor's (good) value;
* cell-aware static — gate output follows the defect's faulty truth
  table; minterms with unknown response give no detection credit;
* cell-aware dynamic — floating minterms in frame 2 retain the frame-1
  driven faulty value; unknown/undriven cases give no credit.

Performance architecture: all per-gate work (evaluator compilation, pin
resolution, load lists) is hoisted into a cached
:class:`~repro.netlist.simulator.CompiledCircuit` plan, nets are handled
as dense integer indices, and good-machine values are served from a
per-plan LRU so re-simulating a previously seen pattern batch skips the
good simulation entirely.  ``workers=N`` fault-partitions a batch across
a thread pool or — with ``exec_mode="process"`` / ``REPRO_SIM_EXEC`` —
across shared-memory worker processes (:mod:`repro.faults.psim`); in
both modes chunks are balanced by output-cone size and merged by fault
index, so results are bit-identical to the serial path.

:func:`fault_simulate` is also the dispatch point for the *wide* numpy
backend (:mod:`repro.faults.vfsim`): pass ``backend="wide"`` or set
``REPRO_SIM_BACKEND=wide`` to simulate thousands of pattern pairs per
pass with vectorized word arrays; detect words are bit-identical across
backends for the same batch.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.library.cell import StandardCell
from repro.library.defects import CellDefect
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import CompiledCircuit
from repro.netlist.vsim import (
    BACKEND_EVENT,
    BACKEND_WIDE,
    EXEC_AUTO,
    EXEC_PROCESS,
    EXEC_SERIAL,
    EXEC_THREAD,
    batch_capacity,
    resolve_backend,
    resolve_exec,
    resolve_workers,
    words_for,
)
from repro.utils.observability import EngineStats, warn_coded
from repro.utils.rng import make_rng

# Below this many faults the thread-pool dispatch overhead outweighs any
# win, so the serial path is used even when workers > 1.
_MIN_PARALLEL_FAULTS = 8


@dataclass
class PatternBatch:
    """A width-agnostic batch of test pairs, PI values packed as bit vectors.

    ``frame1[pi]`` / ``frame2[pi]`` hold bit *i* of primary input *pi*
    under pair *i* as arbitrary-precision Python ints, so one batch can
    carry anything from a single pair up to the wide backend's
    ``64 * REPRO_SIM_WORDS`` patterns; the event backend consumes the
    ints directly, the wide backend packs them into numpy uint64 word
    arrays (:func:`repro.netlist.vsim.pack_word`).
    """

    n: int
    frame1: Dict[str, int]
    frame2: Dict[str, int]

    @property
    def mask(self) -> int:
        return (1 << self.n) - 1

    @property
    def words(self) -> int:
        """64-bit words needed to hold this batch's patterns."""
        return words_for(self.n)

    @staticmethod
    def from_pairs(
        circuit: Circuit,
        pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
    ) -> "PatternBatch":
        # Accumulate each PI's word in a local int over one pass of the
        # pairs: two dict reads per (pair, PI) and a single store per PI,
        # instead of the per-set-bit read-modify-write dict updates the
        # naive packing pays.  The packed ints are exactly what the wide
        # backend's array packing consumes, so the result is reused
        # as-is by both backends.
        f1: Dict[str, int] = {}
        f2: Dict[str, int] = {}
        for pi in circuit.inputs:
            w1 = 0
            w2 = 0
            bit = 1
            for v1, v2 in pairs:
                if v1[pi]:
                    w1 |= bit
                if v2[pi]:
                    w2 |= bit
                bit <<= 1
            f1[pi] = w1
            f2[pi] = w2
        return PatternBatch(len(pairs), f1, f2)

    @staticmethod
    def random(circuit: Circuit, n: int, seed: int) -> "PatternBatch":
        rng = make_rng(seed)
        f1 = {pi: rng.getrandbits(n) for pi in circuit.inputs}
        f2 = {pi: rng.getrandbits(n) for pi in circuit.inputs}
        return PatternBatch(n, f1, f2)


class _SimContext:
    """One batch's good-machine values over a shared compiled plan.

    ``good1`` / ``good2`` are net-value vectors indexed by the plan's
    dense net indices.  The context is read-only during propagation
    except for the ``events`` counter, so worker threads operate on
    cheap :meth:`fork` views that share the value vectors.
    """

    __slots__ = (
        "plan", "mask", "good1", "good2", "scratch", "inq", "events",
    )

    def __init__(
        self,
        plan: CompiledCircuit,
        mask: int,
        good1: List[int],
        good2: List[int],
    ):
        self.plan = plan
        self.mask = mask
        self.good1 = good1
        self.good2 = good2
        # Working copy of good2 for propagation: faulty values are
        # written in place (direct list indexing beats a side dict on
        # the hot path) and restored from the touched list afterwards.
        self.scratch = list(good2)
        # In-queue flags per gate; all zero between propagations.
        self.inq = bytearray(len(plan.gate_out))
        self.events = 0

    def fork(self) -> "_SimContext":
        """Per-worker view sharing the (read-only) good values."""
        return _SimContext(self.plan, self.mask, self.good1, self.good2)

    def propagate(
        self, overrides: Dict[int, int], activation: int
    ) -> int:
        """Propagate faulty net values (frame 2); return the detect word.

        *overrides* seeds faulty values on nets (by net index);
        *activation* masks the patterns for which the fault is active at
        its site.
        """
        if not activation:
            return 0
        plan = self.plan
        good = self.good2
        mask = self.mask
        loads_of = plan.loads_of
        is_po = plan.is_po
        values = self.scratch  # equals good outside propagation
        inq = self.inq  # all zero here; zeroed again by the pops below
        touched: List[int] = []
        detect = 0
        heap: List[int] = []
        push = heappush
        pop = heappop
        for net, value in overrides.items():
            value &= mask
            if value != values[net]:
                values[net] = value
                touched.append(net)
                if is_po[net]:
                    detect |= (value ^ good[net])
                for gi in loads_of[net]:
                    if not inq[gi]:
                        inq[gi] = 1
                        push(heap, gi)
        gate_eval = plan.gate_eval
        gate_out = plan.gate_out
        events = 0
        # Pops come in topo order and a gate's fanin is complete before
        # its index is reached, so each gate is pushed at most once and
        # clearing its flag at pop time keeps `inq` zeroed for the next
        # propagation.
        while heap:
            gi = pop(heap)
            inq[gi] = 0
            events += 1
            out = gate_out[gi]
            if out in overrides:
                continue  # the fault site itself stays forced
            new = gate_eval[gi](values, mask)
            old = values[out]
            if new == old:
                continue
            if old == good[out]:
                touched.append(out)  # first deviation: remember to restore
            values[out] = new
            if is_po[out]:
                detect |= (new ^ good[out])
                if detect & activation == activation:
                    # Every activated pattern already observed a
                    # difference — nothing downstream can add more.
                    for gj in heap:
                        inq[gj] = 0
                    break
            for gj in loads_of[out]:
                if not inq[gj]:
                    inq[gj] = 1
                    push(heap, gj)
        for net in touched:
            values[net] = good[net]
        self.events += events
        return detect & activation


def _make_context(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    batch: PatternBatch,
    stats: Optional[EngineStats] = None,
) -> _SimContext:
    """Context for one batch, with plan and good-value caching."""
    plan = CompiledCircuit.get(circuit, cells, stats=stats)
    # The key leads with the backend tag (and the wide keys additionally
    # carry their word count), so event and wide entries for the same
    # frames can coexist in the shared per-plan LRU without colliding.
    key = (
        "event",
        batch.n,
        tuple(batch.frame1.get(pi, 0) for pi in plan.pi_order),
        tuple(batch.frame2.get(pi, 0) for pi in plan.pi_order),
    )
    good1, good2 = plan.good_values(
        key, (batch.frame1, batch.frame2), batch.mask, stats=stats
    )
    return _SimContext(plan, batch.mask, good1, good2)


def _branch_overrides(
    ctx: _SimContext, net: str, branch: Optional[Tuple[str, str]],
    forced: int,
) -> Tuple[Dict[int, int], bool]:
    """Faulty seed values for a stem or branch fault forced to *forced*.

    For a branch fault only the branch gate sees the forced value: we
    recompute that gate's output with the forced input and seed it.
    Returns (overrides by net index, ok) — ok is False if the branch no
    longer exists.
    """
    plan = ctx.plan
    if branch is None:
        return {plan.net_index[net]: forced}, True
    gname, pin = branch
    gate = plan.circuit.gates.get(gname)
    if gate is None or gate.pins.get(pin) != net:
        return {}, False
    gi = plan.gate_index[gname]
    cell = plan.cells[gate.cell]
    fn = plan.gate_fn[gi]
    ins = []
    for p, idx in zip(cell.input_pins, plan.gate_in[gi]):
        if p == pin:
            ins.append(forced & ctx.mask)
        else:
            ins.append(ctx.good2[idx])
    return {plan.gate_out[gi]: fn(*ins, ctx.mask)}, True


def _cell_faulty_word(
    defect: CellDefect,
    input_words: Sequence[int],
    good_out: int,
    mask: int,
    frame1_words: Optional[Sequence[int]] = None,
    frame1_good_out: int = 0,
) -> int:
    """Frame-2 faulty output word of a defective cell instance."""
    n = len(input_words)

    def match(words: Sequence[int], m: int) -> int:
        w = mask
        for i in range(n):
            w &= words[i] if (m >> i) & 1 else ~words[i]
        return w & mask

    out = 0
    if frame1_words is not None and defect.floating:
        retained = 0
        valid1 = 0
        for m, fval in enumerate(defect.faulty):
            if fval is None:
                continue
            m1 = match(frame1_words, m)
            valid1 |= m1
            if fval:
                retained |= m1
    for m, fval in enumerate(defect.faulty):
        w = match(input_words, m)
        if not w:
            continue
        if fval is not None:
            if fval:
                out |= w
        elif m in defect.floating and frame1_words is not None:
            # Retain the frame-1 driven faulty value; undriven frame-1
            # initialization gives no detection credit (follow good).
            out |= w & valid1 & retained
            out |= w & ~valid1 & good_out
        else:
            out |= w & good_out  # unknown response: no credit
    return out & mask


def _simulate_one(ctx: _SimContext, fault: Fault) -> int:
    mask = ctx.mask
    plan = ctx.plan
    net_index = plan.net_index
    if isinstance(fault, StuckAtFault):
        idx = net_index.get(fault.net)
        if idx is None:
            return 0
        forced = mask if fault.value else 0
        overrides, ok = _branch_overrides(ctx, fault.net, fault.branch, forced)
        if not ok:
            return 0
        good = ctx.good2[idx]
        activation = (good ^ forced) & mask
        return ctx.propagate(overrides, activation)
    if isinstance(fault, TransitionFault):
        idx = net_index.get(fault.net)
        if idx is None:
            return 0
        init = mask if fault.initial_value else 0
        initialized = ~(ctx.good1[idx] ^ init) & mask
        if not initialized:
            return 0
        forced = mask if fault.stuck_value else 0
        overrides, ok = _branch_overrides(ctx, fault.net, fault.branch, forced)
        if not ok:
            return 0
        activation = (ctx.good2[idx] ^ forced) & initialized
        return ctx.propagate(overrides, activation)
    if isinstance(fault, BridgingFault):
        vi = net_index.get(fault.victim)
        ai = net_index.get(fault.aggressor)
        if vi is None or ai is None:
            return 0
        aggr = ctx.good2[ai]
        activation = (ctx.good2[vi] ^ aggr) & mask
        return ctx.propagate({vi: aggr}, activation)
    if isinstance(fault, CellAwareFault):
        gate = plan.circuit.gates.get(fault.gate)
        if gate is None:
            return 0
        gi = plan.gate_index[fault.gate]
        in_idx = plan.gate_in[gi]
        out_idx = plan.gate_out[gi]
        in2 = [ctx.good2[i] for i in in_idx]
        good_out = ctx.good2[out_idx]
        frame1 = None
        if fault.defect.floating:
            frame1 = [ctx.good1[i] for i in in_idx]
        faulty = _cell_faulty_word(
            fault.defect, in2, good_out, mask, frame1_words=frame1,
        )
        activation = (faulty ^ good_out) & mask
        return ctx.propagate({out_idx: faulty}, activation)
    raise TypeError(type(fault).__name__)


def _fault_site_index(plan: CompiledCircuit, fault: Fault) -> Optional[int]:
    """Net index whose output cone carries this fault's effect."""
    if isinstance(fault, (StuckAtFault, TransitionFault)):
        if fault.branch is not None:
            gate = plan.circuit.gates.get(fault.branch[0])
            return plan.net_index.get(gate.output) if gate else None
        return plan.net_index.get(fault.net)
    if isinstance(fault, BridgingFault):
        return plan.net_index.get(fault.victim)
    if isinstance(fault, CellAwareFault):
        gate = plan.circuit.gates.get(fault.gate)
        return plan.net_index.get(gate.output) if gate else None
    return None


def _partition_faults(
    plan: CompiledCircuit, faults: Sequence[Fault], workers: int
) -> List[List[int]]:
    """LPT-partition fault indices into *workers* chunks by cone size.

    Deterministic: faults are ordered by (cost desc, index asc) and each
    is assigned to the least-loaded chunk (ties broken by chunk id).
    Shared by the thread path below and the process-parallel layer
    (:mod:`repro.faults.psim`), so shard composition is identical in
    both execution modes.
    """
    cone = plan.cone_sizes()
    costs: List[int] = []
    for fault in faults:
        idx = _fault_site_index(plan, fault)
        costs.append(cone[idx] if idx is not None else 1)
    order = sorted(range(len(faults)), key=lambda i: (-costs[i], i))
    loads: List[int] = [0] * workers
    chunks: List[List[int]] = [[] for _ in range(workers)]
    heap = [(0, c) for c in range(workers)]
    for i in order:
        load, c = heappop(heap)
        chunks[c].append(i)
        heappush(heap, (load + costs[i], c))
    for chunk in chunks:
        chunk.sort()
    return [chunk for chunk in chunks if chunk]


def fault_simulate(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    batch: PatternBatch,
    *,
    workers: Optional[int] = None,
    stats: Optional[EngineStats] = None,
    backend: Optional[str] = None,
    exec_mode: Optional[str] = None,
) -> List[int]:
    """Per-fault detect words (bit i set = pair i detects the fault).

    *backend* selects the simulation engine: ``"event"`` (bit-parallel
    Python-int words with event-driven propagation — the default) or
    ``"wide"`` (numpy uint64 word arrays with dense cone-scoped
    propagation, thousands of patterns per pass — see
    :mod:`repro.faults.vfsim`).  ``None`` defers to the
    ``REPRO_SIM_BACKEND`` environment variable, so existing call sites
    pick the wide backend up without changes.  Both backends return
    bit-identical detect words for the same batch.

    *workers* / *exec_mode* select how a batch's fault universe is
    partitioned (``None`` defers to ``REPRO_SIM_WORKERS`` /
    ``REPRO_SIM_EXEC``).  With ``workers > 1``:

    * ``"thread"`` — the event backend fault-partitions across a thread
      pool (chunks LPT-balanced by output-cone size; GIL-bound but
      cheap to dispatch).  The wide backend has no thread path — a
      coded ``MC-THREAD-WIDE`` warning is emitted and the batch runs
      serial;
    * ``"process"`` — both backends shard across ``multiprocessing``
      workers that attach the batch's good-value arrays from a
      shared-memory block (:mod:`repro.faults.psim`).  If process
      execution is unavailable (no shared memory, unpicklable faults,
      no usable start method) a coded warning is emitted and the batch
      falls back to threads (event) or serial (wide) — never silently;
    * ``"auto"`` (default) — threads for the event backend, processes
      for the wide backend;
    * ``"serial"`` — force the serial path regardless of *workers*.

    Every mode is bit-identical: shards/chunks are deterministic and
    results are merged back by fault index.

    Counter discipline: nothing records into the caller's *stats* while
    workers run.  Every count lands in a private per-call instance
    (thread and process workers count into their own chunk contexts,
    whose totals are folded in at join, on the dispatching side), and
    the per-call instance is merged into *stats* in one atomic step at
    the end — so a shared EngineStats never loses increments, and the
    semantic counters of a parallel run equal those of a serial run.
    """
    backend = resolve_backend(backend)
    workers = resolve_workers(workers)
    exec_mode = resolve_exec(exec_mode)
    parallel_ok = (
        workers > 1
        and len(faults) >= max(_MIN_PARALLEL_FAULTS, workers)
        and exec_mode != EXEC_SERIAL
    )
    want_process = parallel_ok and (
        exec_mode == EXEC_PROCESS
        or (exec_mode == EXEC_AUTO and backend == BACKEND_WIDE)
    )
    if want_process:
        from repro.faults.psim import (
            ProcessExecUnavailable,
            process_fault_simulate,
        )
        from repro.utils.supervise import WorkerHungError

        try:
            return process_fault_simulate(
                circuit, cells, faults, batch,
                workers=workers, backend=backend, stats=stats,
            )
        except ProcessExecUnavailable as exc:
            # Graceful but *announced* degradation: the caller asked for
            # (or auto-resolved to) processes and is getting threads or
            # a serial pass instead.
            fallback = "threads" if backend == BACKEND_EVENT else "serial"
            warn_coded(
                stats, exc.code,
                f"process execution unavailable ({exc}); "
                f"falling back to {fallback}",
            )
        except WorkerHungError as exc:
            # The supervisor reaped a hung worker twice (initial run
            # and the one-shot shard retry).  The failed attempt's
            # staged counters are discarded — the fallback re-runs the
            # whole batch — so the supervision story is folded in from
            # the exception instead, keeping it observable.
            fallback = "threads" if backend == BACKEND_EVENT else "serial"
            if stats is not None:
                stats.hung_workers += exc.hung_workers
                stats.shard_retries += exc.shard_retries
            warn_coded(
                stats, exc.code,
                f"{exc}; falling back to {fallback}",
            )
    if backend == BACKEND_WIDE:
        from repro.faults.vfsim import wide_fault_simulate

        if parallel_ok and exec_mode == EXEC_THREAD:
            warn_coded(
                stats, "MC-THREAD-WIDE",
                "the wide backend has no thread path (vectorization "
                "replaces fault-partitioned threading); running serial —"
                " use exec_mode='process' for multi-core wide batches",
            )
        return wide_fault_simulate(
            circuit, cells, faults, batch, stats=stats
        )
    local = EngineStats()
    ctx = _make_context(circuit, cells, batch, stats=local)
    local.batches += 1
    local.faults_simulated += len(faults)
    if not parallel_ok:
        results = [_simulate_one(ctx, fault) for fault in faults]
        local.events_propagated += ctx.events
        if stats is not None:
            stats.merge(local)
        return results

    chunks = _partition_faults(ctx.plan, faults, workers)
    results: List[int] = [0] * len(faults)
    local.events_propagated += ctx.events

    def run_chunk(chunk: List[int]) -> Tuple[List[Tuple[int, int]], int]:
        view = ctx.fork()
        out = [(i, _simulate_one(view, faults[i])) for i in chunk]
        return out, view.events

    with ThreadPoolExecutor(max_workers=workers) as pool:
        for out, chunk_events in pool.map(run_chunk, chunks):
            local.events_propagated += chunk_events
            for i, word in out:
                results[i] = word
    local.parallel_chunks += len(chunks)
    if stats is not None:
        stats.merge(local)
    return results


def detected_by_patterns(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
    *,
    workers: Optional[int] = None,
    stats: Optional[EngineStats] = None,
    backend: Optional[str] = None,
    exec_mode: Optional[str] = None,
) -> List[bool]:
    """Convenience wrapper: which faults do these test pairs detect?

    Pairs are chunked at the active backend's batch capacity: 64 per
    pass for the event backend, ``64 * REPRO_SIM_WORDS`` for the wide
    backend (so a long test list rides a handful of wide passes).
    """
    if not pairs:
        return [False] * len(faults)
    backend = resolve_backend(backend)
    flags = [False] * len(faults)
    word = batch_capacity(backend)
    for start in range(0, len(pairs), word):
        batch = PatternBatch.from_pairs(circuit, pairs[start:start + word])
        words = fault_simulate(
            circuit, cells, faults, batch, workers=workers, stats=stats,
            backend=backend, exec_mode=exec_mode,
        )
        for i, w in enumerate(words):
            if w:
                flags[i] = True
    return flags
