"""Bit-parallel, event-driven fault simulation for all four fault models.

Tests are *pattern pairs* (enhanced scan): frame 1 initializes, frame 2
launches and is the only observed frame.  A batch packs up to the word
width of pairs; faulty values are propagated event-driven through each
fault's output cone only, so cost scales with cone size rather than
circuit size.

Detection semantics per model (matching the ATPG encodings):

* stuck-at — site forced to the stuck value in frame 2;
* transition — site must carry the initial value in frame 1, then behave
  as the corresponding stuck-at in frame 2;
* dominant bridge — victim net takes the aggressor's (good) value;
* cell-aware static — gate output follows the defect's faulty truth
  table; minterms with unknown response give no detection credit;
* cell-aware dynamic — floating minterms in frame 2 retain the frame-1
  driven faulty value; unknown/undriven cases give no credit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.library.cell import StandardCell
from repro.library.defects import CellDefect
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import compile_cell_eval, simulate
from repro.utils.rng import make_rng


@dataclass
class PatternBatch:
    """Up to a word of test pairs, PI values packed as bit vectors."""

    n: int
    frame1: Dict[str, int]
    frame2: Dict[str, int]

    @property
    def mask(self) -> int:
        return (1 << self.n) - 1

    @staticmethod
    def from_pairs(
        circuit: Circuit,
        pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
    ) -> "PatternBatch":
        f1: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
        f2: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
        for i, (v1, v2) in enumerate(pairs):
            for pi in circuit.inputs:
                if v1[pi]:
                    f1[pi] |= 1 << i
                if v2[pi]:
                    f2[pi] |= 1 << i
        return PatternBatch(len(pairs), f1, f2)

    @staticmethod
    def random(circuit: Circuit, n: int, seed: int) -> "PatternBatch":
        rng = make_rng(seed)
        f1 = {pi: rng.getrandbits(n) for pi in circuit.inputs}
        f2 = {pi: rng.getrandbits(n) for pi in circuit.inputs}
        return PatternBatch(n, f1, f2)


class _SimContext:
    """Precomputed structures shared across the faults of one batch."""

    def __init__(
        self,
        circuit: Circuit,
        cells: Mapping[str, StandardCell],
        batch: PatternBatch,
    ):
        self.circuit = circuit
        self.cells = cells
        self.mask = batch.mask
        self.good1 = simulate(circuit, cells, batch.frame1, self.mask)
        self.good2 = simulate(circuit, cells, batch.frame2, self.mask)
        self.topo_index = {
            g: i for i, g in enumerate(circuit.topo_order())
        }
        self.po_set = set(circuit.outputs)

    def gate_inputs(self, gate_name: str, values: Mapping[str, int],
                    base: Mapping[str, int]) -> List[int]:
        gate = self.circuit.gates[gate_name]
        cell = self.cells[gate.cell]
        return [
            values.get(gate.pins[p], base[gate.pins[p]])
            for p in cell.input_pins
        ]

    def propagate(
        self, overrides: Dict[str, int], activation: int
    ) -> int:
        """Propagate faulty net values (frame 2); return the detect word.

        *overrides* seeds faulty values on nets; *activation* masks the
        patterns for which the fault is active at its site.
        """
        if not activation:
            return 0
        circuit, good = self.circuit, self.good2
        fv: Dict[str, int] = {}
        detect = 0
        heap: List[Tuple[int, str]] = []
        queued = set()

        def schedule_loads(net: str) -> None:
            for gname, _pin in circuit.loads(net):
                if gname not in queued:
                    queued.add(gname)
                    heapq.heappush(heap, (self.topo_index[gname], gname))

        for net, value in overrides.items():
            value &= self.mask
            if value != (good[net] & self.mask):
                fv[net] = value
                if net in self.po_set:
                    detect |= (value ^ good[net])
                schedule_loads(net)
        while heap:
            _, gname = heapq.heappop(heap)
            gate = circuit.gates[gname]
            if gate.output in overrides:
                continue  # the fault site itself stays forced
            cell = self.cells[gate.cell]
            fn = compile_cell_eval(len(cell.input_pins), cell.tt)
            ins = [
                fv.get(gate.pins[p], good[gate.pins[p]])
                for p in cell.input_pins
            ]
            new = fn(*ins, self.mask)
            old = fv.get(gate.output, good[gate.output])
            if new == old:
                continue
            fv[gate.output] = new
            if gate.output in self.po_set:
                detect |= (new ^ good[gate.output])
            queued.discard(gname)
            schedule_loads(gate.output)
        return detect & activation


def _branch_overrides(
    ctx: _SimContext, net: str, branch: Optional[Tuple[str, str]],
    forced: int,
) -> Tuple[Dict[str, int], bool]:
    """Faulty seed values for a stem or branch fault forced to *forced*.

    For a branch fault only the branch gate sees the forced value: we
    recompute that gate's output with the forced input and seed it.
    Returns (overrides, ok) — ok is False if the branch no longer exists.
    """
    if branch is None:
        return {net: forced}, True
    gname, pin = branch
    gate = ctx.circuit.gates.get(gname)
    if gate is None or gate.pins.get(pin) != net:
        return {}, False
    cell = ctx.cells[gate.cell]
    fn = compile_cell_eval(len(cell.input_pins), cell.tt)
    ins = []
    for p in cell.input_pins:
        if p == pin:
            ins.append(forced & ctx.mask)
        else:
            ins.append(ctx.good2[gate.pins[p]])
    return {gate.output: fn(*ins, ctx.mask)}, True


def _cell_faulty_word(
    defect: CellDefect,
    input_words: Sequence[int],
    good_out: int,
    mask: int,
    frame1_words: Optional[Sequence[int]] = None,
    frame1_good_out: int = 0,
) -> int:
    """Frame-2 faulty output word of a defective cell instance."""
    n = len(input_words)

    def match(words: Sequence[int], m: int) -> int:
        w = mask
        for i in range(n):
            w &= words[i] if (m >> i) & 1 else ~words[i]
        return w & mask

    out = 0
    if frame1_words is not None and defect.floating:
        retained = 0
        valid1 = 0
        for m, fval in enumerate(defect.faulty):
            if fval is None:
                continue
            m1 = match(frame1_words, m)
            valid1 |= m1
            if fval:
                retained |= m1
    for m, fval in enumerate(defect.faulty):
        w = match(input_words, m)
        if not w:
            continue
        if fval is not None:
            if fval:
                out |= w
        elif m in defect.floating and frame1_words is not None:
            # Retain the frame-1 driven faulty value; undriven frame-1
            # initialization gives no detection credit (follow good).
            out |= w & valid1 & retained
            out |= w & ~valid1 & good_out
        else:
            out |= w & good_out  # unknown response: no credit
    return out & mask


def fault_simulate(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    batch: PatternBatch,
) -> List[int]:
    """Per-fault detect words (bit i set = pair i detects the fault)."""
    ctx = _SimContext(circuit, cells, batch)
    results: List[int] = []
    for fault in faults:
        results.append(_simulate_one(ctx, fault))
    return results


def _simulate_one(ctx: _SimContext, fault: Fault) -> int:
    mask = ctx.mask
    circuit = ctx.circuit
    if isinstance(fault, StuckAtFault):
        if fault.net not in ctx.good2:
            return 0
        forced = mask if fault.value else 0
        overrides, ok = _branch_overrides(ctx, fault.net, fault.branch, forced)
        if not ok:
            return 0
        good = ctx.good2[fault.net]
        activation = (good ^ forced) & mask
        return ctx.propagate(overrides, activation)
    if isinstance(fault, TransitionFault):
        if fault.net not in ctx.good2:
            return 0
        init = mask if fault.initial_value else 0
        initialized = ~(ctx.good1[fault.net] ^ init) & mask
        if not initialized:
            return 0
        forced = mask if fault.stuck_value else 0
        overrides, ok = _branch_overrides(ctx, fault.net, fault.branch, forced)
        if not ok:
            return 0
        activation = (ctx.good2[fault.net] ^ forced) & initialized
        return ctx.propagate(overrides, activation)
    if isinstance(fault, BridgingFault):
        if fault.victim not in ctx.good2 or fault.aggressor not in ctx.good2:
            return 0
        aggr = ctx.good2[fault.aggressor]
        activation = (ctx.good2[fault.victim] ^ aggr) & mask
        return ctx.propagate({fault.victim: aggr}, activation)
    if isinstance(fault, CellAwareFault):
        gate = circuit.gates.get(fault.gate)
        if gate is None:
            return 0
        cell = ctx.cells[gate.cell]
        in2 = [ctx.good2[gate.pins[p]] for p in cell.input_pins]
        good_out = ctx.good2[gate.output]
        frame1 = None
        if fault.defect.floating:
            frame1 = [ctx.good1[gate.pins[p]] for p in cell.input_pins]
        faulty = _cell_faulty_word(
            fault.defect, in2, good_out, mask, frame1_words=frame1,
        )
        activation = (faulty ^ good_out) & mask
        return ctx.propagate({gate.output: faulty}, activation)
    raise TypeError(type(fault).__name__)


def detected_by_patterns(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
) -> List[bool]:
    """Convenience wrapper: which faults do these test pairs detect?"""
    if not pairs:
        return [False] * len(faults)
    flags = [False] * len(faults)
    word = 64
    for start in range(0, len(pairs), word):
        batch = PatternBatch.from_pairs(circuit, pairs[start:start + word])
        for i, w in enumerate(fault_simulate(circuit, cells, faults, batch)):
            if w:
                flags[i] = True
    return flags
