"""Naive one-pattern-at-a-time reference fault simulator.

This is the *specification* of the detection semantics implemented by the
optimized engine in :mod:`repro.faults.fsim`: scalar values, full-circuit
re-simulation per fault and pattern, truth tables consulted bit-by-bit —
no bit-parallel words, no event-driven propagation, no compiled
evaluators, no caching.  It shares nothing with the production path (it
does not even use :func:`repro.netlist.simulator.compile_cell_eval`), so
the differential suite in ``tests/test_fsim_reference.py`` can use it as
an independent oracle: for every fault model the optimized detect words
must be bit-identical to what this simulator produces.

It is deliberately O(faults x patterns x gates) and only suitable for
test-sized circuits.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.fsim import PatternBatch
from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit

_Pattern = Mapping[str, int]


def _good_values(
    circuit: Circuit, cells: Mapping[str, StandardCell], pattern: _Pattern
) -> Dict[str, int]:
    """Scalar fault-free simulation via direct truth-table lookup."""
    values: Dict[str, int] = {CONST0: 0, CONST1: 1}
    for pi in circuit.inputs:
        values[pi] = 1 if pattern[pi] else 0
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        cell = cells[gate.cell]
        minterm = 0
        for i, p in enumerate(cell.input_pins):
            if values[gate.pins[p]]:
                minterm |= 1 << i
        values[gate.output] = (cell.tt >> minterm) & 1
    return values


def _faulty_values(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    pattern: _Pattern,
    clamps: Mapping[str, int],
    forced_pins: Mapping[Tuple[str, str], int] = {},
) -> Dict[str, int]:
    """Scalar faulty simulation.

    *clamps* pins net values for the whole evaluation (the fault site
    stays forced); *forced_pins* overrides the value seen by one specific
    (gate, pin) input — the branch-fault case, where only one sink of a
    stem observes the faulty value.
    """
    values: Dict[str, int] = {CONST0: 0, CONST1: 1}
    for pi in circuit.inputs:
        values[pi] = clamps.get(pi, 1 if pattern[pi] else 0)
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        out = gate.output
        if out in clamps:
            values[out] = clamps[out]
            continue
        cell = cells[gate.cell]
        minterm = 0
        for i, p in enumerate(cell.input_pins):
            bit = forced_pins.get((gname, p))
            if bit is None:
                bit = values[gate.pins[p]]
            if bit:
                minterm |= 1 << i
        values[out] = (cell.tt >> minterm) & 1
    return values


def _cell_minterm(
    gate_pins: Sequence[str], values: Mapping[str, int]
) -> int:
    minterm = 0
    for i, net in enumerate(gate_pins):
        if values[net]:
            minterm |= 1 << i
    return minterm


def _detects(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    fault: Fault,
    pattern2: _Pattern,
    good1: Dict[str, int],
    good2: Dict[str, int],
) -> bool:
    """Does the pair behind (*good1*, *good2*) detect *fault*?"""
    clamps: Dict[str, int] = {}
    forced_pins: Dict[Tuple[str, str], int] = {}

    if isinstance(fault, (StuckAtFault, TransitionFault)):
        if fault.net not in good2:
            return False
        if isinstance(fault, TransitionFault):
            if good1[fault.net] != fault.initial_value:
                return False  # launch transition never initialized
            forced = fault.stuck_value
        else:
            forced = fault.value
        if fault.branch is not None:
            gname, pin = fault.branch
            gate = circuit.gates.get(gname)
            if gate is None or gate.pins.get(pin) != fault.net:
                return False  # stale branch: fault site no longer exists
            forced_pins[(gname, pin)] = forced
        else:
            clamps[fault.net] = forced
        if good2[fault.net] == forced:
            return False  # not activated at the site
    elif isinstance(fault, BridgingFault):
        if fault.victim not in good2 or fault.aggressor not in good2:
            return False
        if good2[fault.victim] == good2[fault.aggressor]:
            return False
        clamps[fault.victim] = good2[fault.aggressor]
    elif isinstance(fault, CellAwareFault):
        gate = circuit.gates.get(fault.gate)
        if gate is None:
            return False
        cell = cells[gate.cell]
        defect = fault.defect
        pin_nets = [gate.pins[p] for p in cell.input_pins]
        good_out = good2[gate.output]
        m2 = _cell_minterm(pin_nets, good2)
        fval2 = defect.faulty[m2]
        if fval2 is not None:
            faulty_out = fval2
        elif m2 in defect.floating:
            # Dynamic retention: the floating output keeps the frame-1
            # driven faulty value; an undriven frame 1 gives no credit.
            m1 = _cell_minterm(pin_nets, good1)
            fval1 = defect.faulty[m1]
            faulty_out = fval1 if fval1 is not None else good_out
        else:
            faulty_out = good_out  # unknown response: no credit
        if faulty_out == good_out:
            return False
        clamps[gate.output] = faulty_out
    else:
        raise TypeError(type(fault).__name__)

    faulty = _faulty_values(circuit, cells, pattern2, clamps, forced_pins)
    return any(faulty[po] != good2[po] for po in circuit.outputs)


def reference_detect_words(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    pairs: Sequence[Tuple[_Pattern, _Pattern]],
) -> List[int]:
    """Per-fault detect words, one pattern pair at a time.

    Same contract as :func:`repro.faults.fsim.fault_simulate` over
    ``PatternBatch.from_pairs(circuit, pairs)``: bit *i* of word *f* is
    set iff pair *i* detects fault *f*.
    """
    words = [0] * len(faults)
    for bit, (v1, v2) in enumerate(pairs):
        good1 = _good_values(circuit, cells, v1)
        good2 = _good_values(circuit, cells, v2)
        for fi, fault in enumerate(faults):
            if _detects(circuit, cells, fault, v2, good1, good2):
                words[fi] |= 1 << bit
    return words


def reference_fault_simulate(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    batch: PatternBatch,
) -> List[int]:
    """Reference counterpart of ``fault_simulate`` on a packed batch."""
    pairs = []
    for bit in range(batch.n):
        v1 = {pi: (batch.frame1[pi] >> bit) & 1 for pi in circuit.inputs}
        v2 = {pi: (batch.frame2[pi] >> bit) & 1 for pi in circuit.inputs}
        pairs.append((v1, v2))
    return reference_detect_words(circuit, cells, faults, pairs)
