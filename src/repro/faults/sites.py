"""Fault set container and internal fault site enumeration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.faults.model import CellAwareFault, Fault, INTERNAL
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit
from repro.utils.observability import EngineStats


@dataclass
class FaultSet:
    """The target fault set F of a designed circuit."""

    faults: List[Fault] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def add(self, fault: Fault) -> None:
        self.faults.append(fault)

    def extend(self, faults: Iterable[Fault]) -> None:
        self.faults.extend(faults)

    @property
    def internal(self) -> List[Fault]:
        return [f for f in self.faults if f.origin == INTERNAL]

    @property
    def external(self) -> List[Fault]:
        return [f for f in self.faults if f.origin != INTERNAL]

    def by_id(self) -> Dict[str, Fault]:
        return {f.fault_id: f for f in self.faults}

    def counts(self) -> Dict[str, int]:
        """Summary: total / internal / external fault counts."""
        n_int = len(self.internal)
        return {
            "total": len(self.faults),
            "internal": n_int,
            "external": len(self.faults) - n_int,
        }


def enumerate_internal_faults(
    circuit: Circuit,
    library: Library,
    reuse: Optional[Mapping[str, Sequence[CellAwareFault]]] = None,
    stats: Optional[EngineStats] = None,
) -> List[CellAwareFault]:
    """Internal DFM faults: every defect of every cell instance.

    Every instance of a cell introduces the same internal fault
    population (Section I of the paper) — the reason resynthesis toward
    cells with fewer internal faults reduces the fault set.

    *reuse* maps gate names known unchanged since a previous enumeration
    to that enumeration's fault objects for the gate; those are carried
    over instead of re-built.  Fault ids are deterministic in (gate,
    defect), so the result is identical to a fresh enumeration — only
    the object allocations (and *stats* counters) differ.
    """
    out: List[CellAwareFault] = []
    for gname in circuit.topo_order():
        if reuse is not None:
            carried = reuse.get(gname)
            if carried is not None:
                out.extend(carried)
                if stats is not None:
                    stats.faults_carried += len(carried)
                continue
        gate = circuit.gates[gname]
        cell = library[gate.cell]
        fresh = 0
        for defect in cell.internal_defects():
            fresh += 1
            out.append(
                CellAwareFault(
                    fault_id=f"ca:{gname}:{defect.defect_id}",
                    guideline=defect.guideline,
                    gate=gname,
                    defect=defect,
                )
            )
        if stats is not None:
            stats.faults_extracted += fresh
    return out
