"""Fault models, site enumeration, collapsing and fault simulation.

Fault taxonomy follows Section II of the paper: DFM guideline violations
translate into likely shorts and opens inside and outside cells, which are
modeled as stuck-at faults, transition faults, bridging faults and
cell-aware faults (UDFM).  Faults are *internal* (inside a standard cell)
or *external* (on gate pins/nets).
"""

from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    EXTERNAL,
    Fault,
    INTERNAL,
    StuckAtFault,
    TransitionFault,
    corresponding_gates,
)
from repro.faults.sites import FaultSet, enumerate_internal_faults
from repro.faults.collapse import collapse_faults
from repro.faults.fsim import fault_simulate, detected_by_patterns
from repro.faults.vfsim import wide_fault_simulate
from repro.faults.psim import (
    ProcessExecUnavailable,
    SharedMemoryCorruption,
    WorkerCrashError,
    process_fault_simulate,
)

__all__ = [
    "BridgingFault",
    "CellAwareFault",
    "EXTERNAL",
    "Fault",
    "INTERNAL",
    "StuckAtFault",
    "TransitionFault",
    "corresponding_gates",
    "FaultSet",
    "enumerate_internal_faults",
    "collapse_faults",
    "fault_simulate",
    "detected_by_patterns",
    "wide_fault_simulate",
    "ProcessExecUnavailable",
    "SharedMemoryCorruption",
    "WorkerCrashError",
    "process_fault_simulate",
]
