"""The ATPG driver: random phase, deterministic SAT phase, compaction.

``run_atpg`` classifies every fault of the target set as *detected*,
*undetectable*, or — only under an explicit resource budget —
*aborted*, and produces a compacted test set.  With the default
unlimited :class:`~repro.atpg.budget.AtpgBudget` the SAT solver runs to
completion on each class representative, the abort bucket stays empty,
and every result is bit-identical to the ungoverned engine.  This
provides the paper's quantities: T (tests), U (undetectable faults) and
Cov = 1 - U/F.

Aborted faults are handled conservatively throughout: they are never
counted as undetectable (an abort is not a proof), never dropped from F
(detected + undetectable + aborted always partitions the fault set),
and they surface separately on :class:`AtpgResult` and in the engine's
degradation records.  When the aborted fraction exceeds the budget's
global tolerance the run is downgraded to explicitly-flagged
approximate mode (``result.approximate``) instead of failing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.atpg.budget import ABORTED, DETECTED, UNDETECTABLE, AtpgBudget
from repro.atpg.compaction import TestPair, compact_tests
from repro.atpg.incremental import IncrementalAtpg
from repro.atpg.patpg import (
    CODE_FALLBACK_ATPG,
    MIN_PARALLEL_SAT_FAULTS,
    process_sat_phase,
)
from repro.faults.collapse import behaviour_key, collapse_faults
from repro.faults.psim import (
    ProcessExecUnavailable,
    SharedMemoryCorruption,
    WorkerCrashError,
)
from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.model import Fault
from repro.library.cell import StandardCell
from repro.netlist.circuit import Circuit
from repro.netlist.vsim import (
    BACKEND_EVENT,
    EXEC_PROCESS,
    batch_capacity,
    resolve_atpg_exec,
    resolve_backend,
    resolve_exec,
    resolve_workers,
)
from repro.utils.observability import EngineStats, warn_coded
from repro.utils.rng import make_rng
from repro.utils.supervise import WorkerHungError


@dataclass
class AtpgResult:
    """Classification of a fault set plus the generated tests."""

    n_faults: int
    detected: Set[str] = field(default_factory=set)  # fault ids
    undetectable: Set[str] = field(default_factory=set)
    # Faults whose SAT decision ran out of its resource budget: neither
    # detected nor proved undetectable.  Empty unless a budget was set.
    aborted: Set[str] = field(default_factory=set)
    # Which budget tripped each aborted fault's decision — fault id to
    # "deadline" / "conflicts" / "decisions" (or "injected" under the
    # chaos seam).  Keyed per member fault like ``aborted``; surfaced in
    # the report's DEGRADATIONS section.
    abort_reasons: Dict[str, str] = field(default_factory=dict)
    # True when the aborted fraction exceeded the budget's global
    # tolerance: the run completed, but its U/Cov numbers are bounds,
    # not exact values.
    approximate: bool = False
    tests: List[TestPair] = field(default_factory=list)
    runtime: float = 0.0
    sat_calls: int = 0
    stats: EngineStats = field(default_factory=EngineStats)

    @property
    def coverage(self) -> float:
        """Cov = 1 - U/F (the paper's definition).

        With a nonempty abort bucket this is an *upper* bound on the
        true coverage (aborted faults might still be undetectable); see
        :attr:`coverage_lower_bound` for the other side.
        """
        if self.n_faults == 0:
            return 1.0
        return 1.0 - len(self.undetectable) / self.n_faults

    @property
    def coverage_lower_bound(self) -> float:
        """Coverage if every aborted fault turned out undetectable."""
        if self.n_faults == 0:
            return 1.0
        pessimistic = len(self.undetectable) + len(self.aborted)
        return 1.0 - pessimistic / self.n_faults

    @property
    def n_aborted(self) -> int:
        return len(self.aborted)

    def verdict_of(self, fault_id: str) -> Optional[str]:
        """Three-valued verdict of one fault id (None if unknown id)."""
        if fault_id in self.detected:
            return DETECTED
        if fault_id in self.undetectable:
            return UNDETECTABLE
        if fault_id in self.aborted:
            return ABORTED
        return None

    def is_undetectable(self, fault: Fault) -> bool:
        return fault.fault_id in self.undetectable


def run_atpg(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    seed: int = 0,
    random_rounds: int = 8,
    batch_size: Optional[int] = None,
    compaction: bool = True,
    initial_tests: Optional[Sequence[TestPair]] = None,
    assume_undetectable: Optional[AbstractSet] = None,
    assume_detected: Optional[AbstractSet] = None,
    workers: Optional[int] = None,
    stats: Optional[EngineStats] = None,
    budget: Optional[AtpgBudget] = None,
    backend: Optional[str] = None,
    exec_mode: Optional[str] = None,
) -> AtpgResult:
    """Classify *faults* on *circuit* and build a test set.

    *budget* (default: from the ``REPRO_ATPG_*`` environment, which is
    unlimited when unset) bounds each deterministic SAT decision; faults
    whose decision runs out land in ``result.aborted`` with the
    conservative semantics described in the module docstring.

    *backend* selects the fault-simulation engine for every batch the
    driver runs (``"event"``/``"wide"``; default: the
    ``REPRO_SIM_BACKEND`` environment variable, falling back to the
    event backend).  *batch_size* is the number of random pattern pairs
    simulated per round and the chunk size for initial-test replay.  It
    defaults to the full capacity of the active backend — 64 patterns
    (one machine word) for the event backend, ``64 * REPRO_SIM_WORDS``
    (4096 by default) for the wide backend — and must stay within that
    capacity: a batch cannot pack more patterns than the backend's word
    width holds, so an oversized value raises :class:`ValueError` here
    rather than producing silent truncation deep in the simulator.  The
    classification is backend-independent; the generated test *set* is
    too for equal *batch_size*, since both backends see identical
    batches and produce bit-identical detection words.

    Strategy: seeded random pattern pairs with bit-parallel fault
    simulation drop the easy faults; each remaining behaviour class gets
    an exact SAT decision, with every generated test fault-simulated to
    drop other classes opportunistically.  *initial_tests* (e.g. the
    previous resynthesis iteration's test set) are fault-simulated first,
    which makes re-running ATPG after a local circuit change cheap.

    *assume_undetectable* and *assume_detected* are sets of behaviour
    keys (see :func:`repro.faults.collapse.behaviour_key`) with a known
    verdict from an earlier, functionally-equivalent version of the
    circuit.  Detection is a functional property: replacing a region R
    by an equivalent R' leaves every net outside R with identical values
    under *any* input — including the values forced by a fault whose
    key references only surviving gate/net names — so both detected and
    undetectable verdicts carry over without re-proof.  Replaced objects
    get fresh names and never match a stale key, which makes the
    inheritance safe to apply blindly; only behaviour classes with novel
    keys (the changed region's cone) are re-proved.

    *workers* > 1 fault-partitions every fault-simulation batch the
    driver runs; *exec_mode* selects how (``"thread"`` pools,
    ``"process"`` workers over shared-memory arrays, ``"auto"`` —
    threads for the event backend, processes for the wide backend — or
    ``"serial"``; see :func:`repro.faults.fsim.fault_simulate`).  Both
    default to the ``REPRO_SIM_WORKERS`` / ``REPRO_SIM_EXEC``
    environment.  The classification and test set are bit-identical to
    a serial run with the same seed in every mode.  Engine effort
    counters and per-phase wall times are recorded on ``result.stats``
    (pass *stats* to accumulate into a caller-owned instance instead).

    Under ``exec_mode="process"`` with ``workers > 1`` the deterministic
    SAT phase itself is additionally sharded site-cohesively across
    worker processes (:mod:`repro.atpg.patpg`).  The SAT phase reads its
    own ``REPRO_ATPG_EXEC`` environment knob, defaulting to
    ``REPRO_SIM_EXEC``, when *exec_mode* is not given; ``auto`` keeps
    the phase serial (opt-in parallelism).  The
    DETECTED/UNDETECTABLE/ABORTED partition is unchanged by sharding —
    exact SAT decisions are schedule-independent — though the generated
    (pre-compaction) test *set* may differ from the serial one.  Any
    process-layer failure falls back to the serial phase with the coded
    ``MC-FALLBACK-ATPG`` warning.
    """
    start = time.perf_counter()
    # Resolve the backend and execution mode once so a mid-run
    # environment change cannot split the run across backends or modes,
    # then validate batch_size against the resolved backend's pattern
    # capacity (explicit validation instead of silent truncation).
    backend = resolve_backend(backend)
    workers = resolve_workers(workers)
    # The SAT phase has its own knob (REPRO_ATPG_EXEC, defaulting to
    # REPRO_SIM_EXEC); resolve it from the *caller's* argument before
    # the simulation default overwrites it.
    atpg_exec = resolve_atpg_exec(exec_mode)
    exec_mode = resolve_exec(exec_mode)
    capacity = batch_capacity(backend)
    if batch_size is None:
        batch_size = capacity if backend != BACKEND_EVENT else 64
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if batch_size > capacity:
        raise ValueError(
            f"batch_size {batch_size} exceeds the {backend!r} backend's "
            f"capacity of {capacity} patterns per batch"
            + (
                " (raise REPRO_SIM_WORDS to widen the wide backend)"
                if backend != BACKEND_EVENT
                else " (use backend='wide' for larger batches)"
            )
        )
    if budget is None:
        budget = AtpgBudget.from_env()
    result = AtpgResult(n_faults=len(faults))
    if stats is not None:
        result.stats = stats
    stats = result.stats
    classes = collapse_faults(faults)
    reps: List[Fault] = list(classes)
    rng = make_rng(seed)

    inherited_undet: Set[str] = set()
    inherited_det: Set[str] = set()
    if assume_undetectable or assume_detected:
        still: List[Fault] = []
        for rep in reps:
            key = behaviour_key(rep)
            if assume_undetectable and key in assume_undetectable:
                inherited_undet.add(rep.fault_id)
            elif assume_detected and key in assume_detected:
                inherited_det.add(rep.fault_id)
            else:
                still.append(rep)
        reps = still
    stats.verdicts_inherited += len(inherited_undet) + len(inherited_det)
    stats.verdicts_proved += len(reps)

    remaining: List[Fault] = list(reps)
    detected_reps: Set[str] = set()
    tests: List[TestPair] = []

    # ---- seed with inherited tests --------------------------------------
    if initial_tests:
        with stats.phase("atpg.initial_tests"):
            for start_i in range(0, len(initial_tests), batch_size):
                chunk = list(initial_tests[start_i:start_i + batch_size])
                batch = PatternBatch.from_pairs(circuit, chunk)
                words = fault_simulate(
                    circuit, cells, remaining, batch,
                    workers=workers, stats=stats, backend=backend,
                    exec_mode=exec_mode,
                )
                used: Dict[int, TestPair] = {}
                still: List[Fault] = []
                for fault, w in zip(remaining, words):
                    if w:
                        detected_reps.add(fault.fault_id)
                        bit = (w & -w).bit_length() - 1
                        used.setdefault(bit, chunk[bit])
                    else:
                        still.append(fault)
                tests.extend(used[b] for b in sorted(used))
                remaining = still

    # ---- random phase --------------------------------------------------
    quiet = 0
    with stats.phase("atpg.random"):
        for round_no in range(random_rounds):
            if not remaining or quiet >= 2:
                break
            batch = PatternBatch.random(
                circuit, batch_size, seed=rng.getrandbits(32)
            )
            words = fault_simulate(
                circuit, cells, remaining, batch,
                workers=workers, stats=stats, backend=backend,
                    exec_mode=exec_mode,
            )
            new_pairs: Dict[int, TestPair] = {}
            still: List[Fault] = []
            for fault, w in zip(remaining, words):
                if w:
                    detected_reps.add(fault.fault_id)
                    bit = (w & -w).bit_length() - 1
                    if bit not in new_pairs:
                        new_pairs[bit] = _unpack_pair(circuit, batch, bit)
                else:
                    still.append(fault)
            if new_pairs:
                quiet = 0
                tests.extend(new_pairs[b] for b in sorted(new_pairs))
            else:
                quiet += 1
            remaining = still

    # ---- deterministic phase --------------------------------------------
    # One shared incremental solver per scan: the good circuit is encoded
    # once and learned lemmas carry over between faults (see
    # repro.atpg.incremental).  Faults are grouped by site so each shared
    # site cone is encoded and retired exactly once.  Under an explicit
    # process execution mode with enough work the phase is sharded
    # site-cohesively across worker processes (repro.atpg.patpg) — the
    # verdict partition is identical either way (exact decisions are
    # schedule-independent); any process-layer failure falls back to the
    # serial scan below with a coded warning, on untouched state.
    sat_start = time.perf_counter()
    par_outcome = None
    if (
        atpg_exec == EXEC_PROCESS
        and workers > 1
        and len(remaining) >= MIN_PARALLEL_SAT_FAULTS
    ):
        scan = [f for f in remaining if f.fault_id not in detected_reps]
        try:
            par_outcome = process_sat_phase(
                circuit, cells, scan, budget,
                workers=workers, backend=backend, batch_size=batch_size,
                exec_mode=exec_mode, stats=stats,
            )
        except (
            ProcessExecUnavailable, WorkerCrashError,
            SharedMemoryCorruption, WorkerHungError,
        ) as exc:
            if isinstance(exc, WorkerHungError):
                # The failed attempt's staged stats were discarded (the
                # serial rerun recounts the phase); fold the supervision
                # story in from the exception so it stays observable.
                stats.hung_workers += exc.hung_workers
                stats.shard_retries += exc.shard_retries
            warn_coded(
                stats, CODE_FALLBACK_ATPG,
                f"atpg[{circuit.name}]: parallel SAT phase failed "
                f"({exc}); rerunning the deterministic phase serially",
            )
    if par_outcome is not None:
        detected_reps |= par_outcome.detected
        result.undetectable |= par_outcome.undetectable
        aborted_reps = par_outcome.aborted
        abort_reason_reps = dict(par_outcome.abort_reasons)
        tests.extend(par_outcome.tests)
        result.sat_calls += par_outcome.sat_calls
        stats.sat_calls = result.sat_calls
        for key, delta in par_outcome.effort.items():
            setattr(stats, key, getattr(stats, key) + delta)
        stats.sat_shards += par_outcome.shards
        stats.sat_workers = max(stats.sat_workers, par_outcome.workers)
    else:
        engine = IncrementalAtpg(circuit, cells)
        remaining.sort(
            key=lambda f: (engine._site_net(f) or "", f.fault_id)
        )
        pending_drop: List[TestPair] = []
        aborted_reps = set()
        abort_reason_reps: Dict[str, str] = {}
        i = 0
        while i < len(remaining):
            fault = remaining[i]
            i += 1
            if fault.fault_id in detected_reps:
                continue
            result.sat_calls += 1
            detectable, pair = engine.decide(fault, budget)
            if detectable:
                tests.append(pair)
                pending_drop.append(pair)
                detected_reps.add(fault.fault_id)
            elif detectable is False:
                result.undetectable.add(fault.fault_id)
            else:
                # Budget ran out before a proof: unclassified, not
                # undetectable.  Later fresh tests may still detect it.
                aborted_reps.add(fault.fault_id)
                stats.sat_aborts += 1
                reason = engine.last_abort_reason or "unknown"
                abort_reason_reps[fault.fault_id] = reason
                stats.sat_abort_reasons[reason] = \
                    stats.sat_abort_reasons.get(reason, 0) + 1
            # Periodically fault-simulate the fresh tests to drop classes
            # before paying for their SAT calls.
            if len(pending_drop) >= 16 or (
                i == len(remaining) and pending_drop
            ):
                todo = [
                    f for f in remaining[i:]
                    if f.fault_id not in detected_reps
                ]
                if aborted_reps:
                    # Aborted classes sit behind the scan index; fresh
                    # tests can still upgrade them to detected (never
                    # the reverse).
                    todo.extend(
                        f for f in remaining[:i]
                        if f.fault_id in aborted_reps
                    )
                if todo:
                    batch = PatternBatch.from_pairs(circuit, pending_drop)
                    words = fault_simulate(
                        circuit, cells, todo, batch,
                        workers=workers, stats=stats, backend=backend,
                        exec_mode=exec_mode,
                    )
                    for f, w in zip(todo, words):
                        if w:
                            detected_reps.add(f.fault_id)
                            aborted_reps.discard(f.fault_id)
                            abort_reason_reps.pop(f.fault_id, None)
                pending_drop = []
        stats.sat_calls = result.sat_calls
        effort = engine.effort()
        stats.sat_conflicts = effort["sat_conflicts"]
        stats.sat_propagations = effort["sat_propagations"]
        stats.sat_learned = effort["sat_learned"]
        stats.sat_restarts = effort["sat_restarts"]
        stats.sat_lemmas_reused = effort["sat_lemmas_reused"]
    stats.add_phase("atpg.sat", time.perf_counter() - sat_start)

    # ---- expand classes to all member faults ----------------------------
    undetectable_reps = {
        f.fault_id for f in reps
        if f.fault_id not in detected_reps
        and f.fault_id not in aborted_reps
    }
    undetectable_reps |= inherited_undet
    for rep, members in classes.items():
        if rep.fault_id in aborted_reps:
            bucket = result.aborted
            # Every member of an aborted class shares the one decision
            # that tripped the budget, so the reason fans out with it.
            reason = abort_reason_reps.get(rep.fault_id)
            if reason:
                for member in members:
                    result.abort_reasons[member.fault_id] = reason
        elif rep.fault_id in undetectable_reps:
            bucket = result.undetectable
        else:
            bucket = result.detected
        for member in members:
            bucket.add(member.fault_id)

    if aborted_reps:
        # Aborted representatives were counted as to-prove above but no
        # proof happened; keep the proved counter honest.
        stats.verdicts_proved -= len(aborted_reps)
        stats.verdicts_aborted += len(aborted_reps)
        n_aborted = len(result.aborted)
        result.approximate = (
            n_aborted > budget.abort_fraction * result.n_faults
        )
        reason_counts: Dict[str, int] = {}
        for reason in result.abort_reasons.values():
            reason_counts[reason] = reason_counts.get(reason, 0) + 1
        by_reason = ", ".join(
            f"{k}={v}" for k, v in sorted(reason_counts.items())
        )
        message = (
            f"atpg[{circuit.name}]: {n_aborted}/{result.n_faults} faults "
            f"aborted under the resource budget"
            + (f" ({by_reason})" if by_reason else "")
        )
        if result.approximate:
            message += (
                f"; abort tolerance {budget.abort_fraction:.2%} exceeded —"
                " results are approximate (U is a lower bound)"
            )
        stats.degradations.append(message)

    # ---- compaction ------------------------------------------------------
    if compaction and tests:
        detected_rep_faults = [
            f for f in reps if f.fault_id in detected_reps
        ]
        with stats.phase("atpg.compaction"):
            tests = compact_tests(
                circuit, cells, detected_rep_faults, tests,
                workers=workers, stats=stats, backend=backend,
                exec_mode=exec_mode,
            )
    result.tests = tests
    result.runtime = time.perf_counter() - start
    return result


def _unpack_pair(
    circuit: Circuit, batch: PatternBatch, bit: int
) -> TestPair:
    v1 = {pi: (batch.frame1[pi] >> bit) & 1 for pi in circuit.inputs}
    v2 = {pi: (batch.frame2[pi] >> bit) & 1 for pi in circuit.inputs}
    return v1, v2
