"""Static test set compaction.

Classic reverse-order compaction: simulate the test pairs in the reverse
of their generation order and keep only the pairs that detect at least
one fault not covered by a later-kept pair.  This is how the paper's
column *T* (number of tests) stays comparable between the original and
resynthesized designs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.model import Fault
from repro.library.cell import StandardCell
from repro.netlist.circuit import Circuit
from repro.netlist.vsim import batch_capacity
from repro.utils.observability import EngineStats

TestPair = Tuple[Dict[str, int], Dict[str, int]]


def compact_tests(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    tests: Sequence[TestPair],
    *,
    workers: Optional[int] = None,
    stats: Optional[EngineStats] = None,
    backend: Optional[str] = None,
    exec_mode: Optional[str] = None,
) -> List[TestPair]:
    """Reverse-order compaction of *tests* against *faults*.

    The detection matrix is backend- and execution-mode-independent, so
    the kept subset is identical for any *backend* / *exec_mode*; the
    wide backend just builds it in fewer, larger fault-simulation
    batches, and ``workers > 1`` builds each batch's rows in parallel.
    """
    if not tests:
        return []
    n = len(tests)
    word = batch_capacity(backend)
    # detect_matrix[fault index] = bit vector over test indices.
    detect: List[int] = [0] * len(faults)
    for start in range(0, n, word):
        chunk = tests[start:start + word]
        batch = PatternBatch.from_pairs(circuit, chunk)
        words = fault_simulate(
            circuit, cells, faults, batch,
            workers=workers, stats=stats, backend=backend,
            exec_mode=exec_mode,
        )
        for fi, w in enumerate(words):
            detect[fi] |= w << start
    uncovered = [fi for fi, w in enumerate(detect) if w]
    kept: List[int] = []
    covered = set()
    for ti in reversed(range(n)):
        bit = 1 << ti
        new = [fi for fi in uncovered
               if fi not in covered and detect[fi] & bit]
        if new:
            kept.append(ti)
            covered.update(new)
    kept.reverse()
    return [tests[ti] for ti in kept]
