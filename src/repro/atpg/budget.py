"""Resource governance for the exact ATPG kernel.

:class:`AtpgBudget` bundles the per-fault resource limits of a SAT
decision — a wall-clock deadline plus conflict/decision budgets — and
the global *abort fraction* beyond which a run is downgraded to
explicitly-flagged approximate mode.  The default budget is unlimited,
in which case every code path is bit-identical to the ungoverned
engine; limits are opt-in, per call or through the environment:

* ``REPRO_ATPG_DEADLINE_MS`` — per-fault wall-clock deadline;
* ``REPRO_ATPG_CONFLICT_BUDGET`` — per-fault solver conflict budget;
* ``REPRO_ATPG_DECISION_BUDGET`` — per-fault solver decision budget;
* ``REPRO_ATPG_ABORT_FRACTION`` — tolerated fraction of aborted faults
  before the run is flagged approximate (default 0.05).

A budgeted decision has three outcomes instead of two — the verdict
constants :data:`DETECTED` / :data:`UNDETECTABLE` / :data:`ABORTED`
name them.  An aborted fault is *unclassified*: it is never counted as
undetectable (the paper's acceptance criterion), never dropped from F,
and is reported separately (see :class:`repro.atpg.engine.AtpgResult`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

DETECTED = "detected"
UNDETECTABLE = "undetectable"
ABORTED = "aborted"

#: Default tolerated fraction of aborted faults before a run is flagged
#: approximate (see :attr:`AtpgBudget.abort_fraction`).
DEFAULT_ABORT_FRACTION = 0.05


def verdict_name(flag: Optional[bool]) -> str:
    """Map a three-valued solve result to its verdict constant.

    ``True`` (SAT: a test exists) -> :data:`DETECTED`; ``False`` (UNSAT:
    proved undetectable) -> :data:`UNDETECTABLE`; ``None`` (resource
    budget exhausted before a proof) -> :data:`ABORTED`.
    """
    if flag is True:
        return DETECTED
    if flag is False:
        return UNDETECTABLE
    return ABORTED


@dataclass(frozen=True)
class AtpgBudget:
    """Per-fault resource limits plus the global abort tolerance.

    All three per-fault limits default to None (unlimited): an
    unlimited budget never changes a verdict, a counter, or a test
    pattern relative to the ungoverned engine.
    """

    deadline_ms: Optional[float] = None
    conflict_budget: Optional[int] = None
    decision_budget: Optional[int] = None
    abort_fraction: float = DEFAULT_ABORT_FRACTION

    @property
    def unlimited(self) -> bool:
        """True iff no per-fault limit is set (the exact default path)."""
        return (
            self.deadline_ms is None
            and self.conflict_budget is None
            and self.decision_budget is None
        )

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> "AtpgBudget":
        """Budget from ``REPRO_ATPG_*`` variables (unlimited when unset)."""
        env = os.environ if environ is None else environ

        def _float(name: str) -> Optional[float]:
            raw = env.get(name, "").strip()
            return float(raw) if raw else None

        def _int(name: str) -> Optional[int]:
            raw = env.get(name, "").strip()
            return int(raw) if raw else None

        fraction = _float("REPRO_ATPG_ABORT_FRACTION")
        return cls(
            deadline_ms=_float("REPRO_ATPG_DEADLINE_MS"),
            conflict_budget=_int("REPRO_ATPG_CONFLICT_BUDGET"),
            decision_budget=_int("REPRO_ATPG_DECISION_BUDGET"),
            abort_fraction=(
                DEFAULT_ABORT_FRACTION if fraction is None else fraction
            ),
        )


#: The default, exact budget: no per-fault limits.
UNLIMITED = AtpgBudget()
