"""Process-parallel deterministic ATPG: site-sharded SAT phase.

PR 6 made fault *simulation* multi-core; this module does the same for
the deterministic SAT phase of :func:`repro.atpg.engine.run_atpg`, which
dominates end-to-end resynthesis time.  The site-sorted representative
faults are partitioned into **site-cohesive shards** (whole sites, LPT
by summed output-cone size, using the same cone-cost model as
:func:`repro.faults.fsim._partition_faults`), and each shard runs on a
worker process from the cached forked pool of :mod:`repro.faults.psim`
with its own **persistent** :class:`~repro.atpg.incremental.
IncrementalAtpg` — learned-clause reuse stays high within a shard, and
the worker's solver (good-circuit encoding included) survives across
shard tasks of the same circuit topology.

Cross-shard ``pending_drop`` economics are preserved by a **test
board**: one lock-free shared-memory block with a single-writer region
per shard.  A worker publishes each SAT-discovered test pair as a row
of packed PI words followed by a store to its own published-pair
counter; before paying for further SAT calls it polls the other shards'
counters and fault-simulates any fresh foreign pairs against its
remaining classes, exactly like the serial phase's periodic drop pass.
The board needs no locks and no CRC because it is an *optimization
only*: fault-simulating any bit pattern is sound (a pattern that
detects fault F proves F detectable; a torn or stale read merely fails
to drop a class that a later exact SAT call decides anyway).  All
authoritative verdicts and test pairs travel through the pickled task
results, never through the board.

Verdict identity with the serial phase is structural, not scheduled:
an unbudgeted SAT decision is exact, so DETECTED is precisely the set
of detectable faults and UNDETECTABLE precisely the proved-impossible
set no matter how faults are interleaved, dropped early, or sharded —
the partitions are bit-identical to serial by construction (the
differential suite locks this over all bench circuits).  Under a
per-fault budget every worker enforces the same per-fault allowance
serial would grant (budgets are per-decision, so sharding never
*increases* any fault's resources), aborts stay conservative
(never counted undetectable), and the parent runs a final authoritative
upgrade pass simulating every discovered test against the aborted
residue so cross-shard tests can still upgrade aborts to detected.

Failure handling mirrors :mod:`repro.faults.psim`: unavailable process
execution raises :class:`~repro.faults.psim.ProcessExecUnavailable`, a
worker death mid-shard (the ``atpg.shard`` chaos seam injects exactly
this) raises :class:`~repro.faults.psim.WorkerCrashError` after the
broken pool is retired and the board unlinked; ``run_atpg`` turns
either into the coded ``MC-FALLBACK-ATPG`` warning and reruns the phase
serially on untouched state.  Worker ``EngineStats`` deltas and solver
effort snapshots are staged and merged only after every shard
succeeded.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.atpg.budget import AtpgBudget
from repro.atpg.compaction import TestPair
from repro.atpg.incremental import IncrementalAtpg, fault_site_net
from repro.faults.model import Fault
from repro.faults.psim import (
    CODE_NO_SHM,
    CODE_UNPICKLABLE,
    ProcessExecUnavailable,
    SharedMemoryCorruption,
    WorkerCrashError,
    _attach,
    _discard_pool,
    _kill_pool,
    _pool_for,
    _WORKER_STATE,
    SHM_PREFIX,
    register_segment,
    shm_supported,
)
from repro.library.cell import StandardCell
from repro.netlist.circuit import Circuit
from repro.netlist.simulator import CompiledCircuit
from repro.netlist.vsim import EXEC_SERIAL, pack_word, unpack_word
from repro.utils import seams
from repro.utils.observability import EngineStats, warn_coded
from repro.utils.supervise import (
    CODE_BREAKER_OPEN,
    CODE_SHARD_RETRY,
    CODE_WORKER_HUNG,
    SuperviseConfig,
    WorkerHungError,
    active_core_share,
    breaker_for,
    resolve_supervision,
    supervise_futures,
)

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - stdlib always has it on 3.8+
    shared_memory = None  # type: ignore[assignment]

# Coded warning emitted by run_atpg when the parallel phase falls back.
CODE_FALLBACK_ATPG = "MC-FALLBACK-ATPG"

# Below this many representative faults the per-worker solver encodings
# cost more than the SAT work they split; run_atpg keeps the phase
# serial (no warning — this is policy, not failure).
MIN_PARALLEL_SAT_FAULTS = 8

# Same flush cadence as the serial phase's pending_drop economics.
_DROP_EVERY = 16


# ----------------------------------------------------------------------
# Lock-free cross-shard test board
# ----------------------------------------------------------------------
class TestBoard:
    """Shared block of published test pairs, one single-writer region per shard.

    Layout (uint64 throughout): ``nshards`` published-pair counters,
    ``nshards`` supervision heartbeats, then the concatenated shard
    regions; shard *s* owns ``caps[s]`` rows of ``2 * pi_words`` words
    (frame-1 then frame-2 PI bits, packed in ``circuit.inputs`` order).
    Worker *s* writes a row, then stores its counter — it is the only
    writer of both, so no synchronization is needed.  Readers may
    observe a torn row or a stale counter; both are harmless because
    the board only feeds fault simulation, which is sound for arbitrary
    patterns (see the module docstring).  The heartbeat row is equally
    advisory: workers bump their slot per SAT decision and per drop
    batch, and the parent's supervisor only compares values for change
    — a torn or garbage beat can at worst delay hang detection by one
    poll.
    """

    def __init__(self, shm, caps: Sequence[int], pi_words: int):
        self.shm = shm
        self.caps = list(caps)
        self.pi_words = pi_words
        self.offsets: List[int] = []
        acc = 0
        for c in self.caps:
            self.offsets.append(acc)
            acc += c
        self.total_rows = acc
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def nbytes(self) -> int:
        return (
            16 * len(self.caps) + self.total_rows * 2 * self.pi_words * 8
        )

    @classmethod
    def create(cls, caps: Sequence[int], pi_words: int) -> "TestBoard":
        nbytes = 16 * len(caps) + sum(caps) * 2 * pi_words * 8
        try:
            shm = shared_memory.SharedMemory(
                create=True,
                size=max(8, nbytes),
                name=f"{SHM_PREFIX}atpg_{os.getpid()}_{id(caps) & 0xFFFF}",
            )
        except FileExistsError:
            shm = shared_memory.SharedMemory(create=True, size=max(8, nbytes))
        except Exception as exc:
            raise ProcessExecUnavailable(
                CODE_NO_SHM, f"shared memory unavailable: {exc}"
            ) from exc
        shm.buf[: 16 * len(caps)] = b"\x00" * (16 * len(caps))
        board = cls(shm, caps, pi_words)
        register_segment(board)
        return board

    def heartbeats(self) -> Dict[int, int]:
        """Current per-shard heartbeat values (supervisor-side read)."""
        if self._unlinked or not self.caps:
            return {}
        hb = np.ndarray(
            (len(self.caps),), dtype=np.uint64, buffer=self.shm.buf,
            offset=8 * len(self.caps),
        )
        return {i: int(hb[i]) for i in range(len(self.caps))}

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


def _pack_pair(
    pair: TestPair, pi_order: Sequence[str], pi_words: int
) -> np.ndarray:
    v1, v2 = pair
    f1 = 0
    f2 = 0
    for i, pi in enumerate(pi_order):
        f1 |= (v1.get(pi, 0) & 1) << i
        f2 |= (v2.get(pi, 0) & 1) << i
    row = np.empty(2 * pi_words, dtype=np.uint64)
    row[:pi_words] = pack_word(f1, pi_words)
    row[pi_words:] = pack_word(f2, pi_words)
    return row


def _unpack_pair_row(
    row: np.ndarray, pi_order: Sequence[str], pi_words: int
) -> TestPair:
    f1 = unpack_word(row[:pi_words])
    f2 = unpack_word(row[pi_words:])
    v1 = {pi: (f1 >> i) & 1 for i, pi in enumerate(pi_order)}
    v2 = {pi: (f2 >> i) & 1 for i, pi in enumerate(pi_order)}
    return v1, v2


# ----------------------------------------------------------------------
# Site-cohesive LPT sharding
# ----------------------------------------------------------------------
def site_shards(
    circuit: Circuit,
    plan: CompiledCircuit,
    faults: Sequence[Fault],
    workers: int,
) -> List[List[Fault]]:
    """Partition *faults* into at most *workers* site-cohesive shards.

    All faults sharing a site net land in the same shard, so each
    shard's engine encodes (and retires) every site cone exactly once —
    splitting a site would duplicate its cone encoding across workers
    and break the single-active-cone scan the engine relies on.  Site
    groups are LPT-assigned by summed cone cost (the thread/process
    fault-sim partitioner's cost model) and each shard is sorted by
    ``(site, fault_id)``, the serial phase's scan order.  Deterministic:
    no randomness, ties broken by site key then shard index.
    """
    from repro.faults.fsim import _fault_site_index

    cone = plan.cone_sizes()
    groups: Dict[str, List[Fault]] = {}
    costs: Dict[str, int] = {}
    for fault in faults:
        site = fault_site_net(circuit, fault) or ""
        groups.setdefault(site, []).append(fault)
        idx = _fault_site_index(plan, fault)
        costs[site] = costs.get(site, 0) + (
            cone[idx] if idx is not None else 1
        )
    order = sorted(groups, key=lambda s: (-costs[s], s))
    n = min(workers, len(groups))
    shards: List[List[Fault]] = [[] for _ in range(n)]
    loads = [0] * n
    for site in order:
        tgt = min(range(n), key=lambda i: (loads[i], i))
        shards[tgt].extend(groups[site])
        loads[tgt] += costs[site]
    for shard in shards:
        shard.sort(key=lambda f: (fault_site_net(circuit, f) or "", f.fault_id))
    return [s for s in shards if s]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_atpg_engine() -> IncrementalAtpg:
    """This worker's persistent incremental engine for the pool's circuit.

    Keyed by topology token so a stale engine (the parent resynthesized
    and — somehow — kept the pool) is rebuilt rather than trusted; in
    practice :func:`~repro.faults.psim._pool_for` retires pools on
    topology change, so the engine survives for the lifetime of the
    circuit and its learned clauses and good-circuit encoding amortize
    across every shard task the worker receives.
    """
    circuit = _WORKER_STATE["circuit"]
    cells = _WORKER_STATE["cells"]
    token = circuit.topology_token()
    engine = _WORKER_STATE.get("atpg_engine")
    if (
        engine is None
        or _WORKER_STATE.get("atpg_engine_token") != token
        or engine.circuit is not circuit
    ):
        engine = IncrementalAtpg(circuit, cells)
        _WORKER_STATE["atpg_engine"] = engine
        _WORKER_STATE["atpg_engine_token"] = token
    return engine


def _run_sat_shard(blob: bytes) -> Dict[str, object]:
    """Decide one shard's faults; returns records, tests and effort deltas.

    Runs the exact serial scan loop (site-sorted faults, pending-drop
    flush every 16 discoveries or at end-of-shard, aborted-behind-index
    upgrade) against this worker's persistent engine, publishing each
    discovered pair to the test board and folding foreign pairs into
    every drop pass.  In-worker fault simulation is strictly serial —
    nested pools are never created.  Fork safety: the pool's workers
    fork while the parent sits in the dispatch path, where the plan and
    good-value cache locks are free, so the worker may use the ordinary
    locked simulation entry points.
    """
    task = pickle.loads(blob)
    if seams.active:
        # Robustness-test seam (fires in the worker): a handler may
        # SIGKILL this process to model a mid-shard SAT worker death.
        seams.fire(
            "atpg.shard",
            shard=task["shard"],
            n_faults=len(task["faults"]),
            pid=os.getpid(),
        )
    from repro.atpg.compaction import TestPair  # noqa: F401 (typing only)
    from repro.faults.fsim import PatternBatch, fault_simulate

    circuit = _WORKER_STATE["circuit"]
    cells = _WORKER_STATE["cells"]
    engine = _worker_atpg_engine()
    faults: List[Fault] = task["faults"]
    budget: Optional[AtpgBudget] = task["budget"]
    backend: str = task["backend"]
    batch_size: int = task["batch_size"]
    shard: int = task["shard"]
    caps: List[int] = task["caps"]
    pi_words: int = task["pi_words"]
    nshards = len(caps)
    pi_order = tuple(circuit.inputs)
    row_words = 2 * pi_words

    shm = _attach(task["board"])
    try:
        counters = np.ndarray((nshards,), dtype=np.uint64, buffer=shm.buf)
        hb = np.ndarray(
            (nshards,), dtype=np.uint64, buffer=shm.buf, offset=8 * nshards
        )
        hb[shard] += 1
        if seams.active:
            # Chaos seam for the supervision layer: handlers hang or
            # slow this shard, or scribble a torn partial write into
            # the board's counter/heartbeat words, to exercise stall
            # detection and the board's torn-read soundness.
            seams.fire(
                "atpg.shard_start",
                shard=shard,
                pid=os.getpid(),
                counters=counters,
                heartbeats=hb,
            )
        offsets: List[int] = task["offsets"]
        total_rows = task["total_rows"]
        rows = (
            np.ndarray(
                (total_rows, row_words),
                dtype=np.uint64,
                buffer=shm.buf,
                offset=16 * nshards,
            )
            if total_rows
            else None
        )

        published = 0

        def publish(pair: TestPair) -> None:
            nonlocal published
            if rows is None or published >= caps[shard]:
                return
            rows[offsets[shard] + published] = _pack_pair(
                pair, pi_order, pi_words
            )
            published += 1
            # Counter store is the publication point; the row write
            # above happens-before it from this (single) writer's view.
            counters[shard] = published

        cursors = [0] * nshards

        def fetch_foreign() -> List[TestPair]:
            if rows is None:
                return []
            fresh: List[TestPair] = []
            for s in range(nshards):
                if s == shard:
                    continue
                avail = min(int(counters[s]), caps[s])
                while cursors[s] < avail:
                    fresh.append(
                        _unpack_pair_row(
                            rows[offsets[s] + cursors[s]], pi_order, pi_words
                        )
                    )
                    cursors[s] += 1
            return fresh

        stats = EngineStats()
        before = engine.effort()
        status: Dict[str, str] = {}
        abort_reasons: Dict[str, str] = {}
        my_tests: List[TestPair] = []
        pending: List[TestPair] = []
        aborted_ids: Set[str] = set()
        dropped: Set[str] = set()
        sat_calls = 0
        i = 0
        while i < len(faults):
            fault = faults[i]
            i += 1
            if fault.fault_id in dropped:
                continue
            sat_calls += 1
            hb[shard] += 1
            detectable, pair = engine.decide(fault, budget)
            if detectable:
                my_tests.append(pair)
                pending.append(pair)
                status[fault.fault_id] = "detected"
                publish(pair)
            elif detectable is False:
                status[fault.fault_id] = "undetectable"
            else:
                status[fault.fault_id] = "aborted"
                aborted_ids.add(fault.fault_id)
                stats.sat_aborts += 1
                reason = (
                    getattr(engine, "last_abort_reason", None) or "unknown"
                )
                abort_reasons[fault.fault_id] = reason
                stats.sat_abort_reasons[reason] = \
                    stats.sat_abort_reasons.get(reason, 0) + 1
            at_end = i == len(faults)
            if len(pending) >= _DROP_EVERY or at_end or i % _DROP_EVERY == 0:
                drop_pairs = pending + fetch_foreign()
                pending = []
                if not drop_pairs:
                    continue
                todo = [
                    f for f in faults[i:] if f.fault_id not in dropped
                ]
                todo.extend(
                    f for f in faults[:i] if f.fault_id in aborted_ids
                )
                for lo in range(0, len(drop_pairs), batch_size):
                    if not todo:
                        break
                    hb[shard] += 1
                    chunk = drop_pairs[lo:lo + batch_size]
                    batch = PatternBatch.from_pairs(circuit, chunk)
                    words = fault_simulate(
                        circuit, cells, todo, batch,
                        workers=1, stats=stats, backend=backend,
                        exec_mode=EXEC_SERIAL,
                    )
                    still: List[Fault] = []
                    for f, w in zip(todo, words):
                        if w:
                            dropped.add(f.fault_id)
                            # sat_aborts counts abort *events* (serial
                            # semantics): an upgraded abort stays counted.
                            aborted_ids.discard(f.fault_id)
                            abort_reasons.pop(f.fault_id, None)
                            status.setdefault(f.fault_id, "dropped")
                            if status[f.fault_id] == "aborted":
                                status[f.fault_id] = "dropped"
                        else:
                            still.append(f)
                    todo = still
        after = engine.effort()
        return {
            "shard": shard,
            "status": status,
            "abort_reasons": abort_reasons,
            "tests": my_tests,
            "sat_calls": sat_calls,
            "effort": {k: after[k] - before[k] for k in after},
            "stats": stats,
        }
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Parent-side driver
# ----------------------------------------------------------------------
@dataclass
class ParallelSatOutcome:
    """Merged result of the sharded SAT phase, applied only on full success."""

    detected: Set[str] = field(default_factory=set)
    undetectable: Set[str] = field(default_factory=set)
    aborted: Set[str] = field(default_factory=set)
    abort_reasons: Dict[str, str] = field(default_factory=dict)
    tests: List[TestPair] = field(default_factory=list)
    sat_calls: int = 0
    effort: Dict[str, int] = field(default_factory=dict)
    shards: int = 0
    workers: int = 0


def _dispatch_sat_shards(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    shards: Sequence[Sequence[Fault]],
    caps: Sequence[int],
    pi_words: int,
    budget: Optional[AtpgBudget],
    backend: str,
    batch_size: int,
    workers: int,
    sup: SuperviseConfig,
    local: EngineStats,
    outcome: "ParallelSatOutcome",
) -> None:
    """Submit the SAT shards, supervise them, and merge into *outcome*.

    Supervision mirrors :func:`repro.faults.psim._dispatch_shards`: with
    a shard deadline active, the test board's heartbeat row is polled
    alongside the futures, a stale shard gets the pool killed and
    rebuilt, and the lost shards re-run once on the same board (sound:
    the board is advisory, and a re-run worker republishing its region
    only shrinks the counter other shards read — they simply fetch
    nothing new until it catches back up).  Shard outputs are staged per
    shard id and merged only after every shard has succeeded.
    """
    pool = _pool_for(circuit, cells, workers)
    board = TestBoard.create(caps, pi_words)
    try:
        staged: Dict[int, Dict[str, object]] = {}
        pending = list(range(len(shards)))
        shard_timeout = sup.effective_timeout()
        hang_retried = False
        while pending:
            futures: Dict[int, Future] = {}
            for s in pending:
                task = {
                    "board": board.name,
                    "caps": list(caps),
                    "offsets": board.offsets,
                    "total_rows": board.total_rows,
                    "pi_words": pi_words,
                    "shard": s,
                    "faults": shards[s],
                    "budget": budget,
                    "backend": backend,
                    "batch_size": batch_size,
                }
                try:
                    blob = pickle.dumps(task)
                except Exception as exc:
                    raise ProcessExecUnavailable(
                        CODE_UNPICKLABLE, f"ATPG shard not picklable: {exc}"
                    ) from exc
                futures[s] = pool.submit(_run_sat_shard, blob)
            try:
                # Stage every shard's output and merge only once all of
                # them succeeded, so a failed shard can never leave a
                # half-applied phase behind (the serial fallback reruns
                # on clean state).
                done, hung = supervise_futures(
                    futures,
                    board.heartbeats,
                    shard_timeout=shard_timeout,
                    poll_s=sup.poll_s,
                    stats=local,
                )
                for s in done:
                    staged[s] = futures[s].result()
                if hung:
                    local.hung_workers += len(hung)
                    _kill_pool(pool)
                    lost = [s for s in pending if s not in staged]
                    if hang_retried:
                        raise WorkerHungError(
                            f"{len(hung)} SAT-phase shard(s) hung past "
                            f"the {shard_timeout:.2f}s deadline again "
                            f"after a pool rebuild; the phase reruns "
                            f"serially",
                            hung_workers=local.hung_workers,
                            shard_retries=local.shard_retries,
                        )
                    hang_retried = True
                    warn_coded(
                        local, CODE_WORKER_HUNG,
                        f"reaped {len(hung)} hung SAT worker(s) on "
                        f"{circuit.name} (no heartbeat for "
                        f"{shard_timeout:.2f}s); pool killed and rebuilt",
                    )
                    warn_coded(
                        local, CODE_SHARD_RETRY,
                        f"re-running {len(lost)} lost SAT shard(s) on a "
                        f"fresh pool (one-shot retry before the serial "
                        f"fallback)",
                    )
                    local.shard_retries += len(lost)
                    pool = _pool_for(circuit, cells, workers)
                    pending = lost
                    continue
                pending = []
            except BrokenProcessPool as exc:
                _discard_pool(pool)
                raise WorkerCrashError(
                    f"{CODE_FALLBACK_ATPG}: a SAT-phase worker died "
                    f"mid-shard ({exc}); the test board was unlinked — "
                    f"the phase reruns serially"
                ) from exc
        for s in sorted(staged):
            out = staged[s]
            outcome.sat_calls += out["sat_calls"]
            outcome.tests.extend(out["tests"])
            local.merge(out["stats"])
            for k, v in out["effort"].items():
                outcome.effort[k] = outcome.effort.get(k, 0) + v
            outcome.abort_reasons.update(out.get("abort_reasons", {}))
            for fid, st in out["status"].items():
                if st in ("detected", "dropped"):
                    outcome.detected.add(fid)
                elif st == "undetectable":
                    outcome.undetectable.add(fid)
                else:
                    outcome.aborted.add(fid)
    finally:
        board.close()


def process_sat_phase(
    circuit: Circuit,
    cells: Mapping[str, StandardCell],
    faults: Sequence[Fault],
    budget: Optional[AtpgBudget],
    *,
    workers: int,
    backend: str,
    batch_size: int,
    exec_mode: str,
    stats: Optional[EngineStats] = None,
) -> ParallelSatOutcome:
    """Run the deterministic SAT phase of *faults* across worker processes.

    *faults* are the undetected representatives at the end of the random
    phase; every one of them receives a verdict.  Budget conservatism:
    :class:`~repro.atpg.budget.AtpgBudget` limits are **per fault**, so
    each worker enforces exactly the allowance the serial scan would —
    sharding slices the phase's total deadline across shards implicitly
    and can never grant any single fault more resources than serial.
    The aborted-never-undetectable invariant is preserved end to end,
    including a final parent-side upgrade pass that simulates every
    discovered test (all shards) against the aborted residue, so a test
    found in shard A still upgrades shard B's abort exactly like the
    serial aborted-behind-index pass.

    Raises :class:`~repro.faults.psim.ProcessExecUnavailable` when
    process execution cannot run here (including an open circuit
    breaker, ``MC-BREAKER-OPEN``),
    :class:`~repro.faults.psim.WorkerCrashError` when a SAT worker dies
    mid-shard, and :class:`~repro.utils.supervise.WorkerHungError` when
    a shard hangs past its deadline twice (initial run plus the
    one-shot rebuilt-pool retry); ``run_atpg`` maps each to the
    ``MC-FALLBACK-ATPG`` coded warning and a serial rerun on untouched
    state.  *exec_mode* governs only the parent's own upgrade-pass
    fault simulation.
    """
    if not shm_supported():
        raise ProcessExecUnavailable(
            CODE_NO_SHM, "multiprocessing.shared_memory is not functional"
        )
    from repro.faults.fsim import PatternBatch, fault_simulate

    local = EngineStats()
    # Same dispatch-time ledger renegotiation as the psim pool: the SAT
    # shard count tracks the campaign scheduler's current fair share.
    share = active_core_share()
    if share is not None:
        workers = max(1, min(workers, share))
        local.ledger_grants += 1
        local.ledger_workers = max(local.ledger_workers, workers)
    plan = CompiledCircuit.get(circuit, cells, stats=local)
    shards = site_shards(circuit, plan, faults, workers)
    caps = [len(s) for s in shards]
    pi_words = max(1, -(-len(circuit.inputs) // 64))

    sup = resolve_supervision()
    # Identity-compared topology token -> hashable breaker key (see
    # repro.faults.psim.process_fault_simulate).
    bkey = ("atpg", circuit.name, id(circuit.topology_token()))
    breaker = breaker_for(bkey, sup)
    if breaker is not None and not breaker.allow():
        if stats is not None:
            stats.breaker_state[str(bkey)] = breaker.state
        raise ProcessExecUnavailable(
            CODE_BREAKER_OPEN,
            f"ATPG process breaker is open after {breaker.failures} "
            f"consecutive process-layer failures; next half-open probe "
            f"in {breaker.seconds_until_probe():.1f}s",
        )
    outcome = ParallelSatOutcome(shards=len(shards), workers=workers)
    try:
        _dispatch_sat_shards(
            circuit, cells, shards, caps, pi_words, budget, backend,
            batch_size, workers, sup, local, outcome,
        )
    except (WorkerCrashError, SharedMemoryCorruption, WorkerHungError):
        if breaker is not None:
            breaker.record_failure()
            if stats is not None:
                stats.breaker_state[str(bkey)] = breaker.state
        raise
    except BaseException:
        if breaker is not None:
            breaker.cancel_probe()
        raise
    if breaker is not None:
        breaker.record_success()
        local.breaker_state[str(bkey)] = breaker.state

    # Authoritative cross-shard upgrade: a test discovered anywhere may
    # detect an aborted fault from any shard (aborts are schedule-
    # dependent; detection is not).  Never the reverse direction.
    if outcome.aborted and outcome.tests:
        aborted_faults = [
            f for f in faults if f.fault_id in outcome.aborted
        ]
        for lo in range(0, len(outcome.tests), batch_size):
            if not aborted_faults:
                break
            chunk = outcome.tests[lo:lo + batch_size]
            batch = PatternBatch.from_pairs(circuit, chunk)
            words = fault_simulate(
                circuit, cells, aborted_faults, batch,
                workers=workers, stats=local, backend=backend,
                exec_mode=exec_mode,
            )
            still = []
            for f, w in zip(aborted_faults, words):
                if w:
                    outcome.aborted.discard(f.fault_id)
                    outcome.abort_reasons.pop(f.fault_id, None)
                    outcome.detected.add(f.fault_id)
                else:
                    still.append(f)
            aborted_faults = still

    if stats is not None:
        stats.merge(local)
    return outcome
