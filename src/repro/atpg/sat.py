"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal
propagation with dedicated binary-implication lists (a circuit CNF is
mostly two-literal clauses, which skip the watch machinery entirely),
first-UIP conflict analysis with clause learning, non-chronological
backjumping, VSIDS-style decaying activities with a lazy heap, phase
saving, and geometric restarts.  Written for the
instance profile of circuit ATPG (tens of thousands of small clauses,
shallow proofs) — undetectable faults produce genuine UNSAT results.

The public API uses DIMACS-style signed literals (variable ``v`` has
positive literal ``v``, negative ``-v``); internally literals are encoded
unsigned as ``2*v`` / ``2*v + 1`` so the hot paths avoid sign handling.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Sequence

SAT = True
UNSAT = False
#: Three-valued solve outcome: a resource budget (conflicts, decisions
#: or deadline) ran out before a proof either way.  Distinct from UNSAT
#: on purpose — an UNKNOWN answer must never be counted as a proof.
UNKNOWN = None

_UNDEF = 2  # value code for unassigned (0 = false, 1 = true)


def _enc(lit: int) -> int:
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


def _dec(elit: int) -> int:
    var = elit >> 1
    return -var if elit & 1 else var


class Solver:
    """CDCL SAT solver; construct, :meth:`add_clause`, :meth:`solve`."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []  # encoded literals
        self._watches: List[List[int]] = [[], []]  # per encoded literal
        # Binary clauses propagate through dedicated implication lists:
        # _bins[falsified_lit] holds (implied_lit, clause_index) pairs,
        # so the two-literal case (the bulk of a circuit CNF) skips the
        # watch machinery entirely.  Binary clauses still live in
        # :attr:`clauses` — conflict analysis needs the index — but are
        # never watch-registered and never tombstoned (see
        # :meth:`reduce_learnts`), so the lists stay free of dead pairs.
        self._bins: List[List[tuple]] = [[], []]
        self._val = bytearray([_UNDEF, _UNDEF])  # per encoded literal
        self._level: List[int] = [0]
        self._reason: List[Optional[int]] = [None]
        self._trail: List[int] = []  # encoded literals
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._heap: List[tuple] = []  # (-activity, var) lazy entries
        # _hflag[v] == 1 iff the heap holds an entry matching v's current
        # activity.  Lets _backtrack re-push only variables whose entry
        # was consumed (decisions) instead of the whole unwound trail —
        # the heap traffic drops from O(trail) to O(decisions + bumps).
        self._hflag = bytearray([0])
        self._phase = bytearray([0])
        self._ok = True
        # Model state: a bytes snapshot of the assignment at the moment
        # of SAT (O(1) value_of lookups, C-speed copy) plus a lazily
        # materialized signed-literal list for the public .model API.
        self._model_val: bytes = bytes(self._val)
        self._model: Optional[List[int]] = []
        self._learnt: List[int] = []  # indices of learned clauses
        self._glue: dict = {}  # learned clause index -> LBD at learn time
        self.conflicts = 0
        self.propagations = 0  # literals whose watch lists were processed
        self.learned = 0  # learned clauses recorded (units included)
        self.restarts = 0  # restarts taken across all solve() calls
        # Which budget tripped the last UNKNOWN answer ("conflicts",
        # "decisions" or "deadline"); None after a decided solve.
        self.last_abort_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self._val.extend((_UNDEF, _UNDEF))
        self._watches.append([])
        self._watches.append([])
        self._bins.append([])
        self._bins.append([])
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(0)
        self._hflag.append(1)
        heapq.heappush(self._heap, (0.0, self.num_vars))
        return self.num_vars

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause (signed literals); False if trivially UNSAT."""
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in lits:
            e = _enc(lit)
            if e ^ 1 in seen:
                return True  # tautology
            if e not in seen:
                seen.add(e)
                clause.append(e)
        val = self._val
        filtered: List[int] = []
        for e in clause:
            v = val[e]
            if v == 1:  # satisfied at level 0 (we only add at level 0)
                return True
            if v == 0:
                continue
            filtered.append(e)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        idx = len(self.clauses)
        self.clauses.append(filtered)
        self._attach_clause(idx, filtered)
        return True

    def _attach_clause(self, idx: int, clause: List[int]) -> None:
        """Index a new clause for propagation (length >= 2).

        ``_bins[lit]`` lists the implications fired when *lit* itself is
        falsified — the same key convention as the watch lists.
        """
        if len(clause) == 2:
            self._bins[clause[0]].append((clause[1], idx))
            self._bins[clause[1]].append((clause[0], idx))
        else:
            self._watches[clause[0]].append(idx)
            self._watches[clause[1]].append(idx)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_budget: Optional[int] = None,
        decision_budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Decide satisfiability; fills :attr:`model` on SAT.

        The keyword-only limits bound this call's effort: *conflict_budget*
        and *decision_budget* cap the conflicts/decisions spent here,
        *deadline* is an absolute :func:`time.perf_counter` timestamp.
        When any limit is exhausted before a proof, the solver backtracks
        to level 0 and returns :data:`UNKNOWN` (None) — learned clauses
        are kept (they are sound regardless), and the solver remains
        usable for further solves.  With no limits set (the default) the
        return value is exactly the classic two-valued answer.
        """
        self.last_abort_reason = None
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return UNSAT
        enc_assumps = [_enc(a) for a in assumptions]
        # Assumption-aware restart schedule.  ATPG issues thousands of
        # small assumption-driven queries against one long-lived solver;
        # a restart only rewinds to the assumption level (never level 0),
        # so restarting is cheap and escaping a bad phase/activity rut
        # early pays off.  Plain refutations keep the classic lazier
        # schedule: they are one-shot and level-0 rewinds cost more.
        restart_limit = 32 if enc_assumps else 100
        conflicts_here = 0
        limited = (
            conflict_budget is not None
            or decision_budget is not None
            or deadline is not None
        )
        spent_conflicts = 0
        spent_decisions = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if limited:
                    spent_conflicts += 1
                    if (
                        conflict_budget is not None
                        and spent_conflicts > conflict_budget
                    ):
                        self.last_abort_reason = "conflicts"
                        self._backtrack(0)
                        return UNKNOWN
                    if (
                        deadline is not None
                        and time.perf_counter() > deadline
                    ):
                        self.last_abort_reason = "deadline"
                        self._backtrack(0)
                        return UNKNOWN
                if len(self._trail_lim) <= len(enc_assumps):
                    self._backtrack(0)
                    if not enc_assumps:
                        self._ok = False
                    return UNSAT
                learnt, back_level = self._analyze(conflict)
                if back_level < len(enc_assumps):
                    back_level = len(enc_assumps)
                self._backtrack(back_level)
                self._record_learnt(learnt)
                self._var_inc /= 0.95
                if conflicts_here >= restart_limit:
                    conflicts_here = 0
                    restart_limit = int(restart_limit * 2)
                    self.restarts += 1
                    self._backtrack(
                        min(len(enc_assumps), len(self._trail_lim))
                    )
                continue
            if len(self._trail_lim) < len(enc_assumps):
                # Place the next assumption as a pseudo-decision.
                e = enc_assumps[len(self._trail_lim)]
                v = self._val[e]
                if v == 0:
                    self._backtrack(0)
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                if v != 1:
                    self._enqueue(e, None)
                continue
            lit = self._decide()
            if lit is None:
                # Snapshot the assignment (one C-level copy); .model and
                # value_of() read from it on demand.
                self._model_val = bytes(self._val)
                self._model = None
                self._backtrack(0)
                return SAT
            if limited:
                spent_decisions += 1
                if (
                    decision_budget is not None
                    and spent_decisions > decision_budget
                ):
                    self.last_abort_reason = "decisions"
                    self._backtrack(0)
                    return UNKNOWN
                if (
                    deadline is not None
                    and time.perf_counter() > deadline
                ):
                    self.last_abort_reason = "deadline"
                    self._backtrack(0)
                    return UNKNOWN
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    @property
    def model(self) -> List[int]:
        """Signed-literal model of the last SAT answer."""
        if self._model is None:
            mv = self._model_val
            self._model = [
                v if mv[v << 1] == 1 else -v
                for v in range(1, len(mv) // 2)  # vars known at snapshot
                if mv[v << 1] != _UNDEF
            ]
        return self._model

    def value_of(self, var: int) -> Optional[int]:
        """Model value of *var* after a SAT answer (None if don't-care)."""
        e = var << 1
        if e >= len(self._model_val):  # var created after the snapshot
            return None
        v = self._model_val[e]
        return None if v == _UNDEF else v

    def reduce_learnts(
        self,
        keep_max_size: int = 4,
        keep_glue: int = 2,
        max_keep: Optional[int] = None,
    ) -> int:
        """Drop poor learned clauses to bound propagation cost.

        Retention is LBD-aware: a clause survives if it is short
        (``len <= keep_max_size``) **or** glued (its literal-block
        distance at learn time was at most *keep_glue* — low-LBD clauses
        connect few decision levels and re-propagate constantly, so they
        are the lemmas worth paying watch-list rent for).  *max_keep*
        additionally caps the survivor count: the worst survivors by
        (glue, length) are dropped first, so a long run of small queries
        cannot accumulate an unbounded glued set.

        Only call between solves (at decision level 0).  Clauses that are
        the reason for a level-0 assignment are preserved, and binary
        clauses always survive: they are indexed in the binary-implication
        lists, which are never scanned for tombstones.  Returns the
        number of clauses deleted; deleted slots become None and their
        watch entries are dropped lazily during propagation.
        """
        protected = {
            self._reason[elit >> 1]
            for elit in self._trail
            if self._reason[elit >> 1] is not None
        }
        glue = self._glue
        survivors: List[int] = []
        deleted = 0
        for ci in self._learnt:
            clause = self.clauses[ci]
            if clause is None:
                glue.pop(ci, None)
                continue
            if (
                ci in protected
                or len(clause) == 2  # lives in _bins; must never die
                or len(clause) <= keep_max_size
                or glue.get(ci, keep_glue + 1) <= keep_glue
            ):
                survivors.append(ci)
            else:
                self.clauses[ci] = None
                glue.pop(ci, None)
                deleted += 1
        if max_keep is not None and len(survivors) > max_keep:
            survivors.sort(
                key=lambda ci: (
                    glue.get(ci, 1 << 30), len(self.clauses[ci]), ci
                )
            )
            for ci in survivors[max_keep:]:
                if ci in protected or len(self.clauses[ci]) == 2:
                    continue
                self.clauses[ci] = None
                glue.pop(ci, None)
                deleted += 1
            survivors = [
                ci for ci in survivors if self.clauses[ci] is not None
            ]
            survivors.sort()
        self._learnt = survivors
        return deleted

    def delete_clauses(self, indices) -> None:
        """Tombstone the clauses at *indices* (level 0 only).

        Watch entries die lazily during propagation, but binary clauses
        live in the implication lists, which the hot loop never
        tombstone-checks — so their pairs are purged here, eagerly and
        batched (each affected list is rebuilt once).  This is the only
        sound way to delete a binary clause; callers retiring clause
        ranges (e.g. a fault cone) must use it rather than assigning
        ``clauses[ci] = None`` directly.
        """
        dead_bins: List[tuple] = []
        for ci in indices:
            clause = self.clauses[ci]
            if clause is None:
                continue
            self.clauses[ci] = None
            if len(clause) == 2:
                dead_bins.append(clause)
        if not dead_bins:
            return
        keys = {lit for clause in dead_bins for lit in clause}
        for key in keys:
            self._bins[key] = [
                pair for pair in self._bins[key]
                if self.clauses[pair[1]] is not None
            ]

    # ------------------------------------------------------------------
    # Internals (encoded literals throughout)
    # ------------------------------------------------------------------
    def _enqueue(self, elit: int, reason: Optional[int]) -> bool:
        val = self._val
        v = val[elit]
        if v != _UNDEF:
            return v == 1
        val[elit] = 1
        val[elit ^ 1] = 0
        var = elit >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = 1 - (elit & 1)
        self._trail.append(elit)
        return True

    def _propagate(self) -> Optional[int]:
        val = self._val
        watches = self._watches
        bins = self._bins
        clauses = self.clauses
        trail = self._trail
        level = self._level
        reason = self._reason
        phase = self._phase
        cur_level = len(self._trail_lim)
        qhead = self._qhead
        props = 0
        while qhead < len(trail):
            elit = trail[qhead]
            qhead += 1
            props += 1
            falsified = elit ^ 1
            # Binary implications first: no clause objects, no watch
            # juggling — just (implied literal, reason index) pairs.
            for q, ci in bins[falsified]:
                v = val[q]
                if v == 1:
                    continue
                if v == 0:
                    self._qhead = qhead
                    self.propagations += props
                    return ci
                val[q] = 1
                val[q ^ 1] = 0
                qvar = q >> 1
                level[qvar] = cur_level
                reason[qvar] = ci
                phase[qvar] = 1 - (q & 1)
                trail.append(q)
            watching = watches[falsified]
            if not watching:
                continue
            keep: List[int] = []
            n = len(watching)
            i = 0
            while i < n:
                ci = watching[i]
                i += 1
                clause = clauses[ci]
                if clause is None:
                    continue  # deleted learned clause: drop the watch
                if clause[0] == falsified:
                    clause[0] = clause[1]
                    clause[1] = falsified
                first = clause[0]
                if val[first] == 1:
                    keep.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    ck = clause[k]
                    if val[ck] != 0:
                        clause[1] = ck
                        clause[k] = falsified
                        watches[ck].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(ci)
                # Unit or conflicting.
                if val[first] == 0:
                    keep.extend(watching[i:])
                    watches[falsified] = keep
                    self._qhead = qhead
                    self.propagations += props
                    return ci
                # Implied literal: _enqueue inlined (val[first] is
                # known-unassigned here, and this is the hottest site
                # in the whole solver).
                val[first] = 1
                val[first ^ 1] = 0
                fvar = first >> 1
                level[fvar] = cur_level
                reason[fvar] = ci
                phase[fvar] = 1 - (first & 1)
                trail.append(first)
            watches[falsified] = keep
        self._qhead = qhead
        self.propagations += props
        return None

    def _analyze(self, conflict_idx: int):
        learnt: List[int] = [0]
        seen = bytearray(self.num_vars + 1)
        level = len(self._trail_lim)
        levels = self._level
        counter = 0
        elit = None
        clause = self.clauses[conflict_idx]
        index = len(self._trail)
        while True:
            for q in clause:
                if elit is not None and q == elit:
                    continue
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if levels[var] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                elit = self._trail[index]
                if seen[elit >> 1]:
                    break
            counter -= 1
            seen[elit >> 1] = 0
            if counter == 0:
                learnt[0] = elit ^ 1
                break
            clause = self.clauses[self._reason[elit >> 1]]
        if len(learnt) == 1:
            back = 0
        else:
            back = max(levels[q >> 1] for q in learnt[1:])
        return learnt, back

    def _record_learnt(self, learnt: List[int]) -> None:
        self.learned += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        levels = self._level
        best = max(
            range(1, len(learnt)), key=lambda i: levels[learnt[i] >> 1]
        )
        learnt[1], learnt[best] = learnt[best], learnt[1]
        idx = len(self.clauses)
        self.clauses.append(learnt)
        self._learnt.append(idx)
        # Literal-block distance at learn time: distinct decision levels
        # among the tail literals plus one for the asserting literal
        # (which lands on its own, higher level after the backjump).
        self._glue[idx] = len({levels[q >> 1] for q in learnt[1:]}) + 1
        self._attach_clause(idx, learnt)
        self._enqueue(learnt[0], idx)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        val = self._val
        heap = self._heap
        activity = self._activity
        hflag = self._hflag
        reason = self._reason
        for elit in self._trail[limit:]:
            val[elit] = _UNDEF
            val[elit ^ 1] = _UNDEF
            var = elit >> 1
            reason[var] = None
            # Only variables whose heap entry was consumed (popped as a
            # decision, or dropped in a rescale) need a fresh entry;
            # propagated variables' entries are still sitting in the heap.
            if not hflag[var]:
                heapq.heappush(heap, (-activity[var], var))
                hflag[var] = 1
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _bump(self, var: int) -> None:
        act = self._activity[var] + self._var_inc
        self._activity[var] = act
        if act > 1e100:
            scale = 1e-100
            activity = self._activity
            for v in range(1, self.num_vars + 1):
                activity[v] *= scale
            self._var_inc *= scale
            # Every heap entry now fails _decide's staleness check
            # (-neg_act != activity[var] after the rescale), so the heap
            # must be rebuilt with fresh entries or every subsequent
            # decision drains it and degrades to the O(n) linear scan.
            val = self._val
            hflag = bytearray(self.num_vars + 1)
            heap = []
            for v in range(1, self.num_vars + 1):
                if val[v << 1] == _UNDEF:
                    heap.append((-activity[v], v))
                    hflag[v] = 1
            heapq.heapify(heap)
            self._heap = heap
            self._hflag = hflag
        else:
            heapq.heappush(self._heap, (-act, var))
            self._hflag[var] = 1

    def _decide(self) -> Optional[int]:
        val = self._val
        heap = self._heap
        activity = self._activity
        hflag = self._hflag
        while heap:
            neg_act, var = heapq.heappop(heap)
            if -neg_act != activity[var]:
                continue  # stale entry; a fresher one exists
            hflag[var] = 0  # the current entry just left the heap
            if val[var << 1] != _UNDEF:
                continue
            return (var << 1) | (0 if self._phase[var] else 1)
        # Heap exhausted: fall back to a linear scan (rare).
        for var in range(1, self.num_vars + 1):
            if val[var << 1] == _UNDEF:
                return (var << 1) | (0 if self._phase[var] else 1)
        return None
    # NOTE: _decide returns an encoded literal; _enqueue consumes it.
