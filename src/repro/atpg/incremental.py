"""Incremental SAT-based fault classification.

The per-fault SAT instances of :mod:`repro.atpg.cnf` re-encode (much of)
the circuit for every fault.  This module instead keeps **one** solver
per circuit with three levels of sharing:

* the good circuit (and, lazily, the frame-1 copy for two-pattern
  faults) is encoded exactly once;
* the **faulty output cone** of each fault site net is encoded once per
  *site* and shared by every fault at that site: the site's faulty value
  is a free variable, the cone clauses (no activation literal — they
  merely define cone variables and never constrain the good circuit)
  propagate it to the primary outputs, and per-PO difference variables
  are predefined;
* each individual fault then adds only a handful of clauses tying the
  site variable to the fault semantics, all carrying a fresh
  *activation literal*, plus the act-gated detection (OR-of-differences)
  clause.  After the decision the fault's clauses are tombstoned and its
  private variables pinned, so the solver never slows down.

Learned clauses persist across faults — the expensive lemmas (e.g.
"this checker signal is constant 0") are derived once and reused by
every fault in the same region.  Results are identical to the
standalone encoder (both are exact); the test suite cross-checks them.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.atpg.budget import AtpgBudget
from repro.atpg.cnf import _gate_clauses
from repro.atpg.sat import Solver, UNKNOWN
from repro.utils import seams
from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit

TestPair = Tuple[Dict[str, int], Dict[str, int]]

_REDUCE_EVERY_CONFLICTS = 1500
_MAX_LEARNT = 3000


def fault_site_net(circuit: Circuit, fault: Fault) -> Optional[str]:
    """Net whose output cone carries *fault*'s effect.

    Module-level so shard partitioners can group faults by site without
    instantiating an engine (the parallel SAT phase sorts and shards on
    this key in the parent, before any worker exists).
    """
    if isinstance(fault, (StuckAtFault, TransitionFault)):
        if fault.branch is not None:
            gate = circuit.gates.get(fault.branch[0])
            return gate.output if gate else None
        return fault.net
    if isinstance(fault, BridgingFault):
        return fault.victim
    if isinstance(fault, CellAwareFault):
        gate = circuit.gates.get(fault.gate)
        return gate.output if gate else None
    return None


class _SiteCone:
    """Shared faulty-cone encoding rooted at one net."""

    __slots__ = ("site_var", "fvars", "pos", "diff_vars",
                 "clause_start", "clause_end", "var_start", "var_end")

    def __init__(self, site_var: int, fvars: Dict[str, int],
                 pos: List[str], diff_vars: List[int],
                 clause_start: int, clause_end: int,
                 var_start: int, var_end: int):
        self.site_var = site_var
        self.fvars = fvars
        self.pos = pos
        self.diff_vars = diff_vars
        self.clause_start = clause_start
        self.clause_end = clause_end
        self.var_start = var_start
        self.var_end = var_end


class IncrementalAtpg:
    """Shared-solver exact fault decision engine for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        cells: Mapping[str, StandardCell],
        solver: Optional[Solver] = None,
    ):
        self.circuit = circuit
        self.cells = cells
        # An injected solver must be fresh (no clauses/vars): the slot
        # exists so benchmarks can pin a frozen-baseline Solver class.
        self.solver = solver if solver is not None else Solver()
        self.lemmas_reused = 0
        # Why the most recent decide() aborted ("deadline", "conflicts",
        # "decisions", "injected"); None after a decided query.
        self.last_abort_reason: Optional[str] = None
        self._var: Dict[Tuple[str, str], int] = {}
        self._topo = circuit.topo_order()
        self._topo_index = {g: i for i, g in enumerate(self._topo)}
        self._frame1_ready = False
        self._last_reduce = 0
        self._cones: Dict[str, Optional[_SiteCone]] = {}
        self._active_site: Optional[str] = None
        for gname in self._topo:
            self._encode_gate_shared(gname, "g")

    # ------------------------------------------------------------------
    # Shared (fault-independent) encoding
    # ------------------------------------------------------------------
    def var(self, net: str, copy: str = "g") -> int:
        key = (net, copy)
        got = self._var.get(key)
        if got is None:
            got = self.solver.new_var()
            self._var[key] = got
            if net == CONST0:
                self.solver.add_clause([-got])
            elif net == CONST1:
                self.solver.add_clause([got])
        return got

    def _encode_gate_shared(self, gate_name: str, copy: str) -> None:
        gate = self.circuit.gates[gate_name]
        cell = self.cells[gate.cell]
        slots = [self.var(gate.pins[p], copy) for p in cell.input_pins]
        slots.append(self.var(gate.output, copy))
        for template in _gate_clauses(cell.n_inputs, cell.tt):
            self.solver.add_clause(
                [slots[i] if pol else -slots[i] for i, pol in template]
            )

    def _ensure_frame1(self) -> None:
        if not self._frame1_ready:
            for gname in self._topo:
                self._encode_gate_shared(gname, "1")
            self._frame1_ready = True

    def site_cone(self, net: str) -> Optional[_SiteCone]:
        """Shared faulty cone for site *net* (None if unobservable).

        The cone clauses define, for a free site variable, the faulty
        value of every net in the site's output cone and one difference
        variable per observable PO.  They never constrain the good
        circuit, so they stay enabled for the lifetime of the solver.
        """
        if net in self._cones:
            return self._cones[net]
        circuit = self.circuit
        cone_gates: Set[str] = set()
        stack = [g for g, _p in circuit.loads(net)]
        while stack:
            g = stack.pop()
            if g in cone_gates:
                continue
            cone_gates.add(g)
            stack.extend(circuit.gate_fanout_gates(g))
        pos = [
            po for po in circuit.outputs
            if po == net
            or ((drv := circuit.driver(po)) is not None and drv in cone_gates)
        ]
        if not pos:
            self._cones[net] = None
            return None
        solver = self.solver
        clause_start = len(solver.clauses)
        var_start = solver.num_vars
        site_var = solver.new_var()
        fvars: Dict[str, int] = {net: site_var}
        for g in sorted(cone_gates, key=lambda g: self._topo_index[g]):
            gate = circuit.gates[g]
            cell = self.cells[gate.cell]
            slots = [
                fvars.get(gate.pins[p], self.var(gate.pins[p], "g"))
                for p in cell.input_pins
            ]
            out = solver.new_var()
            fvars[gate.output] = out
            slots.append(out)
            for template in _gate_clauses(cell.n_inputs, cell.tt):
                solver.add_clause(
                    [slots[i] if pol else -slots[i] for i, pol in template]
                )
        diff_vars: List[int] = []
        for po in pos:
            g = self.var(po, "g")
            f = fvars[po]
            d = solver.new_var()
            solver.add_clause([-d, g, f])
            solver.add_clause([-d, -g, -f])
            diff_vars.append(d)
        cone = _SiteCone(
            site_var, fvars, pos, diff_vars,
            clause_start, len(solver.clauses),
            var_start, solver.num_vars,
        )
        self._cones[net] = cone
        return cone

    def retire_site(self, net: str) -> None:
        """Drop the shared cone of *net* and everything derived from it.

        The cone clauses are a conservative extension (they define fresh
        variables and never constrain the good circuit), so deleting
        them plus every learned clause mentioning a cone variable leaves
        exactly the originally-implied constraints; the now-unconstrained
        cone variables are pinned so they are never decided again.
        """
        cone = self._cones.pop(net, None)
        if cone is None:
            return
        solver = self.solver
        solver.delete_clauses(range(cone.clause_start, cone.clause_end))
        lo, hi = cone.var_start + 1, cone.var_end
        stale = [
            ci for ci in solver._learnt
            if solver.clauses[ci] is not None
            and any(lo <= (elit >> 1) <= hi for elit in solver.clauses[ci])
        ]
        solver.delete_clauses(stale)
        solver._learnt = [
            ci for ci in solver._learnt if solver.clauses[ci] is not None
        ]
        for v in range(lo, hi + 1):
            if solver._val[v << 1] == 2:  # unassigned
                solver.add_clause([-v])

    def solver_effort(self) -> Tuple[int, int]:
        """(conflicts, propagations) spent by the shared solver so far.

        Sampled by the ATPG driver into its
        :class:`~repro.utils.observability.EngineStats` after the
        deterministic phase.
        """
        return self.solver.conflicts, self.solver.propagations

    def effort(self) -> Dict[str, int]:
        """Full solver-effort snapshot as a counter dict.

        Keys line up with the ``sat_*`` fields of
        :class:`~repro.utils.observability.EngineStats` so drivers (and
        parallel shard workers computing before/after deltas) can map
        them mechanically.
        """
        return {
            "sat_conflicts": self.solver.conflicts,
            "sat_propagations": self.solver.propagations,
            "sat_learned": self.solver.learned,
            "sat_restarts": self.solver.restarts,
            "sat_lemmas_reused": self.lemmas_reused,
        }

    # ------------------------------------------------------------------
    # Per-fault decision
    # ------------------------------------------------------------------
    def decide(
        self, fault: Fault, budget: Optional[AtpgBudget] = None
    ) -> Tuple[Optional[bool], Optional[TestPair]]:
        """Detection decision; returns (detectable, test pair).

        *detectable* is three-valued: True (a test exists, returned as
        the pair), False (proved undetectable), or None — the per-fault
        resource *budget* ran out (or a chaos seam forced an abort)
        before a proof.  With no budget the decision is exact and the
        answer is the classic boolean.  An aborted fault's clauses are
        retired exactly like a decided one's, so the shared solver stays
        sound and compact either way.
        """
        # Shared structures (frame 1, site cone) must exist before the
        # watermarks so the post-decision cleanup never touches them.
        if self._needs_frame1(fault):
            self._ensure_frame1()
        # Lemmas carried over from earlier faults and available to this
        # query — the quantity incremental solving exists to maximize.
        self.lemmas_reused += len(self.solver._learnt)
        site = self._site_net(fault)
        # Single-active-cone policy: callers process faults grouped by
        # site (see the engine's sort order), so retiring the previous
        # site bounds the permanent variable count at one cone.
        if self._active_site is not None and self._active_site != site:
            self.retire_site(self._active_site)
        self._active_site = site
        if site is not None:
            self.site_cone(site)
        solver = self.solver
        var_mark = solver.num_vars
        clause_mark = len(solver.clauses)
        act = solver.new_var()
        built = self._build_fault(fault, act)
        result: Optional[bool] = False
        test: Optional[TestPair] = None
        self.last_abort_reason = None
        if built:
            if seams.active and seams.fire("atpg.decide", fault=fault) == "abort":
                result = UNKNOWN
                self.last_abort_reason = "injected"
            elif budget is None or budget.unlimited:
                result = solver.solve([act])
            else:
                deadline = (
                    time.perf_counter() + budget.deadline_ms / 1000.0
                    if budget.deadline_ms is not None else None
                )
                result = solver.solve(
                    [act],
                    conflict_budget=budget.conflict_budget,
                    decision_budget=budget.decision_budget,
                    deadline=deadline,
                )
                if result is UNKNOWN:
                    self.last_abort_reason = (
                        solver.last_abort_reason or "unknown"
                    )
            if result:
                v2 = {
                    pi: solver.value_of(self.var(pi, "g")) or 0
                    for pi in self.circuit.inputs
                }
                if built == "two-frame":
                    v1 = {
                        pi: solver.value_of(self.var(pi, "1")) or 0
                        for pi in self.circuit.inputs
                    }
                else:
                    v1 = dict(v2)
                test = (v1, v2)
        # Retire the fault: disable its clauses (tombstones; watch entries
        # drop lazily) and pin its private variables at level 0 so they
        # are never decided again.
        solver.add_clause([-act])
        protected = {
            solver._reason[elit >> 1]
            for elit in solver._trail
            if solver._reason[elit >> 1] is not None
        }
        # Learned clauses in this range are kept: they are the reusable
        # lemmas (any containing the retired ¬act are satisfied anyway).
        for ci in reversed(solver._learnt):
            if ci < clause_mark:
                break
            protected.add(ci)
        solver.delete_clauses(
            ci for ci in range(clause_mark, len(solver.clauses))
            if ci not in protected
        )
        for v in range(var_mark + 1, solver.num_vars + 1):
            if solver._val[v << 1] == 2:  # unassigned
                solver.add_clause([-v])
        if (solver.conflicts - self._last_reduce > _REDUCE_EVERY_CONFLICTS
                or len(solver._learnt) > _MAX_LEARNT):
            solver.reduce_learnts(keep_max_size=3, max_keep=_MAX_LEARNT)
            self._last_reduce = solver.conflicts
        return result, test

    @staticmethod
    def _needs_frame1(fault: Fault) -> bool:
        if isinstance(fault, TransitionFault):
            return True
        return isinstance(fault, CellAwareFault) and bool(
            fault.defect.floating
        )

    def _site_net(self, fault: Fault) -> Optional[str]:
        """Net whose output cone carries this fault's effect."""
        return fault_site_net(self.circuit, fault)

    # ------------------------------------------------------------------
    def _clause(self, act: int, lits: Sequence[int]) -> None:
        """Fault-specific clause: disabled once ``-act`` is asserted."""
        self.solver.add_clause([-act] + list(lits))

    def _detect_clause(self, act: int, cone: _SiteCone) -> None:
        self._clause(act, cone.diff_vars)

    # ------------------------------------------------------------------
    def _build_fault(self, fault: Fault, act: int):
        """Add the fault's clauses; returns False (trivially
        undetectable), True (single frame) or "two-frame"."""
        if isinstance(fault, StuckAtFault):
            return self._build_stuck_like(
                fault.net, fault.value, fault.branch, None, act
            )
        if isinstance(fault, TransitionFault):
            return self._build_stuck_like(
                fault.net, fault.stuck_value, fault.branch,
                fault.initial_value, act,
            )
        if isinstance(fault, BridgingFault):
            return self._build_bridge(fault, act)
        if isinstance(fault, CellAwareFault):
            return self._build_cell_aware(fault, act)
        raise TypeError(type(fault).__name__)

    def _build_stuck_like(
        self,
        net: str,
        stuck_value: int,
        branch: Optional[Tuple[str, str]],
        init_value: Optional[int],
        act: int,
    ):
        circuit = self.circuit
        if branch is not None:
            gname, pin = branch
            gate = circuit.gates.get(gname)
            if gate is None or gate.pins.get(pin) != net:
                return False
            cone = self.site_cone(gate.output)
            if cone is None:
                return False
            # Faulty branch gate: output = cell(inputs with pin = const),
            # written onto the shared site variable (act-gated).
            cell = self.cells[gate.cell]
            slots: List[Optional[int]] = []
            for p in cell.input_pins:
                if p == pin:
                    slots.append(None)
                else:
                    slots.append(self.var(gate.pins[p], "g"))
            out = cone.site_var
            for template in _gate_clauses(cell.n_inputs, cell.tt):
                lits = []
                skip = False
                for i, pol in template:
                    if i < len(cell.input_pins) and slots[i] is None:
                        if pol == bool(stuck_value):
                            skip = True
                            break
                        continue
                    v = out if i == len(cell.input_pins) else slots[i]
                    lits.append(v if pol else -v)
                if not skip:
                    self._clause(act, lits)
        else:
            if circuit.driver(net) is None and net not in circuit.inputs:
                return False
            cone = self.site_cone(net)
            if cone is None:
                return False
            self._clause(
                act, [cone.site_var if stuck_value else -cone.site_var]
            )
            gvar = self.var(net, "g")
            self._clause(act, [-gvar if stuck_value else gvar])
        self._detect_clause(act, cone)
        if init_value is not None:
            ivar = self.var(net, "1")
            self._clause(act, [ivar if init_value else -ivar])
            return "two-frame"
        return True

    def _build_bridge(self, fault: BridgingFault, act: int):
        circuit = self.circuit
        nets = circuit.nets()
        if fault.victim not in nets or fault.aggressor not in nets:
            return False
        cone = self.site_cone(fault.victim)
        if cone is None:
            return False
        g_v = self.var(fault.victim, "g")
        g_a = self.var(fault.aggressor, "g")
        self._clause(act, [-cone.site_var, g_a])
        self._clause(act, [cone.site_var, -g_a])
        self._clause(act, [g_v, g_a])
        self._clause(act, [-g_v, -g_a])
        self._detect_clause(act, cone)
        return True

    def _build_cell_aware(self, fault: CellAwareFault, act: int):
        circuit = self.circuit
        gate = circuit.gates.get(fault.gate)
        if gate is None:
            return False
        cell = self.cells[gate.cell]
        defect = fault.defect
        cone = self.site_cone(gate.output)
        if cone is None:
            return False
        n = cell.n_inputs
        in_vars = [self.var(gate.pins[p], "g") for p in cell.input_pins]
        out_g = self.var(gate.output, "g")
        out_f = cone.site_var

        def neg_lits(vars_: Sequence[int], m: int) -> List[int]:
            return [
                -vars_[i] if (m >> i) & 1 else vars_[i] for i in range(n)
            ]

        dynamic = bool(defect.floating)
        if dynamic:
            in1 = [self.var(gate.pins[p], "1") for p in cell.input_pins]
            retained = self.solver.new_var()
            driven1 = self.solver.new_var()
            for m, fval in enumerate(defect.faulty):
                neg1 = neg_lits(in1, m)
                if fval is None:
                    self._clause(act, neg1 + [-driven1])
                else:
                    self._clause(act, neg1 + [driven1])
                    self._clause(
                        act, neg1 + [retained if fval else -retained]
                    )
        for m, fval in enumerate(defect.faulty):
            neg2 = neg_lits(in_vars, m)
            if fval is not None:
                self._clause(act, neg2 + [out_f if fval else -out_f])
            elif dynamic and m in defect.floating:
                self._clause(act, neg2 + [-driven1, -out_f, retained])
                self._clause(act, neg2 + [-driven1, out_f, -retained])
                self._clause(act, neg2 + [driven1, -out_f, out_g])
                self._clause(act, neg2 + [driven1, out_f, -out_g])
            else:
                self._clause(act, neg2 + [-out_f, out_g])
                self._clause(act, neg2 + [out_f, -out_g])
        self._detect_clause(act, cone)
        return "two-frame" if dynamic else True
