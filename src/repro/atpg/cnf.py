"""CNF encodings of fault detection conditions.

For a fault f, the encoder builds a SAT instance that is satisfiable iff
some (pair of) input pattern(s) detects f:

* a **good** copy of the circuit restricted to the relevant fanin cones;
* a **faulty** copy of the fault site's output cone (structurally shared
  nets outside the cone reuse the good variables);
* model-specific site constraints (stuck value, dominant-bridge tie,
  faulty cell truth table, two-frame initialization / charge retention);
* a miter asserting that some primary output in the cone differs.

Gate functions are encoded from their truth tables with one implication
clause per minterm (cells have at most four inputs, so at most 16 small
clauses per gate); templates are cached per (arity, truth table).

A SAT answer yields the test (pattern pair); UNSAT is an exact proof that
the fault is undetectable — the quantity the paper's procedure minimizes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.faults.model import (
    BridgingFault,
    CellAwareFault,
    Fault,
    StuckAtFault,
    TransitionFault,
)
from repro.library.cell import StandardCell
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.atpg.sat import Solver


def _prime_implicants(minterms: Sequence[int], n: int) -> List[Tuple[int, int]]:
    """Prime implicants of an n-variable ON-set (Quine-McCluskey).

    An implicant is (care_mask, value): variables outside care_mask are
    don't-cares.  n is at most 4, so the exact procedure is cheap.
    """
    current = {((1 << n) - 1, m) for m in minterms}
    primes: set = set()
    while current:
        nxt: set = set()
        combined: set = set()
        for care, val in current:
            for bit in range(n):
                b = 1 << bit
                if care & b and (care, val ^ b) in current:
                    nxt.add((care & ~b, val & ~b))
                    combined.add((care, val))
                    combined.add((care, val ^ b))
        primes |= current - combined
        current = nxt
    return sorted(primes)


@lru_cache(maxsize=None)
def _gate_clauses(n: int, tt: int) -> Tuple[Tuple[Tuple[int, bool], ...], ...]:
    """Clause templates for an n-input cell: entries (slot, polarity).

    Slots 0..n-1 are the input nets, slot n is the output net.  The
    encoding is prime-implicant based: every prime p of the ON-set gives
    (p -> out) and every prime q of the OFF-set gives (q -> NOT out).
    This is logically equivalent to the one-clause-per-minterm encoding
    but propagates better (arc consistency) with fewer, shorter clauses.
    """
    on = [m for m in range(1 << n) if (tt >> m) & 1]
    off = [m for m in range(1 << n) if not (tt >> m) & 1]
    clauses = []
    for primes, out_pol in ((_prime_implicants(on, n), True),
                            (_prime_implicants(off, n), False)):
        for care, val in primes:
            clause = [
                (i, not bool((val >> i) & 1))
                for i in range(n) if (care >> i) & 1
            ]
            clause.append((n, out_pol))
            clauses.append(tuple(clause))
    return tuple(clauses)


class _Instance:
    """One SAT instance under construction."""

    def __init__(self, circuit: Circuit, cells: Mapping[str, StandardCell]):
        self.circuit = circuit
        self.cells = cells
        self.solver = Solver()
        self._net_var: Dict[Tuple[str, str], int] = {}

    def var(self, net: str, copy: str = "g") -> int:
        """Variable of *net* in circuit copy *copy* ('g', 'f', '1')."""
        key = (net, copy)
        got = self._net_var.get(key)
        if got is None:
            got = self.solver.new_var()
            self._net_var[key] = got
            if net == CONST0:
                self.solver.add_clause([-got])
            elif net == CONST1:
                self.solver.add_clause([got])
        return got

    def has_var(self, net: str, copy: str) -> bool:
        return (net, copy) in self._net_var

    def encode_gate(self, gate_name: str, in_copy_of, out_copy: str) -> None:
        """Encode one gate; *in_copy_of(net) -> copy tag* selects shared
        vs. private input variables."""
        gate = self.circuit.gates[gate_name]
        cell = self.cells[gate.cell]
        slots = [
            self.var(gate.pins[p], in_copy_of(gate.pins[p]))
            for p in cell.input_pins
        ]
        slots.append(self.var(gate.output, out_copy))
        for template in _gate_clauses(cell.n_inputs, cell.tt):
            self.solver.add_clause(
                [slots[i] if pol else -slots[i] for i, pol in template]
            )

    def encode_good_cone(self, seed_nets: Sequence[str], copy: str = "g") -> Set[str]:
        """Encode the fanin cones of *seed_nets* in copy *copy*.

        Returns the set of nets encoded.  PIs get free variables.
        """
        circuit = self.circuit
        needed: Set[str] = set()
        stack = [n for n in seed_nets]
        gates: List[str] = []
        while stack:
            net = stack.pop()
            if net in needed:
                continue
            needed.add(net)
            drv = circuit.driver(net)
            if drv is not None:
                gates.append(drv)
                for in_net in circuit.gates[drv].pins.values():
                    stack.append(in_net)
        # Encode in topological order for determinism.
        index = {g: i for i, g in enumerate(circuit.topo_order())}
        for g in sorted(set(gates), key=lambda g: index[g]):
            self.encode_gate(g, lambda net: copy, copy)
        return needed

    def equal_clause(self, a: int, b: int) -> None:
        self.solver.add_clause([-a, b])
        self.solver.add_clause([a, -b])

    def miter(self, pos: Sequence[str]) -> bool:
        """Assert that some PO differs between good and faulty copies.

        Returns False when no PO is in the faulty cone (undetectable).
        """
        diff_lits: List[int] = []
        for po in pos:
            g = self.var(po, "g")
            f = self.var(po, "f")
            d = self.solver.new_var()
            self.solver.add_clause([-d, g, f])
            self.solver.add_clause([-d, -g, -f])
            diff_lits.append(d)
        if not diff_lits:
            return False
        self.solver.add_clause(diff_lits)
        return True


class EncodedProblem:
    """A built SAT instance plus the PI variable maps for test extraction."""

    def __init__(
        self,
        solver: Solver,
        frame2_pis: Dict[str, int],
        frame1_pis: Optional[Dict[str, int]],
        trivially_undetectable: bool = False,
    ):
        self.solver = solver
        self.frame2_pis = frame2_pis
        self.frame1_pis = frame1_pis
        self.trivially_undetectable = trivially_undetectable

    def solve(self) -> bool:
        if self.trivially_undetectable:
            return False
        return self.solver.solve()

    def extract_test(
        self, circuit: Circuit, fill=None
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(frame1, frame2) PI assignments from the model.

        PIs outside the encoded cones (and model don't-cares) take the
        value returned by ``fill(pi_name)`` (default 0) — any value
        works for detection; random fill improves incidental coverage.
        For single-frame faults, frame 1 repeats frame 2.
        """
        if fill is None:
            fill = lambda pi: 0  # noqa: E731 - tiny default

        def frame(pis: Optional[Dict[str, int]], fallback: Dict[str, int]):
            out: Dict[str, int] = {}
            for pi in circuit.inputs:
                var = (pis or {}).get(pi)
                val = None if var is None else self.solver.value_of(var)
                if val is None:
                    val = fallback[pi] if fallback else fill(pi)
                out[pi] = val
            return out

        v2 = frame(self.frame2_pis, {})
        v1 = frame(self.frame1_pis, v2) if self.frame1_pis is not None else dict(v2)
        return v1, v2


class DetectionEncoder:
    """Builds :class:`EncodedProblem` instances for each fault model."""

    def __init__(self, circuit: Circuit, cells: Mapping[str, StandardCell]):
        self.circuit = circuit
        self.cells = cells
        self._topo_index = {g: i for i, g in enumerate(circuit.topo_order())}

    # ------------------------------------------------------------------
    def encode(self, fault: Fault) -> EncodedProblem:
        if isinstance(fault, StuckAtFault):
            return self._encode_stuck_like(
                fault.net, fault.value, fault.branch, init_value=None
            )
        if isinstance(fault, TransitionFault):
            return self._encode_stuck_like(
                fault.net, fault.stuck_value, fault.branch,
                init_value=fault.initial_value,
            )
        if isinstance(fault, BridgingFault):
            return self._encode_bridge(fault)
        if isinstance(fault, CellAwareFault):
            return self._encode_cell_aware(fault)
        raise TypeError(type(fault).__name__)

    # ------------------------------------------------------------------
    def _affected(self, seed_gates: Sequence[str]) -> Tuple[List[str], List[str]]:
        """(affected gates topo-sorted, observable POs) from seed gates."""
        circuit = self.circuit
        cone: Set[str] = set()
        stack = list(seed_gates)
        while stack:
            g = stack.pop()
            if g in cone:
                continue
            cone.add(g)
            stack.extend(circuit.gate_fanout_gates(g))
        pos = [
            po for po in circuit.outputs
            if (drv := circuit.driver(po)) is not None and drv in cone
        ]
        ordered = sorted(cone, key=lambda g: self._topo_index[g])
        return ordered, pos

    def _trivial(self) -> EncodedProblem:
        return EncodedProblem(Solver(), {}, None, trivially_undetectable=True)

    def _pi_map(self, inst: _Instance, nets: Set[str], copy: str) -> Dict[str, int]:
        return {
            pi: inst._net_var[(pi, copy)]
            for pi in self.circuit.inputs
            if (pi, copy) in inst._net_var
        }

    def _encode_faulty_cone(
        self, inst: _Instance, affected: Sequence[str],
        forced_nets: Set[str],
    ) -> None:
        """Encode the faulty copies of *affected* gates.

        Nets in *forced_nets* already carry constrained 'f' variables and
        their driving gates are not re-encoded.
        """
        affected_out = {self.circuit.gates[g].output for g in affected}
        affected_out |= forced_nets

        def in_copy(net: str) -> str:
            return "f" if net in affected_out else "g"

        for g in affected:
            if self.circuit.gates[g].output in forced_nets:
                continue
            inst.encode_gate(g, in_copy, "f")

    # ------------------------------------------------------------------
    def _encode_stuck_like(
        self,
        net: str,
        stuck_value: int,
        branch: Optional[Tuple[str, str]],
        init_value: Optional[int],
    ) -> EncodedProblem:
        circuit = self.circuit
        inst = _Instance(circuit, self.cells)
        if branch is not None:
            gname, pin = branch
            gate = circuit.gates.get(gname)
            if gate is None or gate.pins.get(pin) != net:
                return self._trivial()
            affected, pos = self._affected([gname])
            if not pos:
                return self._trivial()
            good_nets = inst.encode_good_cone([net] + pos)
            # Faulty branch gate: input *pin* replaced by the constant.
            cell = self.cells[gate.cell]
            slots = []
            for p in cell.input_pins:
                if p == pin:
                    slots.append(None)
                else:
                    slots.append(inst.var(gate.pins[p], "g"))
            out_slot = inst.var(gate.output, "f")
            for template in _gate_clauses(cell.n_inputs, cell.tt):
                lits = []
                skip = False
                for i, pol in template:
                    if i < len(cell.input_pins) and slots[i] is None:
                        # Constant input: literal true -> clause satisfied,
                        # literal false -> drop it.
                        lit_true = (pol == bool(stuck_value))
                        if lit_true:
                            skip = True
                            break
                        continue
                    v = out_slot if i == len(cell.input_pins) else slots[i]
                    lits.append(v if pol else -v)
                if not skip:
                    inst.solver.add_clause(lits)
            forced = {gate.output}
            self._encode_faulty_cone(inst, affected, forced)
        else:
            if circuit.driver(net) is None and net not in circuit.inputs:
                return self._trivial()
            load_gates = [g for g, _p in circuit.loads(net)]
            affected, pos = self._affected(load_gates)
            if net in circuit.outputs:
                # A PO stem fault is observable at the PO itself.
                pos = [p for p in circuit.outputs if p in set(pos) | {net}]
            if not pos:
                return self._trivial()
            inst.encode_good_cone([net] + pos)
            fvar = inst.var(net, "f")
            inst.solver.add_clause([fvar if stuck_value else -fvar])
            self._encode_faulty_cone(inst, affected, {net})
            # Activation (implied, but prunes search): good site opposite.
            gvar = inst.var(net, "g")
            inst.solver.add_clause([-gvar if stuck_value else gvar])
        if not inst.miter(pos):
            return self._trivial()
        frame1_pis: Optional[Dict[str, int]] = None
        if init_value is not None:
            inst.encode_good_cone([net], copy="1")
            ivar = inst.var(net, "1")
            inst.solver.add_clause([ivar if init_value else -ivar])
            frame1_pis = self._pi_map(inst, set(), "1")
        return EncodedProblem(
            inst.solver, self._pi_map(inst, set(), "g"), frame1_pis,
        )

    # ------------------------------------------------------------------
    def _encode_bridge(self, fault: BridgingFault) -> EncodedProblem:
        circuit = self.circuit
        nets = circuit.nets()
        if fault.victim not in nets or fault.aggressor not in nets:
            return self._trivial()
        inst = _Instance(circuit, self.cells)
        load_gates = [g for g, _p in circuit.loads(fault.victim)]
        affected, pos = self._affected(load_gates)
        if fault.victim in circuit.outputs:
            pos = [
                p for p in circuit.outputs
                if p in set(pos) | {fault.victim}
            ]
        if not pos:
            return self._trivial()
        inst.encode_good_cone([fault.victim, fault.aggressor] + pos)
        inst.equal_clause(
            inst.var(fault.victim, "f"), inst.var(fault.aggressor, "g")
        )
        self._encode_faulty_cone(inst, affected, {fault.victim})
        # Activation: victim and aggressor differ in the good circuit.
        g_v = inst.var(fault.victim, "g")
        g_a = inst.var(fault.aggressor, "g")
        inst.solver.add_clause([g_v, g_a])
        inst.solver.add_clause([-g_v, -g_a])
        if not inst.miter(pos):
            return self._trivial()
        return EncodedProblem(inst.solver, self._pi_map(inst, set(), "g"), None)

    # ------------------------------------------------------------------
    def _encode_cell_aware(self, fault: CellAwareFault) -> EncodedProblem:
        circuit = self.circuit
        gate = circuit.gates.get(fault.gate)
        if gate is None:
            return self._trivial()
        cell = self.cells[gate.cell]
        defect = fault.defect
        inst = _Instance(circuit, self.cells)
        affected, pos = self._affected([fault.gate])
        if not pos:
            return self._trivial()
        inst.encode_good_cone(list(gate.pins.values()) + pos)
        n = cell.n_inputs
        in_vars = [inst.var(gate.pins[p], "g") for p in cell.input_pins]
        out_f = inst.var(gate.output, "f")
        out_g = inst.var(gate.output, "g")

        def match_neg_lits(vars_: Sequence[int], m: int) -> List[int]:
            """Literals falsifying (inputs == m), for implication clauses."""
            return [
                -vars_[i] if (m >> i) & 1 else vars_[i] for i in range(n)
            ]

        dynamic = bool(defect.floating)
        frame1_pis: Optional[Dict[str, int]] = None
        if dynamic:
            inst.encode_good_cone(list(gate.pins.values()), copy="1")
            in1_vars = [inst.var(gate.pins[p], "1") for p in cell.input_pins]
            retained = inst.solver.new_var()
            driven1 = inst.solver.new_var()
            for m, fval in enumerate(defect.faulty):
                neg1 = match_neg_lits(in1_vars, m)
                if fval is None:
                    inst.solver.add_clause(neg1 + [-driven1])
                else:
                    inst.solver.add_clause(neg1 + [driven1])
                    inst.solver.add_clause(
                        neg1 + [retained if fval else -retained]
                    )
            frame1_pis = self._pi_map(inst, set(), "1")
        for m, fval in enumerate(defect.faulty):
            neg2 = match_neg_lits(in_vars, m)
            if fval is not None:
                inst.solver.add_clause(neg2 + [out_f if fval else -out_f])
            elif dynamic and m in defect.floating:
                # Charge retention when frame 1 drove the node; no credit
                # (follow good) when it did not.
                inst.solver.add_clause(neg2 + [-driven1, -out_f, retained])
                inst.solver.add_clause(neg2 + [-driven1, out_f, -retained])
                inst.solver.add_clause(neg2 + [driven1, -out_f, out_g])
                inst.solver.add_clause(neg2 + [driven1, out_f, -out_g])
            else:
                # Unknown response: no detection credit.
                inst.solver.add_clause(neg2 + [-out_f, out_g])
                inst.solver.add_clause(neg2 + [out_f, -out_g])
        self._encode_faulty_cone(inst, affected, {gate.output})
        if not inst.miter(pos):
            return self._trivial()
        return EncodedProblem(
            inst.solver, self._pi_map(inst, set(), "g"), frame1_pis
        )
