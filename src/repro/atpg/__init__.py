"""SAT-based ATPG: exact test generation and undetectability proofs.

Undetectability is the paper's central measurement, so every fault's
detection condition is decided *exactly*: the condition is encoded to CNF
(:mod:`repro.atpg.cnf`) and decided by a CDCL solver built from scratch
(:mod:`repro.atpg.sat`).  The engine (:mod:`repro.atpg.engine`) runs the
usual industrial flow — random-pattern fault simulation first, then
deterministic SAT per remaining fault class, with test set compaction.
"""

from repro.atpg.sat import Solver, SAT, UNSAT, UNKNOWN
from repro.atpg.budget import (
    ABORTED,
    DETECTED,
    UNDETECTABLE,
    AtpgBudget,
    verdict_name,
)
from repro.atpg.cnf import DetectionEncoder
from repro.atpg.engine import AtpgResult, run_atpg
from repro.atpg.compaction import compact_tests

__all__ = [
    "Solver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "ABORTED",
    "DETECTED",
    "UNDETECTABLE",
    "AtpgBudget",
    "verdict_name",
    "DetectionEncoder",
    "AtpgResult",
    "run_atpg",
    "compact_tests",
]
