"""Lightweight observability counters for the fault-analysis engine.

:class:`EngineStats` is a plain bag of monotonically increasing counters
plus per-phase wall-clock accumulators.  One instance travels through a
whole analysis (fault simulation, ATPG, compaction) and is surfaced on
:class:`repro.atpg.engine.AtpgResult` / :class:`repro.core.flow.DesignState`
so benchmarks and regression tests can assert on engine behaviour
(e.g. "the evaluator compile count stays O(#distinct cells)") instead of
re-deriving it from timing alone.

This module sits in the ``utils`` layer on purpose: every layer above it
(netlist simulation, fault simulation, ATPG, flow) records into it, so it
must not import any of them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class EngineStats:
    """Counters for one fault-analysis run (all additive / mergeable).

    * ``faults_simulated`` — fault/batch simulations performed (one count
      per fault per :func:`repro.faults.fsim.fault_simulate` call);
    * ``events_propagated`` — gate evaluations popped from the
      event-driven propagation queue across all faults;
    * ``good_simulations`` / ``good_cache_hits`` — good-machine
      simulations run vs. served from the per-circuit good-value cache;
    * ``plan_builds`` / ``plan_cache_hits`` — compiled circuit plans
      built vs. reused;
    * ``eval_compiles`` — distinct ``(n_inputs, truth_table)`` cell
      evaluators compiled while building plans;
    * ``batches`` — pattern batches fault-simulated;
    * ``parallel_chunks`` — work chunks dispatched to worker threads;
    * ``sat_calls`` / ``sat_conflicts`` / ``sat_propagations`` — exact
      ATPG solver effort;
    * ``phase_seconds`` — wall-clock per engine phase.
    """

    faults_simulated: int = 0
    events_propagated: int = 0
    good_simulations: int = 0
    good_cache_hits: int = 0
    plan_builds: int = 0
    plan_cache_hits: int = 0
    eval_compiles: int = 0
    batches: int = 0
    parallel_chunks: int = 0
    sat_calls: int = 0
    sat_conflicts: int = 0
    sat_propagations: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of a ``with`` block under *name*."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.add_phase(name, time.monotonic() - start)

    def merge(self, other: "EngineStats") -> None:
        """Fold *other*'s counters into this instance."""
        self.faults_simulated += other.faults_simulated
        self.events_propagated += other.events_propagated
        self.good_simulations += other.good_simulations
        self.good_cache_hits += other.good_cache_hits
        self.plan_builds += other.plan_builds
        self.plan_cache_hits += other.plan_cache_hits
        self.eval_compiles += other.eval_compiles
        self.batches += other.batches
        self.parallel_chunks += other.parallel_chunks
        self.sat_calls += other.sat_calls
        self.sat_conflicts += other.sat_conflicts
        self.sat_propagations += other.sat_propagations
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (used by the perf harness)."""
        out: Dict[str, object] = {
            "faults_simulated": self.faults_simulated,
            "events_propagated": self.events_propagated,
            "good_simulations": self.good_simulations,
            "good_cache_hits": self.good_cache_hits,
            "plan_builds": self.plan_builds,
            "plan_cache_hits": self.plan_cache_hits,
            "eval_compiles": self.eval_compiles,
            "batches": self.batches,
            "parallel_chunks": self.parallel_chunks,
            "sat_calls": self.sat_calls,
            "sat_conflicts": self.sat_conflicts,
            "sat_propagations": self.sat_propagations,
            "phase_seconds": dict(self.phase_seconds),
        }
        return out
