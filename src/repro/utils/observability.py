"""Lightweight observability counters for the fault-analysis engine.

:class:`EngineStats` is a plain bag of monotonically increasing counters
plus per-phase wall-clock accumulators.  One instance travels through a
whole analysis (fault simulation, ATPG, compaction) and is surfaced on
:class:`repro.atpg.engine.AtpgResult` / :class:`repro.core.flow.DesignState`
so benchmarks and regression tests can assert on engine behaviour
(e.g. "the evaluator compile count stays O(#distinct cells)") instead of
re-deriving it from timing alone.

This module sits in the ``utils`` layer on purpose: every layer above it
(netlist simulation, fault simulation, ATPG, flow) records into it, so it
must not import any of them.
"""

from __future__ import annotations

import threading
import time
import warnings as _pywarnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

# All duration measurements in the engine go through time.perf_counter():
# it is monotonic (wall clock adjustments cannot produce negative phase
# durations in merged stats) and has the highest available resolution.

# Guards EngineStats.merge: worker paths accumulate into private per-chunk
# instances and fold them into the caller's shared instance in one atomic
# step, so counters are never lost when merges race.
_MERGE_LOCK = threading.Lock()

# Cap on the ``EngineStats.warnings`` *display* list.  A long campaign
# that degrades once per batch would otherwise accumulate thousands of
# identical strings (every merge used to extend the list verbatim);
# occurrences past the cap are still counted in ``warning_counts``.
WARNINGS_CAP = 64


def _warning_code(entry: str) -> str:
    """The ``CODE`` of a ``"CODE: message"`` warning entry."""
    return entry.split(":", 1)[0]


@dataclass
class EngineStats:
    """Counters for one fault-analysis run (all additive / mergeable).

    * ``faults_simulated`` — fault/batch simulations performed (one count
      per fault per :func:`repro.faults.fsim.fault_simulate` call);
    * ``events_propagated`` — gate evaluations popped from the
      event-driven propagation queue across all faults;
    * ``good_simulations`` / ``good_cache_hits`` — good-machine
      simulations run vs. served from the per-circuit good-value cache;
    * ``plan_builds`` / ``plan_cache_hits`` — compiled circuit plans
      built vs. reused;
    * ``eval_compiles`` — distinct ``(n_inputs, truth_table)`` cell
      evaluators compiled while building plans;
    * ``eval_cache_hits`` / ``eval_cache_misses`` — lookups into the
      bounded global evaluator cache served vs. compiled fresh;
    * ``verdicts_inherited`` / ``verdicts_proved`` — behaviour classes
      whose detected/undetectable verdict was carried over from a
      functionally-equivalent prior analysis vs. proved in this run;
    * ``faults_carried`` / ``faults_extracted`` — fault objects reused
      from a previous design state's fault set vs. enumerated fresh;
    * ``clusters_reused`` / ``clusters_recomputed`` — undetectable-fault
      clusters carried over unchanged by the incremental union-find
      update vs. re-derived after a local circuit change;
    * ``batches`` — pattern batches fault-simulated;
    * ``wide_batches`` — batches simulated by the wide numpy backend
      (a subset of ``batches``);
    * ``words_per_batch`` — widest wide batch seen, in 64-bit words
      (merged by max, not sum: it is a high-water mark, so the counter
      of a merged run equals the widest of its parts);
    * ``vector_ops`` — vectorized array operations the wide backend
      issued: one per gate evaluated during wide good simulation and
      dense cone propagation (the wide analogue of
      ``events_propagated``, which only the event backend records);
    * ``parallel_chunks`` — work chunks dispatched to worker threads;
    * ``proc_shards`` — fault shards dispatched to *process* workers
      (the multi-core analogue of ``parallel_chunks``);
    * ``proc_workers`` — widest process pool used, in workers (a
      high-water mark like ``words_per_batch``: merged by max);
    * ``shm_bytes`` — bytes of good-value/pattern arrays placed in
      ``multiprocessing.shared_memory`` blocks for zero-copy worker
      attachment;
    * ``shard_imbalance`` — worst LPT shard balance seen: the largest
      shard's propagation-cost estimate divided by the ideal (total
      cost / shards).  1.0 is perfect balance; merged by max;
    * ``ledger_grants`` — worker-count negotiations against the
      campaign :class:`~repro.utils.supervise.CoreLedger` (one per
      pool dispatch running under a scheduler lease or static core
      share; 0 for unmanaged runs);
    * ``ledger_workers`` — widest ledger-granted pool seen (a
      high-water mark like ``proc_workers``: merged by max);
    * ``warnings`` — coded execution warnings (e.g. a requested process
      pool silently falling back to threads would be invisible without
      this): ``"CODE: message"`` strings, appended via :func:`warn_coded`
      so callers without a stats instance still see a Python
      ``RuntimeWarning``.  The list is a bounded *display* set: one
      entry per distinct code (the first message wins), at most
      :data:`WARNINGS_CAP` entries, so merging thousands of worker
      deltas cannot grow it without bound;
    * ``warning_counts`` — total occurrences per warning code,
      including every repeat the capped ``warnings`` list elides;
    * ``sat_calls`` / ``sat_conflicts`` / ``sat_propagations`` — exact
      ATPG solver effort;
    * ``sat_learned`` / ``sat_restarts`` — clauses the CDCL solver
      learned and restarts it took across the run's SAT calls;
    * ``sat_lemmas_reused`` — learned clauses carried live into a later
      fault's decision (summed over decisions: each decision counts the
      lemmas earlier decisions left in the shared solver — the quantity
      the incremental engine exists to keep high);
    * ``sat_shards`` — site-cohesive fault shards the deterministic SAT
      phase dispatched to process workers (0 for a serial phase);
    * ``sat_workers`` — widest ATPG worker pool used (a high-water mark
      like ``proc_workers``: merged by max);
    * ``sat_aborts`` — per-fault SAT decisions that ran out of their
      resource budget (deadline / conflict / decision limits);
    * ``sat_abort_reasons`` — occurrences per tripped budget
      (``deadline`` / ``conflicts`` / ``decisions`` / ``injected``),
      summing to ``sat_aborts`` when every abort recorded a reason;
    * ``hung_workers`` — process workers reaped by the supervisor after
      their shard's heartbeat went stale past the shard deadline;
    * ``shard_retries`` — shards re-submitted to a rebuilt pool after a
      hang (each lost shard is retried exactly once before the run
      falls down the usual process→thread/serial ladder);
    * ``supervise_wakeups`` — bounded waits the supervisor loop issued
      while watching shard futures (0 when supervision is disabled);
    * ``breaker_state`` — last observed circuit-breaker state per
      ``(phase, backend, topology)`` key (``closed`` / ``open`` /
      ``half-open``; merged by update — the later observation wins);
    * ``verdicts_aborted`` — behaviour classes left unclassified by an
      aborted decision (never counted as undetectable);
    * ``cache_integrity_failures`` — corrupted good-value cache entries
      detected by the checksum verification and recomputed;
    * ``degradations`` — human-readable records of every graceful
      degradation taken during the run (aborted faults, approximate
      mode, repaired cache corruption).  Deterministic given the same
      inputs and budget, so normalized-report comparisons still work;
    * ``phase_seconds`` — wall-clock per engine phase.
    """

    faults_simulated: int = 0
    events_propagated: int = 0
    good_simulations: int = 0
    good_cache_hits: int = 0
    plan_builds: int = 0
    plan_cache_hits: int = 0
    eval_compiles: int = 0
    eval_cache_hits: int = 0
    eval_cache_misses: int = 0
    verdicts_inherited: int = 0
    verdicts_proved: int = 0
    faults_carried: int = 0
    faults_extracted: int = 0
    clusters_reused: int = 0
    clusters_recomputed: int = 0
    batches: int = 0
    wide_batches: int = 0
    words_per_batch: int = 0
    vector_ops: int = 0
    parallel_chunks: int = 0
    proc_shards: int = 0
    proc_workers: int = 0
    shm_bytes: int = 0
    shard_imbalance: float = 0.0
    ledger_grants: int = 0
    ledger_workers: int = 0
    warnings: List[str] = field(default_factory=list)
    warning_counts: Dict[str, int] = field(default_factory=dict)
    sat_calls: int = 0
    sat_conflicts: int = 0
    sat_propagations: int = 0
    sat_learned: int = 0
    sat_restarts: int = 0
    sat_lemmas_reused: int = 0
    sat_shards: int = 0
    sat_workers: int = 0
    sat_aborts: int = 0
    sat_abort_reasons: Dict[str, int] = field(default_factory=dict)
    hung_workers: int = 0
    shard_retries: int = 0
    supervise_wakeups: int = 0
    breaker_state: Dict[str, str] = field(default_factory=dict)
    verdicts_aborted: int = 0
    cache_integrity_failures: int = 0
    degradations: List[str] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of a ``with`` block under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    def merge(self, other: "EngineStats") -> None:
        """Fold *other*'s counters into this instance (atomically)."""
        with _MERGE_LOCK:
            self._merge_unlocked(other)

    def _merge_unlocked(self, other: "EngineStats") -> None:
        self.faults_simulated += other.faults_simulated
        self.events_propagated += other.events_propagated
        self.good_simulations += other.good_simulations
        self.good_cache_hits += other.good_cache_hits
        self.plan_builds += other.plan_builds
        self.plan_cache_hits += other.plan_cache_hits
        self.eval_compiles += other.eval_compiles
        self.eval_cache_hits += other.eval_cache_hits
        self.eval_cache_misses += other.eval_cache_misses
        self.verdicts_inherited += other.verdicts_inherited
        self.verdicts_proved += other.verdicts_proved
        self.faults_carried += other.faults_carried
        self.faults_extracted += other.faults_extracted
        self.clusters_reused += other.clusters_reused
        self.clusters_recomputed += other.clusters_recomputed
        self.batches += other.batches
        self.wide_batches += other.wide_batches
        self.words_per_batch = max(
            self.words_per_batch, other.words_per_batch
        )
        self.vector_ops += other.vector_ops
        self.parallel_chunks += other.parallel_chunks
        self.proc_shards += other.proc_shards
        self.proc_workers = max(self.proc_workers, other.proc_workers)
        self.shm_bytes += other.shm_bytes
        self.shard_imbalance = max(
            self.shard_imbalance, other.shard_imbalance
        )
        self.ledger_grants += other.ledger_grants
        self.ledger_workers = max(self.ledger_workers, other.ledger_workers)
        self._merge_warnings(other)
        self.sat_calls += other.sat_calls
        self.sat_conflicts += other.sat_conflicts
        self.sat_propagations += other.sat_propagations
        self.sat_learned += other.sat_learned
        self.sat_restarts += other.sat_restarts
        self.sat_lemmas_reused += other.sat_lemmas_reused
        self.sat_shards += other.sat_shards
        self.sat_workers = max(self.sat_workers, other.sat_workers)
        self.sat_aborts += other.sat_aborts
        for reason, n in other.sat_abort_reasons.items():
            self.sat_abort_reasons[reason] = \
                self.sat_abort_reasons.get(reason, 0) + n
        self.hung_workers += other.hung_workers
        self.shard_retries += other.shard_retries
        self.supervise_wakeups += other.supervise_wakeups
        self.breaker_state.update(other.breaker_state)
        self.verdicts_aborted += other.verdicts_aborted
        self.cache_integrity_failures += other.cache_integrity_failures
        self.degradations.extend(other.degradations)
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)

    def _merge_warnings(self, other: "EngineStats") -> None:
        """Fold warnings in: dedupe the display list by code, sum counts.

        An instance whose ``warnings`` list was populated directly
        (hand-constructed in tests, or by pre-``warning_counts`` code)
        has an empty count map; its effective counts are derived from
        the list so no occurrence is lost.
        """
        for inst in (self, other):
            if not inst.warning_counts and inst.warnings:
                for entry in inst.warnings:
                    code = _warning_code(entry)
                    inst.warning_counts[code] = \
                        inst.warning_counts.get(code, 0) + 1
        for code, n in other.warning_counts.items():
            self.warning_counts[code] = self.warning_counts.get(code, 0) + n
        represented = {_warning_code(e) for e in self.warnings}
        for entry in other.warnings:
            code = _warning_code(entry)
            if code in represented or len(self.warnings) >= WARNINGS_CAP:
                continue
            represented.add(code)
            self.warnings.append(entry)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (used by the perf harness)."""
        out: Dict[str, object] = {
            "faults_simulated": self.faults_simulated,
            "events_propagated": self.events_propagated,
            "good_simulations": self.good_simulations,
            "good_cache_hits": self.good_cache_hits,
            "plan_builds": self.plan_builds,
            "plan_cache_hits": self.plan_cache_hits,
            "eval_compiles": self.eval_compiles,
            "eval_cache_hits": self.eval_cache_hits,
            "eval_cache_misses": self.eval_cache_misses,
            "verdicts_inherited": self.verdicts_inherited,
            "verdicts_proved": self.verdicts_proved,
            "faults_carried": self.faults_carried,
            "faults_extracted": self.faults_extracted,
            "clusters_reused": self.clusters_reused,
            "clusters_recomputed": self.clusters_recomputed,
            "batches": self.batches,
            "wide_batches": self.wide_batches,
            "words_per_batch": self.words_per_batch,
            "vector_ops": self.vector_ops,
            "parallel_chunks": self.parallel_chunks,
            "proc_shards": self.proc_shards,
            "proc_workers": self.proc_workers,
            "shm_bytes": self.shm_bytes,
            "shard_imbalance": self.shard_imbalance,
            "ledger_grants": self.ledger_grants,
            "ledger_workers": self.ledger_workers,
            "warnings": list(self.warnings),
            "warning_counts": dict(self.warning_counts),
            "sat_calls": self.sat_calls,
            "sat_conflicts": self.sat_conflicts,
            "sat_propagations": self.sat_propagations,
            "sat_learned": self.sat_learned,
            "sat_restarts": self.sat_restarts,
            "sat_lemmas_reused": self.sat_lemmas_reused,
            "sat_shards": self.sat_shards,
            "sat_workers": self.sat_workers,
            "sat_aborts": self.sat_aborts,
            "sat_abort_reasons": dict(self.sat_abort_reasons),
            "hung_workers": self.hung_workers,
            "shard_retries": self.shard_retries,
            "supervise_wakeups": self.supervise_wakeups,
            "breaker_state": dict(self.breaker_state),
            "verdicts_aborted": self.verdicts_aborted,
            "cache_integrity_failures": self.cache_integrity_failures,
            "degradations": list(self.degradations),
            "phase_seconds": dict(self.phase_seconds),
        }
        return out


def warn_coded(
    stats: Optional[EngineStats], code: str, message: str
) -> None:
    """Record a coded execution warning on *stats* and as a RuntimeWarning.

    The double emission is deliberate: ``stats.warnings`` makes the
    event assertable (tests and the runner journal can check that a
    degraded execution mode *announced* itself), and the Python warning
    reaches callers that did not pass a stats instance — a requested
    process pool must never fall back to threads or serial silently.

    ``stats.warnings`` follows the same bounded-display discipline as
    :meth:`EngineStats.merge`: the first message of each code is kept
    (capped at :data:`WARNINGS_CAP` entries), repeats only increment
    ``stats.warning_counts[code]``.  The Python ``RuntimeWarning`` is
    emitted every time; the normal warning filters collapse duplicates.
    """
    if stats is not None:
        stats.warning_counts[code] = stats.warning_counts.get(code, 0) + 1
        represented = any(
            _warning_code(e) == code for e in stats.warnings
        )
        if not represented and len(stats.warnings) < WARNINGS_CAP:
            stats.warnings.append(f"{code}: {message}")
    _pywarnings.warn(f"[{code}] {message}", RuntimeWarning, stacklevel=3)


@dataclass
class ResynthesisStats:
    """Effort counters for one run of the resynthesis procedure.

    * ``candidates_evaluated`` — candidate implementations actually
      synthesized and placed (evaluation-cache misses);
    * ``candidates_speculated`` — candidates whose evaluation was
      started ahead of the in-order acceptance scan;
    * ``candidates_wasted`` — speculated evaluations whose result was
      never consumed by the pass that requested them (they stay in the
      evaluation cache and may still pay off in a later pass or q step);
    * ``candidate_cache_hits`` / ``candidate_cache_misses`` — lookups
      into the (state, replacement, allowed-cells) evaluation cache;
    * ``backtrack_attempts`` — attempts issued by the Section III-C
      backtracking search;
    * ``engine`` — merged :class:`EngineStats` of every fault-analysis
      run the procedure triggered (verdicts inherited vs. proved, faults
      carried vs. extracted, incremental cluster updates, ...).
    """

    candidates_evaluated: int = 0
    candidates_speculated: int = 0
    candidates_wasted: int = 0
    candidate_cache_hits: int = 0
    candidate_cache_misses: int = 0
    backtrack_attempts: int = 0
    engine: EngineStats = field(default_factory=EngineStats)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (used by the perf harness)."""
        return {
            "candidates_evaluated": self.candidates_evaluated,
            "candidates_speculated": self.candidates_speculated,
            "candidates_wasted": self.candidates_wasted,
            "candidate_cache_hits": self.candidate_cache_hits,
            "candidate_cache_misses": self.candidate_cache_misses,
            "backtrack_attempts": self.backtrack_attempts,
            "engine": self.engine.as_dict(),
        }
