"""Disjoint-set (union-find) with path compression and union by size.

Used by :mod:`repro.core.clustering` to merge subsets of structurally
adjacent undetectable faults (Section II of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items.

    Items are added lazily on first use.  ``find`` applies path
    compression; ``union`` merges by size, so the amortized cost per
    operation is effectively constant.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register *item* as a singleton set if not already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of *item*'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing *a* and *b*; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True if *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, item: Hashable) -> int:
        """Return the size of the set containing *item*."""
        return self._size[self.find(item)]

    def groups(self) -> List[List[Hashable]]:
        """Return all sets as lists, largest first (ties broken stably)."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return sorted(by_root.values(), key=len, reverse=True)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)
