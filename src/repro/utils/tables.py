"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
this module renders them in aligned monospace columns.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
