"""Instrumented failure-injection seams.

A *seam* is a named point in the engine where a chaos harness (see
:mod:`repro.testing.chaos`) may observe or perturb execution: force a
SAT decision to abort, corrupt a cache entry on its way out, raise in
the middle of an analysis.  Production code fires seams with::

    from repro.utils import seams
    if seams.active and seams.fire("atpg.decide", fault=fault) == "abort":
        ...

The module-level :data:`active` flag keeps the disabled path to a single
attribute read, so seams cost nothing unless a harness is installed.

This module sits in the ``utils`` layer on purpose (like
:mod:`repro.utils.observability`): every layer above it fires seams, so
it must not import any of them.  Handlers are process-global and not
thread-scoped — concurrent engines share one installed harness, which is
what a chaos run wants.

Known seam names (the registry does not enforce this list):

* ``atpg.decide`` — before each exact per-fault SAT decision; a handler
  returning ``"abort"`` forces an ABORTED verdict for that fault.
* ``fsim.good_cache_hit`` — on each good-value cache hit, with the
  ``plan`` (:class:`~repro.netlist.simulator.CompiledCircuit`) and the
  hit ``batch_key``; a handler may corrupt or replace
  ``plan.good_cache[batch_key]`` to model a rotten cache entry (pair
  with cache integrity checking, which catches and repairs it).
* ``fsim.shm_block`` — in the parent process, after a shared-memory
  good-value block is written and checksummed and before any worker
  attaches (:class:`repro.faults.psim.SharedBatchBlock`), with the
  ``block`` and a writable numpy ``view`` of it; a handler may corrupt
  the view to model rot between write and read (the workers' CRC
  verification must catch it).
* ``psim.shard`` — in each process worker, before it simulates its
  fault shard, with the shard's ``indices`` and the worker ``pid``; a
  handler may kill the process to model a worker death mid-shard
  (handlers are inherited by fork-started workers).
* ``psim.shard_start`` — in each process worker, after it attached and
  CRC-verified the shared block and bumped its first heartbeat, with
  the ``shard`` index, its ``indices``, the worker ``pid`` and the
  writable ``heartbeats`` view (``None`` when supervision is off); a
  handler may sleep to model a hung or slow worker, or scribble on the
  heartbeat row to model a torn write (the supervision layer must reap
  hangs under a shard deadline, and torn beats must never change a
  verdict — they live outside the CRC-covered payload).
* ``atpg.shard_start`` — same contract for the SAT phase: fires in
  :func:`repro.atpg.patpg._run_sat_shard` after the worker attached the
  test board, with the ``shard`` index, worker ``pid`` and the board's
  ``counters`` and ``heartbeats`` views.
* ``atpg.shard`` — in each process worker, before it runs the SAT
  decisions of one ATPG shard (:func:`repro.atpg.patpg._run_sat_shard`),
  with the ``shard`` index, its ``n_faults`` and the worker ``pid``; a
  handler may kill the process to model a SAT worker death mid-shard
  (``run_atpg`` must fall back to the serial phase with the coded
  ``MC-FALLBACK-ATPG`` warning and unchanged verdicts).
* ``flow.analyze`` — inside :func:`repro.core.flow.analyze_design`; a
  handler may raise to model a crash mid-analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

#: True iff at least one handler is registered.  Hot paths read this
#: before calling :func:`fire`.
active = False

_handlers: Dict[str, Callable[..., object]] = {}


def register(name: str, handler: Callable[..., object]) -> None:
    """Install *handler* for seam *name* (replacing any previous one)."""
    global active
    _handlers[name] = handler
    active = True


def unregister(name: str) -> None:
    """Remove the handler for seam *name* (no-op if absent)."""
    global active
    _handlers.pop(name, None)
    active = bool(_handlers)


def clear() -> None:
    """Remove every handler (test teardown hook)."""
    global active
    _handlers.clear()
    active = False


def handler_for(name: str) -> Optional[Callable[..., object]]:
    """The installed handler for *name*, or None."""
    return _handlers.get(name)


def fire(name: str, **context: object) -> object:
    """Invoke the handler for *name* with *context*; None if uninstalled.

    Whatever the handler returns is passed back to the firing site; a
    handler may also raise, which propagates (that is the point of the
    ``flow.analyze`` seam).
    """
    handler = _handlers.get(name)
    if handler is None:
        return None
    return handler(**context)
