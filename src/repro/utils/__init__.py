"""Shared utilities: union-find, deterministic RNG, tables, observability."""

from repro.utils.unionfind import UnionFind
from repro.utils.observability import EngineStats
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

__all__ = ["UnionFind", "EngineStats", "make_rng", "format_table"]
