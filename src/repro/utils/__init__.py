"""Shared utilities: union-find, deterministic RNG, table formatting."""

from repro.utils.unionfind import UnionFind
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

__all__ = ["UnionFind", "make_rng", "format_table"]
