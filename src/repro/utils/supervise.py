"""Supervised execution: shard deadlines, hung-worker detection, breaker.

The process pools (:mod:`repro.faults.psim`, :mod:`repro.atpg.patpg`)
historically handled only *crash*-class failures — a dead worker breaks
the pool and raises.  A worker that **hangs** (deadlock, pathological
SAT query, stalled shm attach) blocked ``future.result()`` forever.
This module supplies the three pieces that make hang-class failures
survivable, shared by both pools:

* **Deadline propagation** — :func:`deadline_scope` installs an
  absolute monotonic deadline for the current thread (the runner wraps
  every timed task body in one, and process-isolated workers pick it up
  from ``REPRO_SUPERVISE_DEADLINE``); :func:`remaining_time` is read by
  the dispatch layers to slice the task deadline into shard deadlines.
* **Supervision** — :func:`supervise_futures` polls a set of shard
  futures with bounded waits and watches per-shard heartbeats (workers
  store a monotonically increasing beat into the shared-memory block
  next to the payload); a shard whose future is unfinished *and* whose
  heartbeat has not advanced within the shard deadline is declared
  hung.  The caller kills and rebuilds the pool and re-runs the lost
  shards once before falling down the existing degradation ladder.
* **Circuit breaker** — a process-global health score per
  ``(phase, backend, circuit-topology)``: repeated process-layer
  failures open the breaker so a flaky environment stops paying the
  spawn-and-timeout tax on every call; after a cooldown a single
  half-open probe is allowed through and its outcome closes or reopens
  the breaker.

Environment knobs (all read at call time, like ``REPRO_SIM_*``):

* ``REPRO_SUPERVISE_SHARD_TIMEOUT`` — per-shard deadline in seconds
  (unset or <= 0 disables supervision; the pools then block exactly as
  before).  ``--shard-timeout`` on the runner CLI sets this.
* ``REPRO_SUPERVISE_POLL_MS`` — supervisor wake-up interval (default
  50 ms).
* ``REPRO_SUPERVISE_BREAKER_THRESHOLD`` — consecutive process-layer
  failures that open the breaker (default 3; 0 disables the breaker).
* ``REPRO_SUPERVISE_BREAKER_COOLDOWN`` — seconds an open breaker
  rejects calls before allowing a half-open probe (default 30).
* ``REPRO_SUPERVISE_DEADLINE`` — absolute per-task budget in seconds,
  set by the runner for process-isolated tasks; consumed once at
  interpreter startup of the task worker.

This module sits in the ``utils`` layer on purpose (like
:mod:`repro.utils.observability`): both pools and the runner import it,
so it must not import any of them.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

# Warning codes surfaced through EngineStats.warnings / warn_coded.
CODE_WORKER_HUNG = "MC-WORKER-HUNG"
CODE_SHARD_RETRY = "MC-SHARD-RETRY"
CODE_BREAKER_OPEN = "MC-BREAKER-OPEN"


class WorkerHungError(RuntimeError):
    """A worker stalled past its shard deadline and was reaped.

    Raised by the pools only after the one-shot shard retry also hung;
    ``fault_simulate`` / ``run_atpg`` turn it into a coded
    ``MC-WORKER-HUNG`` warning plus the thread/serial fallback.  The
    counters carried here let the fallback path surface the supervision
    story even though the failed attempt's staged stats are discarded.
    """

    code = CODE_WORKER_HUNG

    def __init__(self, message: str, hung_workers: int = 1,
                 shard_retries: int = 0):
        super().__init__(message)
        self.hung_workers = hung_workers
        self.shard_retries = shard_retries


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def _env_float(env: Mapping[str, str], key: str,
               default: Optional[float]) -> Optional[float]:
    raw = env.get(key, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(f"{key}: expected a number, got {raw!r}") from exc


@dataclass(frozen=True)
class SuperviseConfig:
    """Resolved supervision policy for one dispatch call.

    ``shard_timeout`` of ``None`` means unsupervised (the historical
    blocking wait) *unless* a deadline scope is active, in which case
    the remaining task budget becomes the shard deadline — the runner's
    ``TaskSpec.timeout`` thereby bounds every shard instead of only the
    thread-abandon/kill backstop.
    """

    shard_timeout: Optional[float] = None
    poll_s: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0

    def effective_timeout(self) -> Optional[float]:
        """Per-shard deadline after slicing in the task deadline."""
        timeout = self.shard_timeout
        rem = remaining_time()
        if rem is not None:
            rem = max(rem, 0.05)  # a spent budget still gets one poll
            timeout = rem if timeout is None else min(timeout, rem)
        return timeout


def resolve_supervision(
    shard_timeout: Optional[float] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> SuperviseConfig:
    """Supervision config from the environment (read at call time).

    An explicit *shard_timeout* wins over ``REPRO_SUPERVISE_SHARD_TIMEOUT``;
    values <= 0 disable supervision.
    """
    env = os.environ if environ is None else environ
    if shard_timeout is None:
        shard_timeout = _env_float(env, "REPRO_SUPERVISE_SHARD_TIMEOUT", None)
    if shard_timeout is not None and shard_timeout <= 0:
        shard_timeout = None
    poll_ms = _env_float(env, "REPRO_SUPERVISE_POLL_MS", 50.0)
    threshold = int(
        _env_float(env, "REPRO_SUPERVISE_BREAKER_THRESHOLD", 3.0)
    )
    cooldown = _env_float(env, "REPRO_SUPERVISE_BREAKER_COOLDOWN", 30.0)
    return SuperviseConfig(
        shard_timeout=shard_timeout,
        poll_s=max(poll_ms, 1.0) / 1000.0,
        breaker_threshold=max(threshold, 0),
        breaker_cooldown=max(cooldown, 0.0),
    )


# ----------------------------------------------------------------------
# Deadline propagation (TaskSpec.timeout -> shard deadlines)
# ----------------------------------------------------------------------
_DEADLINE = threading.local()


class deadline_scope:
    """Install an absolute deadline *seconds* from now on this thread.

    Nestable; the innermost scope wins (an inner scope may only shorten
    the budget — a task cannot grant itself more time than its runner
    allowed).  ``None`` seconds is a no-op scope, so callers can wrap
    unconditionally.
    """

    def __init__(self, seconds: Optional[float]):
        self._until = (
            None if seconds is None else time.monotonic() + seconds
        )
        self._prev: Optional[float] = None

    def __enter__(self) -> "deadline_scope":
        self._prev = getattr(_DEADLINE, "until", None)
        if self._until is not None:
            until = self._until
            if self._prev is not None:
                until = min(until, self._prev)
            _DEADLINE.until = until
        return self

    def __exit__(self, *exc_info) -> None:
        _DEADLINE.until = self._prev


def remaining_time() -> Optional[float]:
    """Seconds left in the innermost active deadline scope (None if none).

    May be <= 0 when the budget is already spent; callers clamp.
    """
    until = getattr(_DEADLINE, "until", None)
    if until is None:
        return None
    return until - time.monotonic()


def install_deadline_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[deadline_scope]:
    """Enter a deadline scope from ``REPRO_SUPERVISE_DEADLINE`` (worker side).

    The runner sets the variable for process-isolated tasks so the
    fresh interpreter inherits the task budget.  Returns the entered
    scope (caller may hold it for the process lifetime) or None.
    """
    env = os.environ if environ is None else environ
    seconds = _env_float(env, "REPRO_SUPERVISE_DEADLINE", None)
    if seconds is None or seconds <= 0:
        return None
    scope = deadline_scope(seconds)
    scope.__enter__()
    return scope


# ----------------------------------------------------------------------
# Supervisor loop
# ----------------------------------------------------------------------
def supervise_futures(
    futures: Mapping[int, Future],
    heartbeats: Callable[[], Mapping[int, int]],
    *,
    shard_timeout: Optional[float],
    poll_s: float = 0.05,
    stats=None,
) -> Tuple[List[int], List[int]]:
    """Wait on shard *futures*, detecting stalls via *heartbeats*.

    *futures* maps shard id to its future; *heartbeats* returns the
    current beat value per shard id (workers bump their beat as they
    make progress — any change counts as liveness).  A shard whose
    future is unfinished and whose beat has not changed for
    *shard_timeout* seconds is declared hung, and the function returns
    immediately so the caller can reap the pool.

    Returns ``(done_ids, hung_ids)``: ``done_ids`` are shards whose
    future completed (result *or* exception — the caller's ``result()``
    call surfaces either); ``hung_ids`` is empty on full completion.
    With *shard_timeout* ``None`` this degrades to a plain blocking
    wait — exactly the pre-supervision behaviour.

    *stats* (an ``EngineStats``-like object, optional) gets
    ``supervise_wakeups`` bumped per bounded wait, making supervisor
    activity observable.
    """
    ids = list(futures)
    if shard_timeout is None:
        wait(list(futures.values()))
        return ids, []
    now = time.monotonic()
    beats = dict(heartbeats())
    last_change: Dict[int, float] = {i: now for i in ids}
    done: List[int] = []
    pending = set(ids)
    while pending:
        finished, _ = wait(
            [futures[i] for i in pending],
            timeout=poll_s,
            return_when=FIRST_COMPLETED,
        )
        if stats is not None:
            stats.supervise_wakeups += 1
        if finished:
            for i in list(pending):
                if futures[i].done():
                    pending.discard(i)
                    done.append(i)
            continue
        now = time.monotonic()
        fresh = heartbeats()
        hung: List[int] = []
        for i in sorted(pending):
            beat = fresh.get(i, 0)
            if beat != beats.get(i):
                beats[i] = beat
                last_change[i] = now
            elif now - last_change[i] > shard_timeout:
                hung.append(i)
        if hung:
            # Settle an instant race: a future may have completed
            # between the bounded wait and the staleness check.
            for i in list(pending):
                if futures[i].done():
                    pending.discard(i)
                    done.append(i)
            hung = [i for i in hung if i in pending]
            if hung:
                return done, hung
    return done, []


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes.

    States: ``closed`` (calls pass; failures count), ``open`` (calls
    rejected until the cooldown elapses), ``half-open`` (exactly one
    probe call passes; its success closes the breaker, its failure
    reopens it for another cooldown).  Transitions never change any
    verdict — the breaker only decides whether the *process* execution
    path is attempted; rejected calls take the same bit-identical
    thread/serial fallback as any other ``ProcessExecUnavailable``.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0):
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_unlocked(time.monotonic())

    def _state_unlocked(self, now: float) -> str:
        if self._probing:
            return "half-open"
        if self.opened_at is None:
            return "closed"
        if now - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self, now: Optional[float] = None) -> bool:
        """Whether a call may attempt the process path right now.

        In half-open state only the first caller gets the probe; the
        rest are rejected until the probe resolves via
        :meth:`record_success` / :meth:`record_failure`.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            state = self._state_unlocked(now)
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.failures = 0
            self.opened_at = None
            self._probing = False

    def record_failure(self, now: Optional[float] = None) -> None:
        if now is None:
            now = time.monotonic()
        with self._lock:
            self.failures += 1
            if self._probing:
                # Failed half-open probe: reopen for another cooldown.
                self._probing = False
                self.opened_at = now
            elif self.failures >= self.threshold > 0:
                self.opened_at = now

    def cancel_probe(self) -> None:
        """Release a claimed half-open probe without judging it.

        Used when the probe call failed for a reason that says nothing
        about backend health (e.g. the environment turned out to be
        unavailable): the breaker keeps its state and the next caller
        gets the probe instead — leaving ``_probing`` set would wedge
        the breaker in half-open forever.
        """
        with self._lock:
            self._probing = False

    def seconds_until_probe(self, now: Optional[float] = None) -> float:
        if now is None:
            now = time.monotonic()
        with self._lock:
            if self.opened_at is None:
                return 0.0
            return max(0.0, self.cooldown - (now - self.opened_at))


_BREAKERS: Dict[object, CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(key: object, config: SuperviseConfig) -> Optional[CircuitBreaker]:
    """The process-global breaker for *key* (None when disabled).

    Keys are ``(phase, backend, circuit-topology-token)`` tuples so one
    flaky circuit/backend pair cannot open the breaker for healthy
    ones.  The registry is process-global on purpose: the health score
    must survive across calls, pools, and circuits sharing a topology.
    """
    if config.breaker_threshold <= 0:
        return None
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=config.breaker_threshold,
                cooldown=config.breaker_cooldown,
            )
            _BREAKERS[key] = breaker
        else:
            # Knobs are read at call time; keep a live breaker in sync.
            breaker.threshold = config.breaker_threshold
            breaker.cooldown = config.breaker_cooldown
        return breaker


def reset_breakers() -> None:
    """Drop every breaker (test hook)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


def breaker_states() -> Dict[str, str]:
    """Snapshot of every live breaker's state (observability hook)."""
    with _BREAKERS_LOCK:
        return {str(key): b.state for key, b in _BREAKERS.items()}


# ----------------------------------------------------------------------
# Core ledger (campaign scheduler <-> inner pool arbitration)
# ----------------------------------------------------------------------
class Lease:
    """One in-flight task's claim on the :class:`CoreLedger`.

    The scheduler acquires a lease per dispatched task and activates it
    on the thread running the task body; every inner pool that asks for
    workers while the lease is active is granted at most the ledger's
    current fair share.  Grants are re-evaluated on every call, so a
    task that outlives its peers widens to the full machine on its next
    batch without any callback plumbing.
    """

    def __init__(self, ledger: "CoreLedger", task_id: str):
        self.ledger = ledger
        self.task_id = task_id
        self.grants = 0
        self.peak_workers = 0
        self.released = False

    def grant(self, requested: Optional[int]) -> int:
        """Workers allowed right now for a *requested* count.

        ``None`` means "as many as I'm allowed" (the lease share); an
        explicit request is capped at the share but never below 1.
        """
        share = self.ledger.share()
        allowed = share if requested is None else max(1, min(requested, share))
        self.grants += 1
        self.peak_workers = max(self.peak_workers, allowed)
        self.ledger.record_grant(allowed)
        return allowed

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.ledger._release(self)

    def activate(self) -> "activate_lease":
        return activate_lease(self)


class CoreLedger:
    """Process-global arbiter dividing cores among in-flight tasks.

    ``share()`` is the fair slice for one active lease:
    ``max(1, total // active)`` — a lone task gets everything, four
    peers get a quarter each, and shares renegotiate implicitly because
    pools ask again on every dispatch.  Oversubscription is bounded at
    ``total + active`` in the worst instant (integer division rounds
    down, lone stragglers round up to 1), never quadratic.
    """

    def __init__(self, total: Optional[int] = None):
        self._lock = threading.Lock()
        self._active: Dict[int, Lease] = {}
        self.total_grants = 0
        self.peak_active = 0
        self.configure(total)

    def configure(self, total: Optional[int] = None) -> None:
        """Set the core budget; ``None`` reads ``REPRO_RUN_CORES``/CPU count."""
        if total is None:
            raw = os.environ.get("REPRO_RUN_CORES", "").strip()
            if raw:
                total = int(raw)
            else:
                total = os.cpu_count() or 1
        with self._lock:
            self.total = max(1, int(total))

    def acquire(self, task_id: str) -> Lease:
        lease = Lease(self, task_id)
        with self._lock:
            self._active[id(lease)] = lease
            self.peak_active = max(self.peak_active, len(self._active))
        return lease

    def _release(self, lease: Lease) -> None:
        with self._lock:
            self._active.pop(id(lease), None)

    def share(self) -> int:
        """Current fair share per active lease (>= 1)."""
        with self._lock:
            active = max(1, len(self._active))
            return max(1, self.total // active)

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def record_grant(self, allowed: int) -> None:
        with self._lock:
            self.total_grants += 1


_CORE_LEDGER: Optional[CoreLedger] = None
_CORE_LEDGER_LOCK = threading.Lock()
_LEASE = threading.local()
_STATIC_SHARE: Optional[int] = None


def core_ledger() -> CoreLedger:
    """The process-global ledger (created lazily)."""
    global _CORE_LEDGER
    with _CORE_LEDGER_LOCK:
        if _CORE_LEDGER is None:
            _CORE_LEDGER = CoreLedger()
        return _CORE_LEDGER


def reset_core_ledger() -> None:
    """Drop the ledger, any active lease, and the static share (test hook)."""
    global _CORE_LEDGER, _STATIC_SHARE
    with _CORE_LEDGER_LOCK:
        _CORE_LEDGER = None
    _STATIC_SHARE = None
    _LEASE.current = None


def current_lease() -> Optional[Lease]:
    """The lease active on this thread, if any."""
    return getattr(_LEASE, "current", None)


class activate_lease:
    """Install *lease* as this thread's active lease (nestable, None ok).

    The scheduler enters this on the thread executing a task body; the
    runner re-enters it inside the timed-body worker thread so the
    lease survives the thread hop.
    """

    def __init__(self, lease: Optional[Lease]):
        self._lease = lease
        self._prev: Optional[Lease] = None

    def __enter__(self) -> "activate_lease":
        self._prev = getattr(_LEASE, "current", None)
        if self._lease is not None:
            _LEASE.current = self._lease
        return self

    def __exit__(self, *exc_info) -> None:
        _LEASE.current = self._prev


def install_core_share_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """Adopt ``REPRO_RUN_CORE_SHARE`` as this process's static share.

    Process-isolated task workers cannot see the parent's ledger, so
    the runner exports the share that was current at dispatch time and
    the fresh interpreter caps every pool at it.  Returns the installed
    share (None when unset).
    """
    global _STATIC_SHARE
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_RUN_CORE_SHARE", "").strip()
    if not raw:
        return None
    share = max(1, int(raw))
    _STATIC_SHARE = share
    return share


def negotiate_workers(requested: Optional[int]) -> Optional[int]:
    """Cap a worker request at the caller's core entitlement.

    Resolution order: an active :class:`Lease` (scheduler-managed
    thread) wins, then the static share installed from
    ``REPRO_RUN_CORE_SHARE`` (process-isolated worker); with neither,
    the request passes through untouched — serial runs and direct API
    callers see exactly the historical behaviour.
    """
    lease = current_lease()
    if lease is not None:
        return lease.grant(requested)
    if _STATIC_SHARE is not None:
        if requested is None:
            return _STATIC_SHARE
        return max(1, min(requested, _STATIC_SHARE))
    return requested


def active_core_share() -> Optional[int]:
    """The share a renegotiating pool should cap itself at right now.

    ``None`` means unmanaged (no lease, no static share) — pools keep
    their configured worker count.
    """
    lease = current_lease()
    if lease is not None:
        return lease.ledger.share()
    return _STATIC_SHARE
