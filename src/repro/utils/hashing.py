"""Process-stable string hashing with good avalanche behaviour.

Python's built-in ``hash`` for strings is salted per process, so every
deterministic pseudo-random decision in the library (DFM site flagging,
guideline assignment, routing sub-track selection, open-defect polarity)
goes through this function instead.  An FNV-style accumulation alone
correlates badly on near-identical strings (site ids differ in one
character), so a splitmix64 finalizer is applied for avalanche.
"""

from __future__ import annotations

_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(text: str) -> int:
    """Deterministic, well-mixed 64-bit hash of *text*."""
    value = 0xCBF29CE484222325
    for ch in text:
        value ^= ord(ch)
        value = (value * 0x100000001B3) & _MASK
    # splitmix64 finalizer for avalanche.
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)
