"""Deterministic random number generation helpers.

Every randomized component in the library (benchmark generators, placement
annealing, random pattern fault simulation) takes an explicit seed so the
whole pipeline is reproducible run-to-run.
"""

from __future__ import annotations

import random


def make_rng(seed: int | str) -> random.Random:
    """Return a private :class:`random.Random` seeded deterministically.

    String seeds are hashed stably (Python's ``hash`` of str is salted per
    process, so we fold characters explicitly instead).
    """
    if isinstance(seed, str):
        value = 0
        for ch in seed:
            value = (value * 131 + ord(ch)) & 0xFFFFFFFFFFFF
        seed = value
    return random.Random(seed)
