"""Standard cell library substrate.

Models each cell at three levels:

* **logic** — truth table + pin names (what synthesis/simulation need);
* **electrical** — area, input capacitance, drive resistance, intrinsic
  delay, leakage (what physical design / STA / power need);
* **switch** — a transistor-level series/parallel CMOS network (what the
  cell-internal DFM defect enumeration and UDFM extraction need).

The concrete library (:mod:`repro.library.osu018`) mirrors the 21-cell
combinational subset of the OSU 0.18um library used in the paper.
"""

from repro.library.transistor import (
    Expr,
    SwitchNetwork,
    Stage,
    lit,
    par,
    ser,
)
from repro.library.defects import CellDefect, enumerate_cell_defects
from repro.library.cell import StandardCell
from repro.library.osu018 import osu018_library, Library
from repro.library.udfm import UdfmEntry, extract_udfm

__all__ = [
    "Expr",
    "SwitchNetwork",
    "Stage",
    "lit",
    "par",
    "ser",
    "CellDefect",
    "enumerate_cell_defects",
    "StandardCell",
    "osu018_library",
    "Library",
    "UdfmEntry",
    "extract_udfm",
]
