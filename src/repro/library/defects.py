"""Cell-internal DFM defect enumeration and switch-level fault translation.

Following the methodology of refs [7]-[9] of the paper, each standard cell
is analyzed at the transistor level:

1. enumerate physical defect *sites* that DFM guidelines can flag — contact
   opens on source/drain diffusion (one site per contact, and wider drive
   strengths have more contacts), gate-poly contact opens, channel
   stuck-on shorts, and dominant bridges between cell nodes;
2. simulate each defect at switch level over every input minterm to obtain
   the cell's faulty truth table;
3. classify the defect as *static* (wrong strong value at some minterm) or
   *dynamic* (output floats at some minterm, so a two-pattern test with
   charge retention is needed);
4. keep only defects that are testable at the cell boundary (they have at
   least one potential detecting pattern), mirroring the UDFM construction
   of ref [9];
5. tag each kept site with the DFM guideline that flags it.

Distinct physical sites with identical faulty behaviour remain distinct
faults (they are separate potential systematic defects); ATPG collapses
them by behaviour signature internally but fault *counts* follow sites,
as in industrial fault accounting.

Guideline flagging is a deterministic approximation (the real guideline
decks are proprietary): each site hashes to a guideline of the family that
matches its mechanism, and a deterministic subset of sites is flagged, with
denser/larger cells flagged at a higher rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.library.transistor import V0, V1, VZ, SwitchNetwork

VIA_GUIDELINE_COUNT = 19
METAL_GUIDELINE_COUNT = 29
DENSITY_GUIDELINE_COUNT = 11

STATIC = "static"
DYNAMIC = "dynamic"


@dataclass(frozen=True)
class CellDefect:
    """One DFM-flagged potential systematic defect inside a cell type.

    ``faulty`` holds, per input minterm, the strong faulty output value
    (0/1) or ``None`` when the faulty output is floating or unknown.
    ``floating`` lists the minterms where the output floats — for dynamic
    defects the output then retains the previous cycle's value.
    """

    cell: str
    defect_id: str
    mechanism: str  # "contact-open" | "gate-open" | "channel-on" | "bridge"
    kind: str  # STATIC | DYNAMIC
    faulty: Tuple[Optional[int], ...]
    floating: FrozenSet[int]
    guideline: str

    @property
    def signature(self) -> Tuple:
        """Equivalence key: defects with equal signatures behave alike."""
        return (self.kind, self.faulty, self.floating)

    def static_detecting_minterms(self, good_tt: int) -> List[int]:
        """Minterms whose strong faulty value differs from the good value."""
        out = []
        for m, fv in enumerate(self.faulty):
            if fv is not None and fv != ((good_tt >> m) & 1):
                out.append(m)
        return out

    def dynamic_detecting_pairs(self, good_tt: int) -> List[Tuple[int, int]]:
        """(init, test) minterm pairs detecting via charge retention."""
        if self.kind != DYNAMIC:
            return []
        pairs = []
        for m1 in sorted(self.floating):
            good1 = (good_tt >> m1) & 1
            for m0, fv in enumerate(self.faulty):
                if m0 == m1 or fv is None:
                    continue
                if fv != good1:
                    pairs.append((m0, m1))
        return pairs

    def is_cell_level_testable(self, good_tt: int) -> bool:
        """True if at least one potential detecting condition exists."""
        if self.static_detecting_minterms(good_tt):
            return True
        return bool(self.dynamic_detecting_pairs(good_tt))


from repro.utils.hashing import stable_hash as _stable_hash


def _assign_guideline(site_id: str, mechanism: str) -> str:
    """Map a defect site to the DFM guideline (by family) that flags it."""
    h = _stable_hash(site_id)
    if mechanism in ("contact-open", "gate-open"):
        return f"VIA-{h % VIA_GUIDELINE_COUNT + 1:02d}"
    if mechanism == "bridge":
        return f"MET-{h % METAL_GUIDELINE_COUNT + 1:02d}"
    # Channel shorts are attributed to density-related poly guidelines
    # most of the time, metal otherwise.
    if h % 10 < 7:
        return f"DEN-{h % DENSITY_GUIDELINE_COUNT + 1:02d}"
    return f"MET-{h % METAL_GUIDELINE_COUNT + 1:02d}"


def _is_flagged(site_id: str, flag_rate: int) -> bool:
    """Deterministically decide whether DFM guidelines flag this site."""
    return _stable_hash("flag:" + site_id) % 100 < flag_rate


def _faulty_response(
    network: SwitchNetwork,
    overrides: Optional[Dict[str, str]] = None,
    bridges: Sequence[Tuple[str, str]] = (),
) -> Tuple[Tuple[Optional[int], ...], FrozenSet[int]]:
    """Simulate a defect over all minterms; return (faulty values, floats)."""
    n = 1 << len(network.inputs)
    faulty: List[Optional[int]] = []
    floating: List[int] = []
    for m in range(n):
        v = network.evaluate(m, overrides=overrides, bridges=bridges)
        if v in (V0, V1):
            faulty.append(v)
        else:
            faulty.append(None)
            if v == VZ:
                floating.append(m)
    return tuple(faulty), frozenset(floating)


def enumerate_cell_defects(
    cell_name: str,
    network: SwitchNetwork,
    drive: int,
    flag_rate: int,
) -> List[CellDefect]:
    """Enumerate the DFM-flagged, cell-level-testable defects of a cell.

    *drive* is the drive-strength factor; it sets the number of
    source/drain contacts per transistor (wider devices need more
    contacts), which is the main reason larger cells carry more internal
    DFM faults.  *flag_rate* is the percentage of sites flagged by the
    guideline deck for this cell's layout style.
    """
    good_tt = network.good_tt()
    defects: List[CellDefect] = []

    def consider(
        defect_id: str,
        mechanism: str,
        overrides: Optional[Dict[str, str]] = None,
        bridges: Sequence[Tuple[str, str]] = (),
    ) -> None:
        site = f"{cell_name}:{defect_id}"
        if not _is_flagged(site, flag_rate):
            return
        faulty, floating = _faulty_response(network, overrides, bridges)
        kind = DYNAMIC if floating else STATIC
        defect = CellDefect(
            cell=cell_name,
            defect_id=defect_id,
            mechanism=mechanism,
            kind=kind,
            faulty=faulty,
            floating=floating,
            guideline=_assign_guideline(site, mechanism),
        )
        if defect.is_cell_level_testable(good_tt):
            defects.append(defect)

    for tid in network.transistor_ids():
        # Source and drain diffusions each carry `drive` contacts.
        for k in range(2 * drive):
            consider(f"{tid}:copen{k}", "contact-open", overrides={tid: "open"})
        consider(f"{tid}:gopen", "gate-open", overrides={tid: "open"})
        consider(f"{tid}:chon", "channel-on", overrides={tid: "on"})

    # Dominant bridges: every stage output to the rails, adjacent input
    # pins both ways, and the first input onto each stage output.
    for node in network.node_names():
        consider(f"br:{node}-VDD", "bridge", bridges=[(node, "VDD")])
        consider(f"br:{node}-GND", "bridge", bridges=[(node, "GND")])
    pins = network.inputs
    for i in range(len(pins) - 1):
        consider(
            f"br:{pins[i]}-{pins[i + 1]}", "bridge",
            bridges=[(pins[i], pins[i + 1])],
        )
        consider(
            f"br:{pins[i + 1]}-{pins[i]}", "bridge",
            bridges=[(pins[i + 1], pins[i])],
        )
    if pins:
        for node in network.node_names():
            consider(f"br:{node}-{pins[0]}", "bridge", bridges=[(node, pins[0])])

    return defects
