"""Switch-level CMOS cell model.

A cell is a sequence of static CMOS *stages*.  Each stage has a pull-down
network (PDN) given as a series/parallel expression over signals; the
pull-up network (PUN) is the structural dual with PMOS devices.  Stage
inputs are cell input pins or outputs of earlier stages, so multi-stage
cells (BUF, AND, OR, XOR, MUX) are modeled exactly.

Evaluation is four-valued per node: ``0``, ``1``, ``Z`` (floating) and
``X`` (fight / unknown).  Defects are injected as transistor overrides
(stuck-open / stuck-on) or dominant node bridges, and the network is
re-evaluated per input minterm to obtain the cell's faulty truth table —
the switch-level simulation step of refs [7]-[9] of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# Four-valued logic constants.
V0, V1, VZ, VX = 0, 1, 2, 3

# Three-valued conduction state of a transistor / network.
OFF, ON, MAYBE = 0, 1, 2


class Expr:
    """Series/parallel expression tree over signal literals."""

    __slots__ = ("op", "children", "signal")

    def __init__(self, op: str, children: Tuple["Expr", ...] = (), signal: str = ""):
        self.op = op  # "lit" | "s" | "p"
        self.children = children
        self.signal = signal

    def leaves(self, path: str = "") -> List[Tuple[str, "Expr"]]:
        """Return (path, leaf) pairs in deterministic order."""
        if self.op == "lit":
            return [(path or "0", self)]
        out: List[Tuple[str, Expr]] = []
        for i, child in enumerate(self.children):
            out.extend(child.leaves(f"{path}{i}" if path else str(i)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "lit":
            return self.signal
        sep = "*" if self.op == "s" else "+"
        return "(" + sep.join(repr(c) for c in self.children) + ")"


def lit(signal: str) -> Expr:
    """A single transistor gated by *signal*."""
    return Expr("lit", signal=signal)


def ser(*children: Expr) -> Expr:
    """Series composition (conducts when all children conduct)."""
    return Expr("s", tuple(children))


def par(*children: Expr) -> Expr:
    """Parallel composition (conducts when any child conducts)."""
    return Expr("p", tuple(children))


@dataclass(frozen=True)
class Stage:
    """One static CMOS stage: ``output = NOT(pdn)`` when fault-free."""

    output: str
    pdn: Expr


@dataclass
class SwitchNetwork:
    """A cell as an ordered list of static CMOS stages.

    ``inputs`` are the cell's input pins in minterm bit order (pin 0 is the
    least significant bit); the last stage's output is the cell output.
    """

    inputs: Tuple[str, ...]
    stages: Tuple[Stage, ...]

    @property
    def output(self) -> str:
        return self.stages[-1].output

    def transistor_ids(self) -> List[str]:
        """All transistor ids, e.g. ``"st0/1.n"`` (stage/path . n|p)."""
        ids: List[str] = []
        for si, stage in enumerate(self.stages):
            for path, _leaf in stage.pdn.leaves():
                ids.append(f"st{si}/{path}.n")
                ids.append(f"st{si}/{path}.p")
        return ids

    def transistor_count(self) -> int:
        return len(self.transistor_ids())

    def node_names(self) -> List[str]:
        """Stage output node names (internal nodes plus cell output)."""
        return [stage.output for stage in self.stages]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        minterm: int,
        overrides: Optional[Mapping[str, str]] = None,
        bridges: Sequence[Tuple[str, str]] = (),
    ) -> int:
        """Evaluate the cell output for one input *minterm*.

        *overrides* maps transistor ids to ``"open"`` or ``"on"``.
        *bridges* is a sequence of dominant bridges ``(victim, aggressor)``
        where the victim node takes the aggressor's value; node names are
        stage outputs, input pins, ``"VDD"`` or ``"GND"``.  Returns one of
        :data:`V0`, :data:`V1`, :data:`VZ`, :data:`VX`.
        """
        overrides = overrides or {}
        values: Dict[str, int] = {"VDD": V1, "GND": V0}
        for i, pin in enumerate(self.inputs):
            values[pin] = V1 if (minterm >> i) & 1 else V0
        bridge_by_victim = {v: a for v, a in bridges}
        # Input-pin bridges apply before any stage evaluates.
        for pin in self.inputs:
            if pin in bridge_by_victim:
                values[pin] = _resolve_bridge(values, pin, bridge_by_victim[pin])
        for si, stage in enumerate(self.stages):
            pd = _conduction(stage.pdn, values, overrides, f"st{si}/", nmos=True)
            pu = _conduction(stage.pdn, values, overrides, f"st{si}/", nmos=False)
            values[stage.output] = _stage_value(pu, pd)
            if stage.output in bridge_by_victim:
                values[stage.output] = _resolve_bridge(
                    values, stage.output, bridge_by_victim[stage.output]
                )
        return values[self.output]

    def good_tt(self) -> int:
        """Fault-free truth table (raises if any entry is not 0/1)."""
        tt = 0
        for m in range(1 << len(self.inputs)):
            v = self.evaluate(m)
            if v not in (V0, V1):
                raise ValueError(f"fault-free cell output is {v} at minterm {m}")
            tt |= v << m
        return tt


def _resolve_bridge(values: Mapping[str, int], victim: str, aggressor: str) -> int:
    """Dominant bridge: the victim node takes the aggressor's value."""
    val = values.get(aggressor)
    if val is None:
        raise ValueError(f"bridge aggressor {aggressor} not yet evaluated")
    return val


def _conduction(
    expr: Expr,
    values: Mapping[str, int],
    overrides: Mapping[str, str],
    prefix: str,
    nmos: bool,
    path: str = "",
) -> int:
    """Conduction state (OFF/ON/MAYBE) of a PDN (nmos) or dual PUN (pmos)."""
    if expr.op == "lit":
        tid = f"{prefix}{path or '0'}.{'n' if nmos else 'p'}"
        forced = overrides.get(tid)
        if forced == "open":
            return OFF
        if forced == "on":
            return ON
        sig = values.get(expr.signal)
        if sig is None:
            raise ValueError(f"unknown signal {expr.signal}")
        if sig == V1:
            return ON if nmos else OFF
        if sig == V0:
            return OFF if nmos else ON
        return MAYBE  # Z or X on a transistor gate
    # In the PUN dual, series and parallel swap.
    series = (expr.op == "s") if nmos else (expr.op != "s")
    states = [
        _conduction(c, values, overrides, prefix, nmos, f"{path}{i}" if path else str(i))
        for i, c in enumerate(expr.children)
    ]
    if series:
        if any(s == OFF for s in states):
            return OFF
        if all(s == ON for s in states):
            return ON
        return MAYBE
    if any(s == ON for s in states):
        return ON
    if all(s == OFF for s in states):
        return OFF
    return MAYBE


def _stage_value(pu: int, pd: int) -> int:
    """Combine pull-up / pull-down conduction into a node value."""
    if pu == ON and pd == OFF:
        return V1
    if pd == ON and pu == OFF:
        return V0
    if pu == OFF and pd == OFF:
        return VZ
    return VX
