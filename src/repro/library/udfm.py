"""User-defined fault model (UDFM) extraction.

Ref [9] of the paper represents translated gate-level faults as *input and
output patterns of a cell*; ref [11] calls this the user defined fault
model.  This module derives those entries from the switch-level defect
responses:

* a **static** entry is a single cell-input pattern plus the faulty output
  value it exposes;
* a **dynamic** entry is an (initialization, test) pattern pair for defects
  whose output floats — the test pattern's good output differs from the
  value the floating node retains from the initialization pattern.

The ATPG engine consumes the defect responses directly; UDFM entries are
the reporting/interchange view (examples and tests use them too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.library.cell import StandardCell
from repro.library.defects import DYNAMIC


@dataclass(frozen=True)
class UdfmEntry:
    """One detecting condition at the cell boundary."""

    cell: str
    defect_id: str
    kind: str  # "static" | "dynamic"
    init_pattern: Tuple[int, ...] | None  # None for static entries
    test_pattern: Tuple[int, ...]
    faulty_output: int
    good_output: int


def _unpack(minterm: int, n: int) -> Tuple[int, ...]:
    return tuple((minterm >> i) & 1 for i in range(n))


def extract_udfm(cell: StandardCell) -> List[UdfmEntry]:
    """Extract every UDFM entry for every internal defect of *cell*."""
    entries: List[UdfmEntry] = []
    n = cell.n_inputs
    for defect in cell.internal_defects():
        for m in defect.static_detecting_minterms(cell.tt):
            entries.append(
                UdfmEntry(
                    cell=cell.name,
                    defect_id=defect.defect_id,
                    kind="static",
                    init_pattern=None,
                    test_pattern=_unpack(m, n),
                    faulty_output=defect.faulty[m],  # type: ignore[arg-type]
                    good_output=cell.eval_minterm(m),
                )
            )
        if defect.kind == DYNAMIC:
            for m0, m1 in defect.dynamic_detecting_pairs(cell.tt):
                retained = defect.faulty[m0]
                entries.append(
                    UdfmEntry(
                        cell=cell.name,
                        defect_id=defect.defect_id,
                        kind="dynamic",
                        init_pattern=_unpack(m0, n),
                        test_pattern=_unpack(m1, n),
                        faulty_output=retained,  # type: ignore[arg-type]
                        good_output=cell.eval_minterm(m1),
                    )
                )
    return entries
