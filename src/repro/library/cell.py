"""The standard cell abstraction shared by all subsystems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.library.defects import CellDefect, enumerate_cell_defects
from repro.library.transistor import SwitchNetwork


@dataclass
class StandardCell:
    """One library cell with logic, electrical and switch-level views.

    Electrical units are arbitrary but internally consistent:

    * ``area`` — layout area (um^2-ish); drives die capacity checks;
    * ``input_cap`` — capacitance of each input pin (fF);
    * ``drive_res`` — equivalent output drive resistance (ps/fF);
    * ``intrinsic_delay`` — unloaded cell delay (ps);
    * ``leakage`` — static leakage power (nW).

    ``tt`` is always derived from the switch network, so the logic and
    transistor views can never disagree.
    """

    name: str
    input_pins: Tuple[str, ...]
    output_pin: str
    network: SwitchNetwork
    area: float
    input_cap: float
    drive_res: float
    intrinsic_delay: float
    leakage: float
    drive: int = 1
    flag_rate: int = 60
    tt: int = field(init=False)
    _defects: Optional[List[CellDefect]] = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.network.inputs != self.input_pins:
            raise ValueError(
                f"{self.name}: switch network inputs {self.network.inputs} "
                f"!= declared pins {self.input_pins}"
            )
        self.tt = self.network.good_tt()

    @property
    def n_inputs(self) -> int:
        return len(self.input_pins)

    def internal_defects(self) -> List[CellDefect]:
        """DFM-flagged, cell-level-testable internal defects (cached)."""
        if self._defects is None:
            self._defects = enumerate_cell_defects(
                self.name, self.network, self.drive, self.flag_rate
            )
        return self._defects

    @property
    def internal_fault_count(self) -> int:
        """Number of internal DFM faults each instance of this cell adds."""
        return len(self.internal_defects())

    def eval_minterm(self, minterm: int) -> int:
        """Fault-free output (0/1) for one input minterm."""
        return (self.tt >> minterm) & 1

    def minterm_of(self, assignment: Tuple[int, ...]) -> int:
        """Pack an input assignment (pin order) into a minterm index."""
        m = 0
        for i, bit in enumerate(assignment):
            if bit:
                m |= 1 << i
        return m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StandardCell({self.name}, {self.n_inputs} in, tt=0x{self.tt:x})"
