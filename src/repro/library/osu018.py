"""The 21-cell combinational library modeled on OSU 0.18um.

The paper synthesizes with "the standard cell library developed by OSU ...
based on TSMC 0.18um technology. This library contains 21 cells."  We model
the combinational subset exactly 21 cells strong: four inverter strengths,
two buffers, NAND2/3, NOR2/3, AND2 x2 strengths, OR2 x2 strengths, AOI21,
AOI22, OAI21, OAI22, XOR2, XNOR2 and MUX2.  (Sequential cells are not
needed: the paper's flow targets full-scan designs, so faults are handled
on the combinational logic.)

Electrical numbers are plausible for a 0.18um process and, more
importantly, internally consistent: larger drive strengths have lower
drive resistance, more area, more input capacitance — and more internal
DFM defect sites (more source/drain contacts per transistor), which is
the property the paper's resynthesis procedure exploits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.library.cell import StandardCell
from repro.library.transistor import Stage, SwitchNetwork, lit, par, ser


class Library:
    """An ordered collection of standard cells.

    Iteration order is insertion order; the resynthesis procedure uses
    :meth:`order_by_internal_faults` to get the paper's ``cell_0 ..
    cell_{m-1}`` ordering (``cell_0`` carries the most internal faults).
    """

    def __init__(self, name: str, cells: Iterable[StandardCell]):
        self.name = name
        self._cells: Dict[str, StandardCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name}")
            self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> StandardCell:
        return self._cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[StandardCell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> List[str]:
        return list(self._cells)

    def get(self, name: str) -> Optional[StandardCell]:
        return self._cells.get(name)

    def order_by_internal_faults(self) -> List[StandardCell]:
        """Cells sorted by internal DFM fault count, most faults first.

        This is the paper's ``cell_0, cell_1, ..., cell_{m-1}`` order: the
        resynthesis procedure excludes a growing prefix of this list.
        Ties break by area (larger first) then name for determinism.
        """
        return sorted(
            self._cells.values(),
            key=lambda c: (-c.internal_fault_count, -c.area, c.name),
        )

    def subset(self, names: Sequence[str]) -> "Library":
        """A new library restricted to *names* (order preserved)."""
        return Library(self.name, [self._cells[n] for n in names])


def _inv(name: str, drive: int, area: float, cap: float, res: float,
         intr: float, leak: float, flag_rate: int) -> StandardCell:
    net = SwitchNetwork(inputs=("A",), stages=(Stage("Y", lit("A")),))
    return StandardCell(name, ("A",), "Y", net, area, cap, res, intr, leak,
                        drive=drive, flag_rate=flag_rate)


def _buf(name: str, drive: int, area: float, cap: float, res: float,
         intr: float, leak: float, flag_rate: int) -> StandardCell:
    net = SwitchNetwork(
        inputs=("A",),
        stages=(Stage("n1", lit("A")), Stage("Y", lit("n1"))),
    )
    return StandardCell(name, ("A",), "Y", net, area, cap, res, intr, leak,
                        drive=drive, flag_rate=flag_rate)


def _simple(name: str, pins: Tuple[str, ...], pdn, area: float, cap: float,
            res: float, intr: float, leak: float, drive: int = 1,
            flag_rate: int = 60) -> StandardCell:
    net = SwitchNetwork(inputs=pins, stages=(Stage("Y", pdn),))
    return StandardCell(name, pins, "Y", net, area, cap, res, intr, leak,
                        drive=drive, flag_rate=flag_rate)


def _staged(name: str, pins: Tuple[str, ...], stages: Tuple[Stage, ...],
            area: float, cap: float, res: float, intr: float, leak: float,
            drive: int = 1, flag_rate: int = 64) -> StandardCell:
    net = SwitchNetwork(inputs=pins, stages=stages)
    return StandardCell(name, pins, "Y", net, area, cap, res, intr, leak,
                        drive=drive, flag_rate=flag_rate)


def osu018_library() -> Library:
    """Build the 21-cell OSU-0.18um-like combinational library.

    Per-cell ``flag_rate`` (the share of internal defect sites the DFM
    deck flags) grows with cell size and layout density: the small relaxed
    cells (INVX1, NAND2X1, NOR2X1) carry almost no DFM-flagged internal
    faults, while the large, dense, multi-stage cells carry many — the
    property the resynthesis procedure exploits.
    """
    cells: List[StandardCell] = [
        _inv("INVX1", 1, 8.0, 2.0, 2.00, 20.0, 0.5, flag_rate=10),
        _inv("INVX2", 2, 12.0, 4.0, 1.00, 22.0, 2.0, flag_rate=30),
        _inv("INVX4", 4, 20.0, 8.0, 0.50, 25.0, 4.0, flag_rate=45),
        _inv("INVX8", 8, 36.0, 16.0, 0.25, 30.0, 8.0, flag_rate=60),
        _buf("BUFX2", 2, 16.0, 2.0, 1.00, 60.0, 2.0, flag_rate=35),
        _buf("BUFX4", 4, 24.0, 2.0, 0.50, 70.0, 4.5, flag_rate=50),
        _simple("NAND2X1", ("A", "B"), ser(lit("A"), lit("B")),
                12.0, 2.0, 2.20, 30.0, 1.1, flag_rate=16),
        _simple("NAND3X1", ("A", "B", "C"), ser(lit("A"), lit("B"), lit("C")),
                16.0, 2.0, 2.60, 42.0, 2.6, flag_rate=45),
        _simple("NOR2X1", ("A", "B"), par(lit("A"), lit("B")),
                12.0, 2.0, 2.60, 35.0, 1.1, flag_rate=18),
        _simple("NOR3X1", ("A", "B", "C"), par(lit("A"), lit("B"), lit("C")),
                16.0, 2.0, 3.20, 50.0, 2.6, flag_rate=48),
        _staged("AND2X1", ("A", "B"),
                (Stage("n1", ser(lit("A"), lit("B"))), Stage("Y", lit("n1"))),
                16.0, 2.0, 2.00, 55.0, 2.2, flag_rate=36),
        _staged("AND2X2", ("A", "B"),
                (Stage("n1", ser(lit("A"), lit("B"))), Stage("Y", lit("n1"))),
                20.0, 2.0, 1.00, 60.0, 3.0, drive=2, flag_rate=52),
        _staged("OR2X1", ("A", "B"),
                (Stage("n1", par(lit("A"), lit("B"))), Stage("Y", lit("n1"))),
                16.0, 2.0, 2.00, 60.0, 2.2, flag_rate=36),
        _staged("OR2X2", ("A", "B"),
                (Stage("n1", par(lit("A"), lit("B"))), Stage("Y", lit("n1"))),
                20.0, 2.0, 1.00, 66.0, 3.0, drive=2, flag_rate=52),
        _simple("AOI21X1", ("A", "B", "C"),
                par(ser(lit("A"), lit("B")), lit("C")),
                18.0, 2.0, 2.80, 45.0, 3.2, flag_rate=58),
        _simple("AOI22X1", ("A", "B", "C", "D"),
                par(ser(lit("A"), lit("B")), ser(lit("C"), lit("D"))),
                24.0, 2.0, 3.00, 52.0, 4.4, flag_rate=68),
        _simple("OAI21X1", ("A", "B", "C"),
                ser(par(lit("A"), lit("B")), lit("C")),
                18.0, 2.0, 2.80, 45.0, 3.2, flag_rate=58),
        _simple("OAI22X1", ("A", "B", "C", "D"),
                ser(par(lit("A"), lit("B")), par(lit("C"), lit("D"))),
                24.0, 2.0, 3.00, 52.0, 4.4, flag_rate=68),
        _staged("XOR2X1", ("A", "B"),
                (
                    Stage("nA", lit("A")),
                    Stage("nB", lit("B")),
                    Stage("Y", par(ser(lit("A"), lit("B")),
                                   ser(lit("nA"), lit("nB")))),
                ),
                32.0, 3.0, 2.80, 75.0, 6.5, flag_rate=78),
        _staged("XNOR2X1", ("A", "B"),
                (
                    Stage("nA", lit("A")),
                    Stage("nB", lit("B")),
                    Stage("Y", par(ser(lit("A"), lit("nB")),
                                   ser(lit("nA"), lit("B")))),
                ),
                32.0, 3.0, 2.80, 75.0, 6.5, flag_rate=78),
        _staged("MUX2X1", ("A", "B", "S"),
                (
                    Stage("nS", lit("S")),
                    Stage("n1", par(ser(lit("S"), lit("B")),
                                    ser(lit("nS"), lit("A")))),
                    Stage("Y", lit("n1")),
                ),
                30.0, 3.0, 2.40, 70.0, 6.0, flag_rate=72),
    ]
    return Library("osu018", cells)
