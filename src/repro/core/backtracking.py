"""Backtracking over the replacement gate set (Section III-C).

Invoked when a resynthesis attempt satisfies the acceptance criteria
path but the resulting layout violates the design constraints (delay,
power, die area).  Based on the observation that modifying fewer gates
implies lower design overheads, the procedure:

1. forms ``G_i`` — the gates of ``C_sub`` (minus ``G_zero``) whose cell
   types are in the excluded prefix ``cell_0 .. cell_i``;
2. moves gates from ``G_i`` into ``G_back`` in groups of ``sqrt(n)``;
   gates in ``G_back`` are left untouched by ``Synthesize()``;
3. whenever a configuration meets the constraints but fails the
   acceptance criteria, returns the last group's gates to ``G_i`` one by
   one (replacing slightly more logic each time);
4. terminates at the first accepted circuit, or when no more gates can
   be moved either way — in which case the current phase of the
   resynthesis procedure terminates.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.core.flow import DesignState

# A resynthesis attempt callback: takes the replacement gate set and
# returns (status, candidate-state-or-None) with status one of
# "accepted" | "constraints" | "rejected" | "synthfail".
AttemptFn = Callable[[Set[str]], Tuple[str, Optional[DesignState]]]


def backtrack_resynthesis(
    replacement_base: Set[str],
    g_i: Sequence[str],
    attempt: AttemptFn,
    on_attempt: Optional[Callable[[Set[str], str], None]] = None,
) -> Optional[DesignState]:
    """Search subsets of ``G_i`` for an accepted, constraint-clean circuit.

    *replacement_base* is ``C_sub - G_zero`` (every gate Synthesize() may
    touch); *g_i* lists the excluded-cell-type gates, ordered so that the
    gates most worth replacing come first (the tail is moved to
    ``G_back`` first).  Returns the accepted design state or None.

    *on_attempt*, when given, observes every issued attempt as
    ``on_attempt(replacement_set, status)`` — used for effort counters.
    """
    if on_attempt is not None:
        inner = attempt

        def attempt(replacement: Set[str]) -> Tuple[str, Optional[DesignState]]:
            status, cand = inner(replacement)
            on_attempt(replacement, status)
            return status, cand

    gi: List[str] = list(g_i)
    n = len(gi)
    if n == 0:
        return None
    group = max(1, math.isqrt(n))
    g_back: List[str] = []

    while gi:
        # Move the next group out of the replacement set.
        k = min(group, len(gi))
        moved = gi[-k:]
        del gi[-k:]
        g_back.extend(moved)
        status, cand = attempt(replacement_base - set(g_back))
        if status == "accepted":
            return cand
        if status == "synthfail":
            return None
        if status == "constraints":
            continue  # still violating: remove more gates
        # Constraints hold but acceptance failed: return the last group
        # one gate at a time (replace slightly more logic).
        returned = 0
        while returned < k - 1 and g_back:
            gi.append(g_back.pop())
            returned += 1
            status, cand = attempt(replacement_base - set(g_back))
            if status == "accepted":
                return cand
            if status == "synthfail":
                return None
            if status == "constraints":
                break  # back into violation: resume removing groups
        # Undo the returns before trying the next group, so the search
        # keeps making progress toward smaller replacement sets.
        for _ in range(returned):
            g_back.append(gi.pop())
    return None
