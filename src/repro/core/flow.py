"""One iteration of the design flow, bundled as a :class:`DesignState`.

``analyze_design`` runs: physical design (on a fixed floorplan when
given) -> DFM fault extraction (internal + external) -> exact ATPG ->
clustering of the undetectable faults.  The resynthesis procedure
(Section III) moves between design states, comparing their metrics.

``count_undetectable_internal`` is the cheap pre-physical-design check of
Section III-B: "PDesign() is called only when the number of undetectable
internal faults decreases in the resynthesized circuit" — internal
faults do not depend on placement and routing, so they can be classified
on the netlist alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atpg.compaction import TestPair
from repro.atpg.engine import AtpgResult, run_atpg
from repro.core.clustering import ClusterReport, cluster_undetectable
from repro.dfm.guidelines import Guideline
from repro.dfm.translate import build_fault_set
from repro.faults.model import Fault
from repro.faults.sites import FaultSet, enumerate_internal_faults
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit
from repro.physical.floorplan import Floorplan
from repro.physical.pdesign import PhysicalDesign, pdesign
from repro.physical.placement import PlacementError
from repro.utils.observability import EngineStats


@dataclass
class DesignState:
    """A placed-and-routed design plus its complete DFM fault analysis."""

    circuit: Circuit
    physical: PhysicalDesign
    fault_set: FaultSet
    atpg: AtpgResult
    clusters: ClusterReport
    # Wall-clock per analysis stage (pdesign / fault extraction / ATPG /
    # clustering), filled by :func:`analyze_design`.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def stats(self) -> EngineStats:
        """Engine effort counters of the ATPG run (see EngineStats)."""
        return self.atpg.stats

    @property
    def n_faults(self) -> int:
        return len(self.fault_set)

    @property
    def undetectable_faults(self) -> List[Fault]:
        return [
            f for f in self.fault_set
            if f.fault_id in self.atpg.undetectable
        ]

    @property
    def u_total(self) -> int:
        return len(self.atpg.undetectable)

    @property
    def u_internal(self) -> int:
        return sum(
            1 for f in self.fault_set.internal
            if f.fault_id in self.atpg.undetectable
        )

    @property
    def u_external(self) -> int:
        return self.u_total - self.u_internal

    @property
    def coverage(self) -> float:
        return self.atpg.coverage

    @property
    def smax_size(self) -> int:
        return len(self.clusters.smax)

    @property
    def smax_fraction_of_f(self) -> float:
        """|S_max| / |F| — the paper's %Smax_all (as a fraction)."""
        if self.n_faults == 0:
            return 0.0
        return self.smax_size / self.n_faults

    @property
    def tests(self) -> List[TestPair]:
        return self.atpg.tests

    def undetectable_behaviour_keys(self) -> set:
        """Behaviour keys of the undetectable faults.

        Detection is a functional property, so these verdicts remain
        valid on any functionally-equivalent revision of the circuit in
        which the key's referenced gate/net names survive unchanged
        (replaced-region objects get fresh names and never match) — the
        sound status-inheritance used to make resynthesis iterations
        cheap.
        """
        from repro.faults.collapse import behaviour_key

        return {behaviour_key(f) for f in self.undetectable_faults}

    @property
    def delay(self) -> float:
        return self.physical.delay

    @property
    def power(self) -> float:
        return self.physical.total_power


def analyze_design(
    circuit: Circuit,
    library: Library,
    floorplan: Optional[Floorplan] = None,
    seed: int = 0,
    utilization: float = 0.70,
    guidelines: Optional[Sequence[Guideline]] = None,
    initial_tests: Optional[Sequence[TestPair]] = None,
    atpg_seed: int = 0,
    assume_undetectable: Optional[set] = None,
    physical: Optional[PhysicalDesign] = None,
    workers: int = 1,
) -> DesignState:
    """Run physical design + DFM fault extraction + ATPG + clustering.

    *initial_tests* and *assume_undetectable* (behaviour keys from a
    previous functionally-equivalent design state) make re-analysis
    after a local resynthesis step cheap; see
    :meth:`DesignState.undetectable_behaviour_keys`.  A precomputed
    *physical* design (e.g. from an early constraint check) is reused
    instead of placing and routing again.

    *workers* > 1 parallelizes the fault-simulation batches inside ATPG
    (results stay bit-identical to a serial run).  Per-stage wall times
    land in ``DesignState.timings``; engine counters in
    ``DesignState.stats``.

    Raises :class:`~repro.physical.placement.PlacementError` if the
    circuit does not fit *floorplan* (a die-area constraint violation).
    """
    cells = {c.name: c for c in library}
    timings: Dict[str, float] = {}
    t0 = time.monotonic()
    if physical is None:
        physical = pdesign(
            circuit, cells, floorplan=floorplan, seed=seed,
            utilization=utilization,
        )
    timings["pdesign"] = time.monotonic() - t0
    t0 = time.monotonic()
    fault_set = build_fault_set(circuit, library, physical.layout, guidelines)
    timings["fault_extraction"] = time.monotonic() - t0
    t0 = time.monotonic()
    atpg = run_atpg(
        circuit, cells, fault_set.faults,
        seed=atpg_seed, initial_tests=initial_tests,
        assume_undetectable=assume_undetectable,
        workers=workers,
    )
    timings["atpg"] = time.monotonic() - t0
    t0 = time.monotonic()
    undetectable = [
        f for f in fault_set if f.fault_id in atpg.undetectable
    ]
    clusters = cluster_undetectable(circuit, undetectable)
    timings["clustering"] = time.monotonic() - t0
    return DesignState(
        circuit=circuit,
        physical=physical,
        fault_set=fault_set,
        atpg=atpg,
        clusters=clusters,
        timings=timings,
    )


def count_undetectable_internal(
    circuit: Circuit,
    library: Library,
    initial_tests: Optional[Sequence[TestPair]] = None,
    atpg_seed: int = 0,
    assume_undetectable: Optional[set] = None,
    workers: int = 1,
) -> int:
    """Number of undetectable internal faults of the bare netlist.

    This is the fast pre-PDesign check: internal faults only depend on
    the netlist, not on placement/routing.
    """
    cells = {c.name: c for c in library}
    internal = enumerate_internal_faults(circuit, library)
    atpg = run_atpg(
        circuit, cells, internal,
        seed=atpg_seed, initial_tests=initial_tests, compaction=False,
        assume_undetectable=assume_undetectable,
        workers=workers,
    )
    return len(atpg.undetectable)
