"""One iteration of the design flow, bundled as a :class:`DesignState`.

``analyze_design`` runs: physical design (on a fixed floorplan when
given) -> DFM fault extraction (internal + external) -> exact ATPG ->
clustering of the undetectable faults.  The resynthesis procedure
(Section III) moves between design states, comparing their metrics.

``count_undetectable_internal`` is the cheap pre-physical-design check of
Section III-B: "PDesign() is called only when the number of undetectable
internal faults decreases in the resynthesized circuit" — internal
faults do not depend on placement and routing, so they can be classified
on the netlist alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atpg.budget import AtpgBudget
from repro.atpg.compaction import TestPair
from repro.atpg.engine import AtpgResult, run_atpg
from repro.core.clustering import (
    ClusterReport,
    cluster_undetectable,
    cluster_undetectable_incremental,
)
from repro.dfm.guidelines import Guideline
from repro.dfm.translate import build_fault_set
from repro.faults.model import Fault
from repro.faults.sites import FaultSet, enumerate_internal_faults
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit
from repro.physical.floorplan import Floorplan
from repro.physical.pdesign import PhysicalDesign, pdesign
from repro.physical.placement import PlacementError
from repro.utils import seams
from repro.utils.observability import EngineStats


@dataclass
class DesignState:
    """A placed-and-routed design plus its complete DFM fault analysis."""

    circuit: Circuit
    physical: PhysicalDesign
    fault_set: FaultSet
    atpg: AtpgResult
    clusters: ClusterReport
    # Wall-clock per analysis stage (pdesign / fault extraction / ATPG /
    # clustering), filled by :func:`analyze_design`.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def stats(self) -> EngineStats:
        """Engine effort counters of the ATPG run (see EngineStats)."""
        return self.atpg.stats

    @property
    def n_faults(self) -> int:
        return len(self.fault_set)

    @property
    def undetectable_faults(self) -> List[Fault]:
        return [
            f for f in self.fault_set
            if f.fault_id in self.atpg.undetectable
        ]

    @property
    def u_total(self) -> int:
        return len(self.atpg.undetectable)

    @property
    def u_internal(self) -> int:
        return sum(
            1 for f in self.fault_set.internal
            if f.fault_id in self.atpg.undetectable
        )

    @property
    def u_external(self) -> int:
        return self.u_total - self.u_internal

    @property
    def n_aborted(self) -> int:
        """Faults whose SAT decision ran out of its resource budget."""
        return len(self.atpg.aborted)

    @property
    def u_upper(self) -> int:
        """Upper bound on U: proved undetectable plus unclassified.

        The conservative quantity acceptance decisions compare against —
        an aborted fault might still be undetectable, so a candidate
        only improves on a reference when even its *pessimistic* U does.
        Equal to :attr:`u_total` when nothing aborted.
        """
        return self.u_total + self.n_aborted

    @property
    def degraded(self) -> bool:
        """True when this analysis carries any abort/approximation."""
        return bool(self.atpg.aborted) or self.atpg.approximate

    @property
    def coverage(self) -> float:
        return self.atpg.coverage

    @property
    def smax_size(self) -> int:
        return len(self.clusters.smax)

    @property
    def smax_fraction_of_f(self) -> float:
        """|S_max| / |F| — the paper's %Smax_all (as a fraction)."""
        if self.n_faults == 0:
            return 0.0
        return self.smax_size / self.n_faults

    @property
    def tests(self) -> List[TestPair]:
        return self.atpg.tests

    def undetectable_behaviour_keys(self) -> set:
        """Behaviour keys of the undetectable faults.

        Detection is a functional property, so these verdicts remain
        valid on any functionally-equivalent revision of the circuit in
        which the key's referenced gate/net names survive unchanged
        (replaced-region objects get fresh names and never match) — the
        sound status-inheritance used to make resynthesis iterations
        cheap.
        """
        from repro.faults.collapse import behaviour_key

        return {behaviour_key(f) for f in self.undetectable_faults}

    def detected_behaviour_keys(self) -> set:
        """Behaviour keys of the detected faults.

        Same soundness argument as
        :meth:`undetectable_behaviour_keys`: the replacement region and
        its substitute are pointwise functionally equivalent, so a fault
        whose key references only surviving names forces identical
        values on every surviving net under any input — its detected
        verdict (and undetectable alike) carries over.
        """
        from repro.faults.collapse import behaviour_key

        return {
            behaviour_key(f)
            for f in self.fault_set
            if f.fault_id in self.atpg.detected
        }

    @property
    def delay(self) -> float:
        return self.physical.delay

    @property
    def power(self) -> float:
        return self.physical.total_power


def analyze_design(
    circuit: Circuit,
    library: Library,
    floorplan: Optional[Floorplan] = None,
    seed: int = 0,
    utilization: float = 0.70,
    guidelines: Optional[Sequence[Guideline]] = None,
    initial_tests: Optional[Sequence[TestPair]] = None,
    atpg_seed: int = 0,
    assume_undetectable: Optional[set] = None,
    assume_detected: Optional[set] = None,
    physical: Optional[PhysicalDesign] = None,
    workers: Optional[int] = None,
    prev: Optional[DesignState] = None,
    internal_atpg: Optional[AtpgResult] = None,
    stats: Optional[EngineStats] = None,
    budget: Optional[AtpgBudget] = None,
    exec_mode: Optional[str] = None,
) -> DesignState:
    """Run physical design + DFM fault extraction + ATPG + clustering.

    *budget* bounds each per-fault SAT decision (default: from the
    ``REPRO_ATPG_*`` environment; unlimited when unset).  Aborted faults
    surface on ``state.atpg.aborted`` / ``state.n_aborted`` and are
    excluded from U and from the clusters — clustering only partitions
    *proved* undetectable faults, so S_max never grows from a give-up.

    *initial_tests*, *assume_undetectable* and *assume_detected*
    (behaviour keys from a previous functionally-equivalent design
    state) make re-analysis after a local resynthesis step cheap; see
    :meth:`DesignState.undetectable_behaviour_keys`.  A precomputed
    *physical* design (e.g. from an early constraint check) is reused
    instead of placing and routing again.

    *prev* enables the full cone-scoped incremental path after a local
    replacement (``replace_subcircuit`` of a functionally-equivalent
    region): both verdict sets and the test set are inherited from
    *prev* (unless given explicitly), internal faults of untouched gates
    are carried over instead of re-enumerated, and the undetectable
    clusters are updated via union-find deltas instead of re-clustered.
    Only faults in the replaced region's cone are re-proved.  The
    resulting state is identical to a from-scratch analysis.

    *internal_atpg* is the candidate's own pre-PDesign internal
    classification (see :func:`classify_internal`); its verdicts seed
    the assume sets and its tests the initial test set, so the internal
    ATPG work is not repeated.

    *workers* > 1 parallelizes the fault-simulation batches inside ATPG
    and *exec_mode* selects how — thread pools, shared-memory process
    workers, or serial (defaults: ``REPRO_SIM_WORKERS`` /
    ``REPRO_SIM_EXEC``; results stay bit-identical to a serial run in
    every mode).  Per-stage wall times
    land in ``DesignState.timings``; engine counters in
    ``DesignState.stats`` (pass *stats* to accumulate into a
    caller-owned instance).

    Raises :class:`~repro.physical.placement.PlacementError` if the
    circuit does not fit *floorplan* (a die-area constraint violation).
    """
    cells = {c.name: c for c in library}
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    if physical is None:
        physical = pdesign(
            circuit, cells, floorplan=floorplan, seed=seed,
            utilization=utilization,
        )
    timings["pdesign"] = time.perf_counter() - t0

    assume_undet = set(assume_undetectable) if assume_undetectable else None
    assume_det = set(assume_detected) if assume_detected else None
    if prev is not None:
        if assume_undet is None:
            assume_undet = prev.undetectable_behaviour_keys()
        if assume_det is None:
            assume_det = prev.detected_behaviour_keys()
        if initial_tests is None:
            initial_tests = prev.tests

    t0 = time.perf_counter()
    fault_set = build_fault_set(
        circuit, library, physical.layout, guidelines,
        prev_fault_set=prev.fault_set if prev is not None else None,
        prev_circuit=prev.circuit if prev is not None else None,
        stats=stats,
    )
    timings["fault_extraction"] = time.perf_counter() - t0
    if seams.active:
        # Chaos seam: a harness may raise here to model a crash in the
        # middle of an analysis; the exception propagates to the caller
        # (and, under the runner, into an explicit task failure) — a
        # half-analyzed state is never returned.
        seams.fire("flow.analyze", circuit=circuit)

    if internal_atpg is not None:
        from repro.faults.collapse import behaviour_key

        assume_undet = set() if assume_undet is None else assume_undet
        assume_det = set() if assume_det is None else assume_det
        for f in fault_set.internal:
            if f.fault_id in internal_atpg.undetectable:
                assume_undet.add(behaviour_key(f))
            elif f.fault_id in internal_atpg.detected:
                assume_det.add(behaviour_key(f))
        initial_tests = list(internal_atpg.tests) + list(initial_tests or [])

    t0 = time.perf_counter()
    atpg = run_atpg(
        circuit, cells, fault_set.faults,
        seed=atpg_seed, initial_tests=initial_tests,
        assume_undetectable=assume_undet,
        assume_detected=assume_det,
        workers=workers,
        stats=stats,
        budget=budget,
        exec_mode=exec_mode,
    )
    timings["atpg"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    undetectable = [
        f for f in fault_set if f.fault_id in atpg.undetectable
    ]
    if prev is not None:
        clusters = cluster_undetectable_incremental(
            circuit, undetectable, prev.circuit, prev.clusters,
            stats=atpg.stats,
        )
    else:
        clusters = cluster_undetectable(circuit, undetectable)
    timings["clustering"] = time.perf_counter() - t0
    return DesignState(
        circuit=circuit,
        physical=physical,
        fault_set=fault_set,
        atpg=atpg,
        clusters=clusters,
        timings=timings,
    )


def classify_internal(
    circuit: Circuit,
    library: Library,
    initial_tests: Optional[Sequence[TestPair]] = None,
    atpg_seed: int = 0,
    assume_undetectable: Optional[set] = None,
    assume_detected: Optional[set] = None,
    workers: Optional[int] = None,
    stats: Optional[EngineStats] = None,
    budget: Optional[AtpgBudget] = None,
    exec_mode: Optional[str] = None,
) -> AtpgResult:
    """Classify the internal faults of the bare netlist (no compaction).

    This is the fast pre-PDesign check of Section III-B: internal faults
    only depend on the netlist, not on placement/routing.  The returned
    :class:`AtpgResult` can be fed back into :func:`analyze_design` as
    *internal_atpg* so the full analysis of an accepted candidate does
    not re-prove the internal verdicts.
    """
    cells = {c.name: c for c in library}
    internal = enumerate_internal_faults(circuit, library)
    return run_atpg(
        circuit, cells, internal,
        seed=atpg_seed, initial_tests=initial_tests, compaction=False,
        assume_undetectable=assume_undetectable,
        assume_detected=assume_detected,
        workers=workers,
        stats=stats,
        budget=budget,
        exec_mode=exec_mode,
    )


def count_undetectable_internal(
    circuit: Circuit,
    library: Library,
    initial_tests: Optional[Sequence[TestPair]] = None,
    atpg_seed: int = 0,
    assume_undetectable: Optional[set] = None,
    assume_detected: Optional[set] = None,
    workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> int:
    """Number of undetectable internal faults of the bare netlist."""
    atpg = classify_internal(
        circuit, library,
        initial_tests=initial_tests, atpg_seed=atpg_seed,
        assume_undetectable=assume_undetectable,
        assume_detected=assume_detected,
        workers=workers,
        exec_mode=exec_mode,
    )
    return len(atpg.undetectable)
