"""Row assembly for the paper's Table I and Table II."""

from __future__ import annotations

from typing import Dict, List

from repro.core.flow import DesignState
from repro.core.resynthesis import ResynthesisResult


def engine_row(name: str, state: DesignState) -> Dict[str, object]:
    """Observability columns for one analyzed design.

    Flattens the engine counters (:class:`repro.utils.observability.
    EngineStats`) plus the per-stage wall times of
    :func:`repro.core.flow.analyze_design` into one table row; the perf
    harness dumps these as the ``BENCH_engine.json`` trajectory point.
    """
    stats = state.stats
    row: Dict[str, object] = {
        "Circuit": name,
        "Gates": len(state.circuit),
        "F": state.n_faults,
        "FaultsSim": stats.faults_simulated,
        "Events": stats.events_propagated,
        "Batches": stats.batches,
        "GoodSims": stats.good_simulations,
        "GoodCacheHits": stats.good_cache_hits,
        "EvalCompiles": stats.eval_compiles,
        "SatCalls": stats.sat_calls,
        "SatConflicts": stats.sat_conflicts,
        "SatProps": stats.sat_propagations,
        "SatAborts": stats.sat_aborts,
    }
    for phase, seconds in sorted(stats.phase_seconds.items()):
        row[f"t[{phase}]"] = seconds
    for stage, seconds in state.timings.items():
        row[f"t[{stage}]"] = seconds
    return row


def table1_row(name: str, state: DesignState) -> Dict[str, object]:
    """Columns of Table I (clustered undetectable faults)."""
    f_in = len(state.fault_set.internal)
    f_ex = len(state.fault_set.external)
    u_in = state.u_internal
    u_ex = state.u_external
    u_total = u_in + u_ex
    smax = state.smax_size
    return {
        "Circuit": name,
        "F_In": f_in,
        "F_Ex": f_ex,
        "U_In": u_in,
        "U_Ex": u_ex,
        # Aborted faults are reported separately — they are neither in
        # U_In/U_Ex (an abort is not an undetectability proof) nor
        # silently dropped from F.  Zero under the default exact budget.
        "Aborted": state.n_aborted,
        "G_U": len(state.clusters.gates_u),
        "Gmax": len(state.clusters.gmax),
        "Smax": smax,
        "%Smax_U": 100.0 * smax / u_total if u_total else 0.0,
    }


def _state_row(name: str, label: str, state: DesignState,
               ref: DesignState) -> Dict[str, object]:
    smax = state.smax_size
    smax_i = len(state.clusters.smax_internal())
    return {
        "Circuit": name,
        "MaxInc": label,
        "F": state.n_faults,
        "U": state.u_total,
        "Aborted": state.n_aborted,
        "Cov": 100.0 * state.coverage,
        "T": len(state.tests),
        "Smax": smax,
        "%Smax_all": 100.0 * state.smax_fraction_of_f,
        "Smax_I": smax_i,
        "%Smax_I": 100.0 * smax_i / smax if smax else 0.0,
        "Delay": 100.0 * state.delay / ref.delay if ref.delay else 100.0,
        "Power": 100.0 * state.power / ref.power if ref.power else 100.0,
    }


def table2_row(name: str, result: ResynthesisResult) -> List[Dict[str, object]]:
    """The two rows of Table II for one circuit (original, resynthesized)."""
    orig = _state_row(name, "orig", result.original, result.original)
    orig["Rtime"] = 1.0
    resyn = _state_row(name, f"{result.q_used}%", result.final, result.original)
    resyn["Rtime"] = result.relative_runtime
    return [orig, resyn]


def average_rows(rows: List[Dict[str, object]], name: str = "average") -> Dict[str, object]:
    """Column-wise average of numeric fields across table rows."""
    if not rows:
        return {}
    out: Dict[str, object] = {"Circuit": name}
    for key in rows[0]:
        if key == "Circuit":
            continue
        # Rows journaled by older code revisions may lack newer columns;
        # average over the rows that have the value.
        values = [r[key] for r in rows if key in r]
        if not values:
            out[key] = "-"
        elif all(isinstance(v, (int, float)) for v in values):
            out[key] = sum(values) / len(values)
        else:
            out[key] = values[0] if len(set(map(str, values))) == 1 else "-"
    return out
