"""Clustering of undetectable faults (Section II of the paper).

Definitions implemented exactly as in the paper:

* a gate *corresponds to* an internal fault inside it, and to an external
  fault on its inputs or outputs (multiple gates for stem/bridge faults);
* two gates are *structurally adjacent* if one is directly driven by the
  other;
* two faults are *structurally adjacent* if they are located on the same
  gate or on two adjacent gates;
* the undetectable fault set U is partitioned into maximal subsets
  S_0, S_1, ... of (transitively) adjacent faults.

The partition is computed with a union-find over the faults: all faults
corresponding to one gate are merged, then faults across each
driver->load gate edge are merged — which yields exactly the fixpoint of
the paper's pairwise merge loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.faults.model import Fault, INTERNAL, corresponding_gates
from repro.netlist.circuit import Circuit
from repro.utils.unionfind import UnionFind


@dataclass
class ClusterReport:
    """The cluster partition of the undetectable fault set U."""

    clusters: List[List[Fault]]  # sorted by size, largest first
    fault_gates: Dict[str, FrozenSet[str]]  # fault id -> corresponding gates

    @property
    def smax(self) -> List[Fault]:
        """S_max: the largest subset of adjacent undetectable faults."""
        return self.clusters[0] if self.clusters else []

    @property
    def gmax(self) -> Set[str]:
        """G_max: gates corresponding to all the faults in S_max."""
        gates: Set[str] = set()
        for fault in self.smax:
            gates.update(self.fault_gates[fault.fault_id])
        return gates

    @property
    def gates_u(self) -> Set[str]:
        """G_U: gates corresponding to all undetectable faults."""
        gates: Set[str] = set()
        for cluster in self.clusters:
            for fault in cluster:
                gates.update(self.fault_gates[fault.fault_id])
        return gates

    @property
    def n_undetectable(self) -> int:
        return sum(len(c) for c in self.clusters)

    def smax_internal(self) -> List[Fault]:
        """Internal faults within S_max (the paper's Smax_I)."""
        return [f for f in self.smax if f.origin == INTERNAL]

    def sizes(self) -> List[int]:
        return [len(c) for c in self.clusters]


def are_adjacent(fa: Fault, fb: Fault, circuit: Circuit) -> bool:
    """Paper definition: same gate, or two structurally adjacent gates."""
    ga = corresponding_gates(fa, circuit)
    gb = corresponding_gates(fb, circuit)
    if ga & gb:
        return True
    for g1 in ga:
        neighbours = circuit.gate_fanout_gates(g1) | circuit.gate_fanin_gates(g1)
        if neighbours & gb:
            return True
    return False


def cluster_undetectable(
    circuit: Circuit, undetectable: Sequence[Fault]
) -> ClusterReport:
    """Partition *undetectable* into subsets of adjacent faults."""
    fault_gates: Dict[str, FrozenSet[str]] = {}
    by_gate: Dict[str, List[Fault]] = {}
    uf: UnionFind = UnionFind()
    for fault in undetectable:
        uf.add(fault.fault_id)
        gates = corresponding_gates(fault, circuit)
        fault_gates[fault.fault_id] = gates
        for g in gates:
            by_gate.setdefault(g, []).append(fault)
    # Merge all faults sharing a gate.
    for g, faults in by_gate.items():
        first = faults[0].fault_id
        for other in faults[1:]:
            uf.union(first, other.fault_id)
    # Merge across structurally adjacent gate pairs.
    for g, faults in by_gate.items():
        if g not in circuit.gates:
            continue
        rep = faults[0].fault_id
        for h in circuit.gate_fanout_gates(g):
            if h in by_gate:
                uf.union(rep, by_gate[h][0].fault_id)
    by_id = {f.fault_id: f for f in undetectable}
    groups = uf.groups()
    clusters = [
        sorted((by_id[fid] for fid in group), key=lambda f: f.fault_id)
        for group in groups
    ]
    clusters.sort(key=lambda c: (-len(c), c[0].fault_id if c else ""))
    return ClusterReport(clusters=clusters, fault_gates=fault_gates)
