"""Clustering of undetectable faults (Section II of the paper).

Definitions implemented exactly as in the paper:

* a gate *corresponds to* an internal fault inside it, and to an external
  fault on its inputs or outputs (multiple gates for stem/bridge faults);
* two gates are *structurally adjacent* if one is directly driven by the
  other;
* two faults are *structurally adjacent* if they are located on the same
  gate or on two adjacent gates;
* the undetectable fault set U is partitioned into maximal subsets
  S_0, S_1, ... of (transitively) adjacent faults.

The partition is computed with a union-find over the faults: all faults
corresponding to one gate are merged, then faults across each
driver->load gate edge are merged — which yields exactly the fixpoint of
the paper's pairwise merge loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.faults.model import Fault, INTERNAL, corresponding_gates
from repro.netlist.circuit import Circuit
from repro.utils.observability import EngineStats
from repro.utils.unionfind import UnionFind


@dataclass
class ClusterReport:
    """The cluster partition of the undetectable fault set U."""

    clusters: List[List[Fault]]  # sorted by size, largest first
    fault_gates: Dict[str, FrozenSet[str]]  # fault id -> corresponding gates

    @property
    def smax(self) -> List[Fault]:
        """S_max: the largest subset of adjacent undetectable faults."""
        return self.clusters[0] if self.clusters else []

    @property
    def gmax(self) -> Set[str]:
        """G_max: gates corresponding to all the faults in S_max."""
        gates: Set[str] = set()
        for fault in self.smax:
            gates.update(self.fault_gates[fault.fault_id])
        return gates

    @property
    def gates_u(self) -> Set[str]:
        """G_U: gates corresponding to all undetectable faults."""
        gates: Set[str] = set()
        for cluster in self.clusters:
            for fault in cluster:
                gates.update(self.fault_gates[fault.fault_id])
        return gates

    @property
    def n_undetectable(self) -> int:
        return sum(len(c) for c in self.clusters)

    def smax_internal(self) -> List[Fault]:
        """Internal faults within S_max (the paper's Smax_I)."""
        return [f for f in self.smax if f.origin == INTERNAL]

    def sizes(self) -> List[int]:
        return [len(c) for c in self.clusters]


def are_adjacent(fa: Fault, fb: Fault, circuit: Circuit) -> bool:
    """Paper definition: same gate, or two structurally adjacent gates."""
    ga = corresponding_gates(fa, circuit)
    gb = corresponding_gates(fb, circuit)
    if ga & gb:
        return True
    for g1 in ga:
        neighbours = circuit.gate_fanout_gates(g1) | circuit.gate_fanin_gates(g1)
        if neighbours & gb:
            return True
    return False


def _cluster_components(
    circuit: Circuit,
    faults: Sequence[Fault],
    fault_gates: Dict[str, FrozenSet[str]],
) -> List[List[Fault]]:
    """Union-find partition of *faults* into adjacency components."""
    by_gate: Dict[str, List[Fault]] = {}
    uf: UnionFind = UnionFind()
    for fault in faults:
        uf.add(fault.fault_id)
        for g in fault_gates[fault.fault_id]:
            by_gate.setdefault(g, []).append(fault)
    # Merge all faults sharing a gate.
    for g, shared in by_gate.items():
        first = shared[0].fault_id
        for other in shared[1:]:
            uf.union(first, other.fault_id)
    # Merge across structurally adjacent gate pairs.
    for g, shared in by_gate.items():
        if g not in circuit.gates:
            continue
        rep = shared[0].fault_id
        for h in circuit.gate_fanout_gates(g):
            if h in by_gate:
                uf.union(rep, by_gate[h][0].fault_id)
    by_id = {f.fault_id: f for f in faults}
    return [
        sorted((by_id[fid] for fid in group), key=lambda f: f.fault_id)
        for group in uf.groups()
    ]


def _sorted_report(
    clusters: List[List[Fault]], fault_gates: Dict[str, FrozenSet[str]]
) -> ClusterReport:
    clusters.sort(key=lambda c: (-len(c), c[0].fault_id if c else ""))
    return ClusterReport(clusters=clusters, fault_gates=fault_gates)


def cluster_undetectable(
    circuit: Circuit, undetectable: Sequence[Fault]
) -> ClusterReport:
    """Partition *undetectable* into subsets of adjacent faults."""
    fault_gates: Dict[str, FrozenSet[str]] = {
        f.fault_id: corresponding_gates(f, circuit) for f in undetectable
    }
    clusters = _cluster_components(circuit, undetectable, fault_gates)
    return _sorted_report(clusters, fault_gates)


def cluster_undetectable_incremental(
    circuit: Circuit,
    undetectable: Sequence[Fault],
    prev_circuit: Circuit,
    prev_report: ClusterReport,
    stats: Optional[EngineStats] = None,
) -> ClusterReport:
    """Update *prev_report* after a local change instead of re-clustering.

    Precondition: *circuit* differs from *prev_circuit* only by gate
    additions/removals — every surviving gate keeps its pin connections
    (the contract of ``replace_subcircuit``).  Under it, a previous
    cluster is still a maximal adjacency component iff (a) every member
    is still undetectable with unchanged corresponding gates and (b) its
    gates avoid the *dirty zone* — gates added or with a changed
    neighbourhood, gates of faults new to U or with moved sites, and the
    new-circuit neighbours of all of those.  Such clusters are carried
    over verbatim; only the remaining faults go through the union-find.
    The result is identical to :func:`cluster_undetectable`.
    """
    if not undetectable:
        # Nothing undetectable (e.g. every fault of the new state was
        # detected or aborted): the partition is empty, regardless of
        # what the previous report held — skip the dirty-zone walk.
        return ClusterReport(clusters=[], fault_gates={})
    by_id = {f.fault_id: f for f in undetectable}

    # Gate-level dirt: added gates + gates whose neighbourhood changed
    # (the surviving neighbours of removed gates land in the latter).
    zone: Set[str] = set()
    for g in circuit.gates:
        if g not in prev_circuit.gates:
            zone.add(g)
        elif (
            circuit.gate_fanin_gates(g) != prev_circuit.gate_fanin_gates(g)
            or circuit.gate_fanout_gates(g)
            != prev_circuit.gate_fanout_gates(g)
        ):
            zone.add(g)

    # Fault-level dirt: ids new to U, or surviving ids whose gates moved.
    # A surviving fault none of whose gates saw a connectivity change
    # keeps its corresponding gates, so the previous set is reused.
    #
    # External fault ids embed layout coordinates, so after the
    # placement shifts each external fault dies and a twin with the same
    # corresponding gates reappears under a new id.  Such a *covered*
    # fault cannot touch a reusable cluster: any previous cluster
    # adjacent to its gates merged the dead twin and therefore already
    # fails the member-survival test — so covered faults need not poison
    # the dirty zone.
    prev_gates = prev_report.fault_gates
    new_ids = set(by_id)
    dead_gate_sets: Set[FrozenSet[str]] = {
        gates for pid, gates in prev_gates.items() if pid not in new_ids
    }
    fault_gates: Dict[str, FrozenSet[str]] = {}
    clean: Set[str] = set()
    dirty_gates: Set[str] = set()
    for fault in undetectable:
        fid = fault.fault_id
        pg = prev_gates.get(fid)
        if pg is not None and not (pg & zone):
            fault_gates[fid] = pg
            clean.add(fid)
            continue
        gates = corresponding_gates(fault, circuit)
        fault_gates[fid] = gates
        if pg is not None and gates == pg:
            clean.add(fid)
        elif gates not in dead_gate_sets:
            dirty_gates |= gates

    hot = zone | dirty_gates
    hot_plus = set(hot)
    for g in hot:
        if g in circuit.gates:
            hot_plus |= circuit.gate_fanout_gates(g)
            hot_plus |= circuit.gate_fanin_gates(g)

    reused: List[List[Fault]] = []
    reused_ids: Set[str] = set()
    for cluster in prev_report.clusters:
        if not all(f.fault_id in clean for f in cluster):
            continue
        cluster_gates: Set[str] = set()
        for f in cluster:
            cluster_gates |= fault_gates[f.fault_id]
        if cluster_gates & hot_plus:
            continue
        reused.append([by_id[f.fault_id] for f in cluster])
        reused_ids.update(f.fault_id for f in cluster)

    rest = [f for f in undetectable if f.fault_id not in reused_ids]
    recomputed = _cluster_components(circuit, rest, fault_gates)
    if stats is not None:
        stats.clusters_reused += len(reused)
        stats.clusters_recomputed += len(recomputed)
    return _sorted_report(reused + recomputed, fault_gates)
