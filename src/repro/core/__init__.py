"""The paper's contribution: undetectable-fault clustering analysis and
the two-phase, constraint-aware resynthesis procedure.

* :mod:`repro.core.clustering` — Section II: partition undetectable
  faults into subsets of structurally adjacent faults; S_max, G_max, G_U.
* :mod:`repro.core.flow` — one iteration of the design flow
  (synthesis -> physical design -> DFM fault extraction -> ATPG ->
  clustering) bundled as a :class:`DesignState`.
* :mod:`repro.core.resynthesis` — Section III-B: the two-phase iterative
  procedure with cell-exclusion ordering, acceptance criteria, p1/p2
  cluster-size targets and the q = 0..5 constraint schedule.
* :mod:`repro.core.backtracking` — Section III-C: sqrt(n)-group
  backtracking over the replacement gate set when design constraints are
  violated.
* :mod:`repro.core.metrics` — the rows of Tables I and II.
"""

from repro.core.clustering import (
    ClusterReport,
    cluster_undetectable,
    cluster_undetectable_incremental,
    are_adjacent,
)
from repro.core.flow import (
    DesignState,
    analyze_design,
    classify_internal,
    count_undetectable_internal,
)
from repro.core.backtracking import backtrack_resynthesis
from repro.core.resynthesis import (
    IterationRecord,
    ResynthesisConfig,
    ResynthesisResult,
    resynthesize_for_coverage,
)
from repro.core.metrics import table1_row, table2_row

__all__ = [
    "ClusterReport",
    "cluster_undetectable",
    "cluster_undetectable_incremental",
    "are_adjacent",
    "DesignState",
    "analyze_design",
    "classify_internal",
    "count_undetectable_internal",
    "backtrack_resynthesis",
    "IterationRecord",
    "ResynthesisConfig",
    "ResynthesisResult",
    "resynthesize_for_coverage",
    "table1_row",
    "table2_row",
]
