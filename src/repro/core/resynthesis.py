"""The two-phase resynthesis procedure (Section III of the paper).

Phase 1 targets the current largest cluster of undetectable faults
(``C_sub = G_max``) until at most ``p1`` of the faults in F remain in
S_max; phase 2 targets all gates with undetectable faults (``C_sub =
G_U``) to reduce the total number of undetectable faults further, while
keeping the S_max share below ``p2``.

In every iteration the library cells are considered in decreasing order
of internal DFM fault count (``cell_0`` first); considering ``cell_i``
means resynthesizing ``C_sub - G_zero`` *without* ``cell_0 .. cell_i``.
``PDesign()`` runs only when the number of undetectable internal faults
decreased, and the backtracking procedure of Section III-C guards the
design constraints (fixed die; delay/power within ``1 + q``).

The driver applies the procedure with q = 0 first, then re-applies it
with q increased one percent at a time up to ``q_max`` = 5, each time on
top of the previous solution, exactly as in Section I of the paper.

Performance model
-----------------
The loop's dominant cost is evaluating candidate implementations:
synthesize + place-and-route, then fault re-analysis.  Three levers cut
it without changing any result:

* **Staged, cached candidate evaluation** — a candidate is identified
  by ``(current state, replacement gate set, allowed cells)``; none of
  its evaluation stages depend on the slack step q or on the phase, so
  one bounded LRU cache (:class:`_Evaluation` objects) carries finished
  work across the whole q sweep.  The q = 0 and q = 1 passes, and the
  phase-1/phase-2 passes over an unchanged state, repeat *identical*
  candidate evaluations — the cache collapses them to lookups.
* **Speculative evaluation** — with ``speculation > 1`` the q- and
  phase-independent stage 1 (synthesize + replace + PDesign) of the
  next few candidates in the cell ordering runs ahead on a thread pool.
  Acceptance still scans candidates strictly in the original order on
  the consuming thread, so the accepted-iteration trace is bit-identical
  to the serial loop; overshoot stays in the cache and often pays off in
  a later pass or q step.
* **Cone-scoped incremental re-analysis** — an accepted-path candidate
  is re-analyzed with ``analyze_design(prev=state, internal_atpg=...)``:
  verdicts and layout-independent fault objects of gates outside the
  replaced region are inherited, the candidate's own pre-PDesign
  internal classification is not repeated, and clustering is updated
  via union-find deltas (see :mod:`repro.core.flow`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.atpg.engine import AtpgResult
from repro.core.backtracking import backtrack_resynthesis
from repro.core.flow import (
    DesignState,
    analyze_design,
    classify_internal,
)
from repro.dfm.guidelines import Guideline
from repro.faults.model import CellAwareFault
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit, extract_subcircuit, replace_subcircuit
from repro.physical.pdesign import PhysicalDesign, pdesign
from repro.physical.placement import PlacementError
from repro.synthesis.synthesize import is_complete_subset, synthesize
from repro.synthesis.techmap import TechmapError
from repro.utils.observability import ResynthesisStats


@dataclass
class ResynthesisConfig:
    """Knobs of the procedure (paper defaults)."""

    p1: float = 0.01  # phase-1 target: |S_max| / |F|
    q_max: int = 5  # maximum delay/power increase, percent
    seed: int = 0
    utilization: float = 0.70
    # "faults": Synthesize() minimizes internal DFM fault sites when
    # re-mapping C_sub ("resynthesizing the circuit with standard cells
    # containing fewer internal faults", Section I of the paper).
    objective: str = "faults"
    max_iterations_per_phase: int = 25
    trend_window: int = 3  # stop a sweep when U rises this many times
    guidelines: Optional[Sequence[Guideline]] = None
    # Performance knobs — none of these change any produced result
    # (accepted trace, verdicts, clusters); they only move work around.
    workers: int = 1  # fault-simulation workers inside the engine
    # How fault-simulation batches execute at workers > 1: "thread",
    # "process" (shared-memory multi-core, repro.faults.psim), "auto"
    # or "serial"; None defers to REPRO_SIM_EXEC.
    exec_mode: Optional[str] = None
    speculation: Optional[int] = None  # stage-1 evals in flight (None -> workers)
    incremental: bool = True  # cone-scoped incremental re-analysis
    candidate_cache_size: int = 256  # retained candidate evaluations


@dataclass
class IterationRecord:
    """One resynthesis attempt, for tracing/reporting."""

    phase: int
    q: int
    csub_size: int
    excluded_upto: str  # name of cell_i
    status: str
    u_total: Optional[int] = None
    smax: Optional[int] = None


@dataclass
class ResynthesisResult:
    """Original vs. final design state plus the full iteration trace."""

    original: DesignState
    final: DesignState
    per_q: Dict[int, DesignState]
    q_used: int
    history: List[IterationRecord] = field(default_factory=list)
    runtime: float = 0.0
    baseline_runtime: float = 0.0
    stats: ResynthesisStats = field(default_factory=ResynthesisStats)

    @property
    def relative_runtime(self) -> float:
        """The paper's Rtime: procedure time over one flow iteration."""
        if self.baseline_runtime <= 0:
            return float("nan")
        return self.runtime / self.baseline_runtime


class _Evaluation:
    """Staged, cached evaluation of one candidate implementation.

    Stage 1 (synthesize + replace + PDesign) is thread-safe and may run
    ahead on the speculation pool; stages 2 (pre-PDesign internal
    classification) and 3 (full re-analysis) run lazily on the consuming
    thread, in consumption order.  All stages are computed at most once.

    Constraint checking happens before fault analysis: in this substrate
    PDesign() is cheap relative to exact ATPG — the inverse of the
    paper's tool costs — so the gating order is swapped accordingly (the
    paper gates PDesign() on the undetectable-internal check because
    physical design is *their* expensive step).
    """

    __slots__ = (
        "driver", "state", "replacement", "allowed",
        "kind", "candidate", "physical", "internal_atpg", "cand_state",
        "_lock",
    )

    def __init__(
        self,
        driver: "_Resynthesizer",
        state: DesignState,
        replacement: FrozenSet[str],
        allowed: Tuple[str, ...],
    ):
        self.driver = driver
        self.state = state
        self.replacement = replacement
        self.allowed = allowed
        self.kind: Optional[str] = None  # "synthfail" | "nofit" | "placed"
        self.candidate: Optional[Circuit] = None
        self.physical: Optional[PhysicalDesign] = None
        self.internal_atpg: Optional[AtpgResult] = None
        self.cand_state: Optional[DesignState] = None
        self._lock = threading.Lock()

    def ensure_placed(self) -> str:
        """Stage 1: synthesize the replacement and place-and-route it."""
        with self._lock:
            if self.kind is not None:
                return self.kind
            driver = self.driver
            sub = extract_subcircuit(
                self.state.circuit, self.replacement, name="csub"
            )
            try:
                new_sub = synthesize(
                    sub, driver.library, allowed_cells=list(self.allowed),
                    objective=driver.cfg.objective,
                )
                candidate = replace_subcircuit(
                    self.state.circuit, self.replacement, new_sub
                )
            except TechmapError:
                self.kind = "synthfail"
                return self.kind
            try:
                physical = pdesign(
                    candidate, driver.cells,
                    floorplan=driver.orig.physical.floorplan,
                    seed=driver.cfg.seed,
                )
            except PlacementError:
                self.kind = "nofit"  # does not fit the fixed die
                return self.kind
            self.candidate = candidate
            self.physical = physical
            self.kind = "placed"
            driver.count("candidates_evaluated")
            return self.kind

    def u_in_new(self) -> int:
        """Stage 2: undetectable internal faults of the bare candidate.

        Returns the conservative *upper bound* — proved undetectable
        plus aborted internal faults — so that under a resource budget
        an unclassified fault can never help a candidate pass the
        Section III-B gate.  Identical to the exact count when nothing
        aborted (the default unlimited budget).
        """
        if self.internal_atpg is None:
            driver, state = self.driver, self.state
            undet, det = driver.behaviour_keys(state)
            self.internal_atpg = classify_internal(
                self.candidate, driver.library,
                initial_tests=state.tests, atpg_seed=driver.cfg.seed,
                assume_undetectable=undet,
                assume_detected=det if driver.cfg.incremental else None,
                workers=driver.cfg.workers,
                exec_mode=driver.cfg.exec_mode,
                stats=driver.stats.engine,
            )
        return (
            len(self.internal_atpg.undetectable)
            + len(self.internal_atpg.aborted)
        )

    def result_state(self) -> DesignState:
        """Stage 3: full re-analysis of the placed candidate."""
        if self.cand_state is None:
            driver, state = self.driver, self.state
            if driver.cfg.incremental:
                self.cand_state = analyze_design(
                    self.candidate, driver.library,
                    seed=driver.cfg.seed, guidelines=driver.cfg.guidelines,
                    atpg_seed=driver.cfg.seed,
                    physical=self.physical,
                    prev=state,
                    internal_atpg=self.internal_atpg,
                    workers=driver.cfg.workers,
                    exec_mode=driver.cfg.exec_mode,
                    stats=driver.stats.engine,
                )
            else:
                undet, _ = driver.behaviour_keys(state)
                self.cand_state = analyze_design(
                    self.candidate, driver.library,
                    seed=driver.cfg.seed, guidelines=driver.cfg.guidelines,
                    initial_tests=state.tests, atpg_seed=driver.cfg.seed,
                    assume_undetectable=undet,
                    physical=self.physical,
                    workers=driver.cfg.workers,
                    exec_mode=driver.cfg.exec_mode,
                    stats=driver.stats.engine,
                )
        return self.cand_state


class _Resynthesizer:
    """Internal driver holding the shared context of one procedure run."""

    def __init__(
        self,
        library: Library,
        orig: DesignState,
        cfg: ResynthesisConfig,
        stats: Optional[ResynthesisStats] = None,
    ):
        self.library = library
        self.cells = {c.name: c for c in library}
        self.orig = orig
        self.cfg = cfg
        self.stats = stats if stats is not None else ResynthesisStats()
        self.history: List[IterationRecord] = []
        self._order = library.order_by_internal_faults()
        self._eval_cache: "OrderedDict[tuple, _Evaluation]" = OrderedDict()
        self._keys_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._stats_lock = threading.Lock()
        spec = cfg.speculation if cfg.speculation is not None else cfg.workers
        self.speculation = max(1, spec)
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=self.speculation)
            if self.speculation > 1 else None
        )

    def close(self) -> None:
        """Drain the speculation pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def count(self, name: str, n: int = 1) -> None:
        """Thread-safe increment of a ResynthesisStats counter."""
        with self._stats_lock:
            setattr(self.stats, name, getattr(self.stats, name) + n)

    def behaviour_keys(self, state: DesignState) -> Tuple[set, set]:
        """(undetectable, detected) behaviour keys of *state*, cached."""
        key = id(state)
        hit = self._keys_cache.get(key)
        if hit is not None and hit[0] is state:
            return hit[1], hit[2]
        undet = state.undetectable_behaviour_keys()
        det = state.detected_behaviour_keys()
        self._keys_cache[key] = (state, undet, det)
        while len(self._keys_cache) > 8:
            self._keys_cache.popitem(last=False)
        return undet, det

    def _evaluation(
        self,
        state: DesignState,
        replacement: Set[str],
        allowed: Sequence[str],
        record: bool = True,
    ) -> _Evaluation:
        """The cached evaluation for (state, replacement, allowed).

        The key uses ``id(state)``; every live cache entry holds a
        reference to its state, so an id cannot be recycled while
        entries for it remain.  Only the consuming thread touches the
        cache.  *record* is off for speculative warm-ups so a candidate
        counts one cache hit/miss per consumption, not per touch.
        """
        repl = frozenset(replacement)
        allow = tuple(allowed)
        key = (id(state), repl, allow)
        ev = self._eval_cache.get(key)
        if ev is not None and ev.state is state:
            if record:
                self.stats.candidate_cache_hits += 1
            self._eval_cache.move_to_end(key)
            return ev
        if record:
            self.stats.candidate_cache_misses += 1
        ev = _Evaluation(self, state, repl, allow)
        self._eval_cache[key] = ev
        limit = max(1, self.cfg.candidate_cache_size)
        while len(self._eval_cache) > limit:
            self._eval_cache.popitem(last=False)
        return ev

    # ------------------------------------------------------------------
    def gates_with_undetectable_internal(
        self, state: DesignState
    ) -> Dict[str, int]:
        """Map gate -> number of its undetectable internal faults."""
        out: Dict[str, int] = {}
        for fault in state.fault_set.internal:
            if fault.fault_id in state.atpg.undetectable:
                assert isinstance(fault, CellAwareFault)
                out[fault.gate] = out.get(fault.gate, 0) + 1
        return out

    # ------------------------------------------------------------------
    def attempt(
        self,
        state: DesignState,
        replacement: Set[str],
        allowed: List[str],
        q: int,
        accept,
    ) -> Tuple[str, Optional[DesignState]]:
        """One Synthesize()/PDesign() attempt on *replacement* gates.

        Status: "accepted" | "constraints" | "rejected" | "synthfail".
        The staged evaluation behind it is cached, so re-attempting the
        same candidate at a higher q (or in the other phase) only
        re-runs the cheap constraint comparison.
        """
        if not replacement:
            return "synthfail", None
        ev = self._evaluation(state, replacement, allowed)
        kind = ev.ensure_placed()
        if kind == "synthfail":
            return "synthfail", None
        if kind == "nofit":
            return "constraints", None
        if not ev.physical.meets_constraints(self.orig.physical, q):
            return "constraints", None
        # Status inheritance: faults outside the replaced region keep
        # their verdicts (detection is functional; the replacement is
        # functionally equivalent and replaced objects get fresh names).
        if ev.u_in_new() >= state.u_internal:
            return "rejected", None
        cand_state = ev.result_state()
        if accept(cand_state, state):
            return "accepted", cand_state
        return "rejected", None

    def _on_backtrack_attempt(self, replacement: Set[str], status: str) -> None:
        self.stats.backtrack_attempts += 1

    # ------------------------------------------------------------------
    def resynthesize_once(
        self,
        state: DesignState,
        csub_gates: Set[str],
        q: int,
        phase: int,
        accept,
    ) -> Optional[DesignState]:
        """One pass over the cell ordering for one subcircuit target."""
        u_int_by_gate = self.gates_with_undetectable_internal(state)
        g_zero = {g for g in csub_gates if u_int_by_gate.get(g, 0) == 0}
        replacement_base = set(csub_gates) - g_zero
        if not replacement_base:
            return None
        used_cells = {
            state.circuit.gates[g].cell for g in replacement_base
        }

        # Eligible steps of the cell ordering (rules (1)-(3) of Section
        # III-B), precomputed so stage-1 evaluations can run ahead.
        specs: List[Tuple[object, Tuple[str, ...], int]] = []
        for i, cell_i in enumerate(self._order[:-1]):
            if cell_i.name not in used_cells:
                continue
            if not any(
                state.circuit.gates[g].cell == cell_i.name
                for g in replacement_base
            ):
                continue
            rest = self._order[i + 1:]
            if not is_complete_subset(rest):
                break  # even smaller suffixes cannot synthesize C_sub
            specs.append((cell_i, tuple(c.name for c in rest), i))

        ahead: Set[int] = set()  # speculated, not yet consumed
        launched: Set[int] = set()

        def warm(from_k: int) -> None:
            # Speculation: launch stage 1 for the next few candidates.
            # Acceptance below still consumes strictly in order.
            if self._executor is None:
                return
            for j in range(from_k, min(from_k + self.speculation, len(specs))):
                if j in launched:
                    continue
                launched.add(j)
                ev = self._evaluation(
                    state, replacement_base, specs[j][1], record=False
                )
                if ev.kind is None:
                    if j > from_k:
                        self.count("candidates_speculated")
                        ahead.add(j)
                    self._executor.submit(ev.ensure_placed)

        u_trend: List[int] = []
        try:
            for k, (cell_i, allowed_names, i) in enumerate(specs):
                warm(k)
                ahead.discard(k)
                allowed = list(allowed_names)

                def accept_and_track(
                    cand: DesignState, cur: DesignState
                ) -> bool:
                    u_trend.append(cand.u_total)
                    return accept(cand, cur)

                status, cand = self.attempt(
                    state, replacement_base, allowed, q, accept_and_track
                )
                self.history.append(IterationRecord(
                    phase=phase, q=q, csub_size=len(replacement_base),
                    excluded_upto=cell_i.name, status=status,
                    u_total=cand.u_total if cand else None,
                    smax=cand.smax_size if cand else None,
                ))
                if status == "accepted":
                    return cand
                if status == "constraints":
                    g_i = [
                        g for g in sorted(replacement_base)
                        if self._cell_index(state.circuit.gates[g].cell) <= i
                    ]
                    # Replace the most fault-laden gates preferentially:
                    # the tail of g_i (moved to G_back first) holds the
                    # gates with the fewest undetectable internal faults.
                    g_i.sort(key=lambda g: (-u_int_by_gate.get(g, 0), g))
                    back = backtrack_resynthesis(
                        replacement_base, g_i,
                        lambda repl: self.attempt(
                            state, repl, allowed, q, accept_and_track
                        ),
                        on_attempt=self._on_backtrack_attempt,
                    )
                    if back is not None:
                        self.history.append(IterationRecord(
                            phase=phase, q=q,
                            csub_size=len(replacement_base),
                            excluded_upto=cell_i.name,
                            status="backtrack-accepted",
                            u_total=back.u_total, smax=back.smax_size,
                        ))
                        return back
                # Early phase termination: the U trend turned upward.
                w = self.cfg.trend_window
                if len(u_trend) > w and all(
                    u_trend[-j] > u_trend[-j - 1] for j in range(1, w + 1)
                ):
                    break
            return None
        finally:
            if ahead:
                self.count("candidates_wasted", len(ahead))

    def _cell_index(self, cell_name: str) -> int:
        for i, cell in enumerate(self._order):
            if cell.name == cell_name:
                return i
        raise KeyError(cell_name)

    # ------------------------------------------------------------------
    def run_phase1(self, state: DesignState, q: int) -> DesignState:
        for _ in range(self.cfg.max_iterations_per_phase):
            if state.u_total == 0:
                break
            if state.smax_fraction_of_f <= self.cfg.p1:
                break

            def accept(cand: DesignState, cur: DesignState) -> bool:
                # Phase 1: S_max must shrink without increasing total U.
                # The candidate is held to its pessimistic U (proved
                # undetectable + aborted): an unclassified fault never
                # buys acceptance.  u_upper == u_total when no budget.
                return (
                    cand.smax_size < cur.smax_size
                    and cand.u_upper <= cur.u_total
                )

            new = self.resynthesize_once(
                state, state.clusters.gmax, q, phase=1, accept=accept
            )
            if new is None:
                break
            state = new
        return state

    def run_phase2(self, state: DesignState, q: int) -> DesignState:
        p2 = max(self.cfg.p1, state.smax_fraction_of_f)
        for _ in range(self.cfg.max_iterations_per_phase):
            if state.u_total == 0:
                break

            def accept(cand: DesignState, cur: DesignState) -> bool:
                # Phase 2: total U must drop; S_max share stays <= p2.
                # As in phase 1, the candidate's pessimistic U (proved +
                # aborted) must beat the reference's proved U.
                return (
                    cand.u_upper < cur.u_total
                    and cand.smax_fraction_of_f <= p2
                )

            new = self.resynthesize_once(
                state, state.clusters.gates_u, q, phase=2, accept=accept
            )
            if new is None:
                break
            state = new
        return state


def resynthesize_for_coverage(
    circuit: Circuit,
    library: Library,
    config: Optional[ResynthesisConfig] = None,
) -> ResynthesisResult:
    """Apply the full procedure (both phases, q swept 0..q_max)."""
    cfg = config or ResynthesisConfig()
    stats = ResynthesisStats()
    t0 = time.perf_counter()
    orig = analyze_design(
        circuit, library, seed=cfg.seed, utilization=cfg.utilization,
        guidelines=cfg.guidelines, atpg_seed=cfg.seed,
        workers=cfg.workers, exec_mode=cfg.exec_mode, stats=stats.engine,
    )
    baseline = time.perf_counter() - t0
    driver = _Resynthesizer(library, orig, cfg, stats=stats)
    try:
        state = orig
        per_q: Dict[int, DesignState] = {}
        for q in range(cfg.q_max + 1):
            state = driver.run_phase1(state, q)
            state = driver.run_phase2(state, q)
            per_q[q] = state
    finally:
        driver.close()
    final = per_q[cfg.q_max]
    q_used = cfg.q_max
    for q in range(cfg.q_max + 1):
        if per_q[q].coverage >= final.coverage:
            q_used = q
            break
    final = per_q[q_used]
    return ResynthesisResult(
        original=orig,
        final=final,
        per_q=per_q,
        q_used=q_used,
        history=driver.history,
        runtime=time.perf_counter() - t0,
        baseline_runtime=baseline,
        stats=driver.stats,
    )
