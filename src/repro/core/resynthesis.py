"""The two-phase resynthesis procedure (Section III of the paper).

Phase 1 targets the current largest cluster of undetectable faults
(``C_sub = G_max``) until at most ``p1`` of the faults in F remain in
S_max; phase 2 targets all gates with undetectable faults (``C_sub =
G_U``) to reduce the total number of undetectable faults further, while
keeping the S_max share below ``p2``.

In every iteration the library cells are considered in decreasing order
of internal DFM fault count (``cell_0`` first); considering ``cell_i``
means resynthesizing ``C_sub - G_zero`` *without* ``cell_0 .. cell_i``.
``PDesign()`` runs only when the number of undetectable internal faults
decreased, and the backtracking procedure of Section III-C guards the
design constraints (fixed die; delay/power within ``1 + q``).

The driver applies the procedure with q = 0 first, then re-applies it
with q increased one percent at a time up to ``q_max`` = 5, each time on
top of the previous solution, exactly as in Section I of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.backtracking import backtrack_resynthesis
from repro.core.flow import (
    DesignState,
    analyze_design,
    count_undetectable_internal,
)
from repro.dfm.guidelines import Guideline
from repro.faults.model import CellAwareFault
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit, extract_subcircuit, replace_subcircuit
from repro.physical.pdesign import pdesign
from repro.physical.placement import PlacementError
from repro.synthesis.synthesize import is_complete_subset, synthesize
from repro.synthesis.techmap import TechmapError


@dataclass
class ResynthesisConfig:
    """Knobs of the procedure (paper defaults)."""

    p1: float = 0.01  # phase-1 target: |S_max| / |F|
    q_max: int = 5  # maximum delay/power increase, percent
    seed: int = 0
    utilization: float = 0.70
    # "faults": Synthesize() minimizes internal DFM fault sites when
    # re-mapping C_sub ("resynthesizing the circuit with standard cells
    # containing fewer internal faults", Section I of the paper).
    objective: str = "faults"
    max_iterations_per_phase: int = 25
    trend_window: int = 3  # stop a sweep when U rises this many times
    guidelines: Optional[Sequence[Guideline]] = None


@dataclass
class IterationRecord:
    """One resynthesis attempt, for tracing/reporting."""

    phase: int
    q: int
    csub_size: int
    excluded_upto: str  # name of cell_i
    status: str
    u_total: Optional[int] = None
    smax: Optional[int] = None


@dataclass
class ResynthesisResult:
    """Original vs. final design state plus the full iteration trace."""

    original: DesignState
    final: DesignState
    per_q: Dict[int, DesignState]
    q_used: int
    history: List[IterationRecord] = field(default_factory=list)
    runtime: float = 0.0
    baseline_runtime: float = 0.0

    @property
    def relative_runtime(self) -> float:
        """The paper's Rtime: procedure time over one flow iteration."""
        if self.baseline_runtime <= 0:
            return float("nan")
        return self.runtime / self.baseline_runtime


class _Resynthesizer:
    """Internal driver holding the shared context of one procedure run."""

    def __init__(
        self, library: Library, orig: DesignState, cfg: ResynthesisConfig
    ):
        self.library = library
        self.orig = orig
        self.cfg = cfg
        self.history: List[IterationRecord] = []
        self._order = library.order_by_internal_faults()

    # ------------------------------------------------------------------
    def gates_with_undetectable_internal(
        self, state: DesignState
    ) -> Dict[str, int]:
        """Map gate -> number of its undetectable internal faults."""
        out: Dict[str, int] = {}
        for fault in state.fault_set.internal:
            if fault.fault_id in state.atpg.undetectable:
                assert isinstance(fault, CellAwareFault)
                out[fault.gate] = out.get(fault.gate, 0) + 1
        return out

    # ------------------------------------------------------------------
    def attempt(
        self,
        state: DesignState,
        replacement: Set[str],
        allowed: List[str],
        q: int,
        accept,
    ) -> Tuple[str, Optional[DesignState]]:
        """One Synthesize()/PDesign() attempt on *replacement* gates.

        Status: "accepted" | "constraints" | "rejected" | "synthfail".
        """
        if not replacement:
            return "synthfail", None
        sub = extract_subcircuit(state.circuit, replacement, name="csub")
        try:
            new_sub = synthesize(
                sub, self.library, allowed_cells=allowed,
                objective=self.cfg.objective,
            )
            candidate = replace_subcircuit(
                state.circuit, replacement, new_sub
            )
        except TechmapError:
            return "synthfail", None
        # Constraint check first: in this substrate PDesign() is cheap
        # and exact ATPG is the bottleneck — the inverse of the paper's
        # tool costs — so the gating order is swapped accordingly (the
        # paper gates PDesign() on the undetectable-internal check
        # because physical design is *their* expensive step).
        cells = {c.name: c for c in self.library}
        try:
            physical = pdesign(
                candidate, cells,
                floorplan=self.orig.physical.floorplan,
                seed=self.cfg.seed,
            )
        except PlacementError:
            return "constraints", None  # does not fit the fixed die
        if not physical.meets_constraints(self.orig.physical, q):
            return "constraints", None
        # Status inheritance: faults outside the replaced region keep
        # their verdicts (detection is functional; the replacement is
        # functionally equivalent and replaced objects get fresh names).
        known_undet = state.undetectable_behaviour_keys()
        u_in_new = count_undetectable_internal(
            candidate, self.library,
            initial_tests=state.tests, atpg_seed=self.cfg.seed,
            assume_undetectable=known_undet,
        )
        if u_in_new >= state.u_internal:
            return "rejected", None
        cand_state = analyze_design(
            candidate, self.library,
            seed=self.cfg.seed,
            guidelines=self.cfg.guidelines,
            initial_tests=state.tests,
            atpg_seed=self.cfg.seed,
            assume_undetectable=known_undet,
            physical=physical,
        )
        if accept(cand_state, state):
            return "accepted", cand_state
        return "rejected", None

    # ------------------------------------------------------------------
    def resynthesize_once(
        self,
        state: DesignState,
        csub_gates: Set[str],
        q: int,
        phase: int,
        accept,
    ) -> Optional[DesignState]:
        """One pass over the cell ordering for one subcircuit target."""
        u_int_by_gate = self.gates_with_undetectable_internal(state)
        g_zero = {g for g in csub_gates if u_int_by_gate.get(g, 0) == 0}
        replacement_base = set(csub_gates) - g_zero
        if not replacement_base:
            return None
        used_cells = {
            state.circuit.gates[g].cell for g in replacement_base
        }
        u_trend: List[int] = []
        for i, cell_i in enumerate(self._order[:-1]):
            # Eligibility rules (1)-(3) of Section III-B.
            if cell_i.name not in used_cells:
                continue
            if not any(
                state.circuit.gates[g].cell == cell_i.name
                for g in replacement_base
            ):
                continue
            rest = self._order[i + 1:]
            if not is_complete_subset(rest):
                break  # even smaller suffixes cannot synthesize C_sub
            allowed = [c.name for c in rest]

            def accept_and_track(cand: DesignState, cur: DesignState) -> bool:
                u_trend.append(cand.u_total)
                return accept(cand, cur)

            status, cand = self.attempt(
                state, replacement_base, allowed, q, accept_and_track
            )
            self.history.append(IterationRecord(
                phase=phase, q=q, csub_size=len(replacement_base),
                excluded_upto=cell_i.name, status=status,
                u_total=cand.u_total if cand else None,
                smax=cand.smax_size if cand else None,
            ))
            if status == "accepted":
                return cand
            if status == "constraints":
                g_i = [
                    g for g in sorted(replacement_base)
                    if self._cell_index(state.circuit.gates[g].cell) <= i
                ]
                # Replace the most fault-laden gates preferentially: the
                # tail of g_i (moved to G_back first) holds the gates
                # with the fewest undetectable internal faults.
                g_i.sort(key=lambda g: (-u_int_by_gate.get(g, 0), g))
                back = backtrack_resynthesis(
                    replacement_base, g_i,
                    lambda repl: self.attempt(
                        state, repl, allowed, q, accept_and_track
                    ),
                )
                if back is not None:
                    self.history.append(IterationRecord(
                        phase=phase, q=q, csub_size=len(replacement_base),
                        excluded_upto=cell_i.name, status="backtrack-accepted",
                        u_total=back.u_total, smax=back.smax_size,
                    ))
                    return back
            # Early phase termination: the U trend turned upward.
            w = self.cfg.trend_window
            if len(u_trend) > w and all(
                u_trend[-j] > u_trend[-j - 1] for j in range(1, w + 1)
            ):
                break
        return None

    def _cell_index(self, cell_name: str) -> int:
        for i, cell in enumerate(self._order):
            if cell.name == cell_name:
                return i
        raise KeyError(cell_name)

    # ------------------------------------------------------------------
    def run_phase1(self, state: DesignState, q: int) -> DesignState:
        for _ in range(self.cfg.max_iterations_per_phase):
            if state.u_total == 0:
                break
            if state.smax_fraction_of_f <= self.cfg.p1:
                break

            def accept(cand: DesignState, cur: DesignState) -> bool:
                # Phase 1: S_max must shrink without increasing total U.
                return (
                    cand.smax_size < cur.smax_size
                    and cand.u_total <= cur.u_total
                )

            new = self.resynthesize_once(
                state, state.clusters.gmax, q, phase=1, accept=accept
            )
            if new is None:
                break
            state = new
        return state

    def run_phase2(self, state: DesignState, q: int) -> DesignState:
        p2 = max(self.cfg.p1, state.smax_fraction_of_f)
        for _ in range(self.cfg.max_iterations_per_phase):
            if state.u_total == 0:
                break

            def accept(cand: DesignState, cur: DesignState) -> bool:
                # Phase 2: total U must drop; S_max share stays <= p2.
                return (
                    cand.u_total < cur.u_total
                    and cand.smax_fraction_of_f <= p2
                )

            new = self.resynthesize_once(
                state, state.clusters.gates_u, q, phase=2, accept=accept
            )
            if new is None:
                break
            state = new
        return state


def resynthesize_for_coverage(
    circuit: Circuit,
    library: Library,
    config: Optional[ResynthesisConfig] = None,
) -> ResynthesisResult:
    """Apply the full procedure (both phases, q swept 0..q_max)."""
    cfg = config or ResynthesisConfig()
    t0 = time.monotonic()
    orig = analyze_design(
        circuit, library, seed=cfg.seed, utilization=cfg.utilization,
        guidelines=cfg.guidelines, atpg_seed=cfg.seed,
    )
    baseline = time.monotonic() - t0
    driver = _Resynthesizer(library, orig, cfg)
    state = orig
    per_q: Dict[int, DesignState] = {}
    for q in range(cfg.q_max + 1):
        state = driver.run_phase1(state, q)
        state = driver.run_phase2(state, q)
        per_q[q] = state
    final = per_q[cfg.q_max]
    q_used = cfg.q_max
    for q in range(cfg.q_max + 1):
        if per_q[q].coverage >= final.coverage:
            q_used = q
            break
    final = per_q[q_used]
    return ResynthesisResult(
        original=orig,
        final=final,
        per_q=per_q,
        q_used=q_used,
        history=driver.history,
        runtime=time.monotonic() - t0,
        baseline_runtime=baseline,
    )
