"""Deterministic generators for the twelve benchmark circuits.

Each generator mirrors the *flavor* of the corresponding circuit from the
paper's Table II (OpenCores designs and OpenSPARC T1 blocks) at a
Python-ATPG-tractable size; ``scale`` widens the datapaths.  Crypto
circuits use the 4-bit PRESENT S-box and the real DES S1/S2 S-boxes
instead of the 8-bit AES S-box, which keeps the mapped netlists in the
hundreds-of-gates range (see DESIGN.md, substitution table).

Every circuit includes a *checker / error-handling* section — parity
prediction on adders, one-hot consistency checks on arbiters, shadow
recomputation on shifters — whose fallback cones are unexercisable in
fault-free operation.  Real blocks (OpenSPARC T1 prominently) carry the
same parity/ECC structures, and they are the realistic source of the
clustered undetectable DFM faults the paper studies in Section II.

``build_benchmark`` runs the generator and then the full ``Synthesize()``
mapping pass, so the returned netlist is an optimized, mapped design —
the paper's premise for ``C_all``.  (Checker redundancy that synthesis
can prove constant is removed by that pass, as a commercial flow would;
what remains is the non-structurally-provable part.)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench.builder import NetBuilder
from repro.library.osu018 import Library
from repro.netlist.circuit import Circuit
from repro.synthesis.synthesize import synthesize

# The PRESENT cipher S-box (4 -> 4).
PRESENT_SBOX = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
]

# DES S-boxes S1 and S2 (row = (b5 b0), col = b4..b1).
_DES_S1_TABLE = [
    [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
    [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
    [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
    [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
]
_DES_S2_TABLE = [
    [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
    [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
    [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
    [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
]


def _des_flat(table: List[List[int]]) -> List[int]:
    """Flatten a DES S-box to a 64-entry list indexed by b5..b0 (LSB=b0)."""
    flat = [0] * 64
    for idx in range(64):
        row = ((idx >> 5) & 1) * 2 + (idx & 1)
        col = (idx >> 1) & 0xF
        flat[idx] = table[row][col]
    return flat


DES_S1 = _des_flat(_DES_S1_TABLE)
DES_S2 = _des_flat(_DES_S2_TABLE)


def _sbox4(nb: NetBuilder, bits: List[str]) -> List[str]:
    return nb.lookup(bits, PRESENT_SBOX, 4)


# ----------------------------------------------------------------------
# OpenCores-flavored circuits
# ----------------------------------------------------------------------
def tv80_like(scale: int = 1) -> Circuit:
    """8-bit microprocessor ALU with flags and parity-checked adder."""
    w = 8 * scale
    nb = NetBuilder("tv80")
    a = nb.inputs("a", w)
    b = nb.inputs("b", w)
    op = nb.inputs("op", 3)
    cin = nb.input("cin")
    add_s, add_carries = nb.adder_with_carries(a, b, cin)
    add_c = add_carries[-1]
    sub_s, sub_c = nb.subtractor(a, b)
    and_w = nb.and_word(a, b)
    or_w = nb.or_word(a, b)
    xor_w = nb.xor_word(a, b)
    inc_s, _ = nb.adder(a, nb.constant_word(1, w))
    rlc = [cin] + list(a[:-1])  # rotate left through carry
    cpl = nb.not_word(a)
    sel = nb.decoder(op)
    result = nb.onehot_mux_word(
        sel, [add_s, sub_s, and_w, or_w, xor_w, inc_s, rlc, cpl]
    )
    carry = nb.onehot_mux_word(
        sel,
        [[add_c], [sub_c], [nb.ZERO], [nb.ZERO],
         [nb.ZERO], [nb.ZERO], [a[-1]], [nb.ONE]],
    )[0]
    # Two independent checkers guard disjoint result slices (with an
    # unguarded gap), so their error-handling cones form separate
    # undetectable-fault clusters.
    k = w // 2
    err_lo = nb.adder_parity_check(a, b, add_s, add_carries, cin, width=4)
    _, sub_carries = nb.adder_with_carries(a, nb.not_word(b), cin=nb.ONE)
    err_hi = nb.adder_parity_check(
        a, nb.not_word(b), sub_s, sub_carries, cin=nb.ONE,
        width=4, lo=k + 1,
    )
    guarded = (nb.guard_word(err_lo, result[:k])
               + [result[k]]
               + nb.guard_word(err_hi, result[k + 1:]))
    zero = nb.not_(nb.reduce_or(guarded))
    parity = nb.not_(nb.reduce_xor(guarded))
    sign = guarded[-1]
    nb.outputs(guarded, "f")
    nb.output(carry, "flag_c")
    nb.output(zero, "flag_z")
    nb.output(parity, "flag_p")
    nb.output(sign, "flag_s")
    return nb.build()


def systemcaes_like(scale: int = 1) -> Circuit:
    """Substitution/permutation round slice (systemcaes flavor).

    S-box layer, rotation-based mixing (whose total parity is invariantly
    zero — the checker exploits that), round-key XOR.
    """
    n_nib = 4 * scale
    nb = NetBuilder("systemcaes")
    state = nb.inputs("s", 4 * n_nib)
    key = nb.inputs("k", 4 * n_nib)
    subbed: List[str] = []
    for i in range(n_nib):
        subbed.extend(_sbox4(nb, state[4 * i:4 * i + 4]))
    mixed: List[str] = []
    for i in range(n_nib):
        cur = subbed[4 * i:4 * i + 4]
        nxt = subbed[4 * ((i + 1) % n_nib):4 * ((i + 1) % n_nib) + 4]
        rot = nxt[1:] + nxt[:1]
        mixed.extend(nb.xor_word(cur, rot))
    # Nibble-local mixing invariant: mixed nibble i is subbed nibble i
    # XOR a permutation of subbed nibble i+1, so their joint parity is 0.
    # Two independent nibble checkers guard disjoint halves.
    def mix_err(i: int) -> str:
        j = (i + 1) % n_nib
        return nb.xor_(
            nb.reduce_xor(mixed[4 * i:4 * i + 4]),
            nb.xor_(
                nb.linear_parity(subbed[4 * i:4 * i + 4]),
                nb.linear_parity(subbed[4 * j:4 * j + 4]),
            ),
        )

    # Guard the first nibble of each half only: the two checkers have
    # fully disjoint transitive supports, so their clusters stay apart.
    half = 4 * (n_nib // 2)
    guarded = (
        nb.guard_word(mix_err(0), mixed[0:4])
        + mixed[4:half]
        + nb.guard_word(mix_err(n_nib // 2), mixed[half:half + 4])
        + mixed[half + 4:]
    )
    out = nb.xor_word(guarded, key)
    nb.outputs(out, "o")
    return nb.build()


def aes_core_like(scale: int = 1) -> Circuit:
    """Two-stage SP-network round (aes_core flavor) with a key-XOR
    parity predictor between the stages."""
    n_nib = 6 * scale
    nb = NetBuilder("aes_core")
    state = nb.inputs("s", 4 * n_nib)
    key = nb.inputs("k", 4 * n_nib)
    stage1: List[str] = []
    for i in range(n_nib):
        stage1.extend(_sbox4(nb, state[4 * i:4 * i + 4]))
    keyed = nb.xor_word(stage1, key)
    # Byte parity predictors: parity(keyed) == parity(stage1) ^
    # parity(key) per byte; two slices give two separate clusters.
    def key_err(lo: int, hi: int) -> str:
        return nb.xor_(
            nb.reduce_xor(keyed[lo:hi]),
            nb.xor_(
                nb.linear_parity(stage1[lo:hi]),
                nb.linear_parity(key[lo:hi]),
            ),
        )

    half = 4 * (n_nib // 2)
    keyed = (
        nb.guard_word(key_err(0, 6), keyed[:6])
        + keyed[6:half]
        + nb.guard_word(key_err(half, half + 6), keyed[half:half + 6])
        + keyed[half + 6:]
    )
    perm: List[str] = []
    # Shift-rows-style nibble rotation; stride n_nib - 1 is always
    # coprime with n_nib, so this is a true permutation.
    for i in range(n_nib):
        src = (i * (n_nib - 1) + 1) % n_nib
        perm.extend(keyed[4 * src:4 * src + 4])
    stage2: List[str] = []
    for i in range(n_nib):
        stage2.extend(_sbox4(nb, perm[4 * i:4 * i + 4]))
    out = nb.xor_word(stage2, state)
    nb.outputs(out, "o")
    return nb.build()


def wb_conmax_like(scale: int = 1) -> Circuit:
    """Wishbone crossbar slice: per-slave priority arbiter with one-hot
    consistency checking + data mux."""
    n_masters = 5
    n_slaves = 2 * scale
    width = 8
    nb = NetBuilder("wb_conmax")
    data = [nb.inputs(f"m{m}_d", width) for m in range(n_masters)]
    reqs = [nb.inputs(f"m{m}_req", n_slaves) for m in range(n_masters)]
    cyc = [nb.input(f"m{m}_cyc") for m in range(n_masters)]
    for s in range(n_slaves):
        wants = [
            nb.and_(reqs[m][s], cyc[m]) for m in range(n_masters)
        ]
        grants = nb.priority_encoder(wants)
        err = nb.onehot_violation(grants)
        bus = nb.onehot_mux_word(grants, data)
        any_grant = nb.reduce_or(grants)
        guarded = nb.guard_word(err, bus[:4]) + bus[4:]
        out = [nb.and_(bit, any_grant) for bit in guarded]
        nb.outputs(out, f"s{s}_d")
        nb.output(any_grant, f"s{s}_cyc")
        nb.outputs(grants, f"s{s}_gnt")
    return nb.build()


def des_perf_like(scale: int = 1) -> Circuit:
    """DES round slice: expansion + key XOR (parity-checked) + S1/S2 +
    P-permutation."""
    nb = NetBuilder("des_perf")
    n_pairs = scale  # each pair = S1 + S2 on 12 expanded bits
    right = nb.inputs("r", 8 * n_pairs)
    left = nb.inputs("l", 8 * n_pairs)
    key = nb.inputs("k", 12 * n_pairs)
    out_bits: List[str] = []
    for p in range(n_pairs):
        r = right[8 * p:8 * p + 8]
        expanded = [r[7], r[0], r[1], r[2], r[3], r[2],
                    r[3], r[4], r[5], r[6], r[7], r[0]]
        kslice = key[12 * p:12 * p + 12]
        keyed = nb.xor_word(expanded, kslice)
        # Two byte-parity predictors over disjoint halves of the keyed
        # expansion, guarding disjoint slices.
        def exp_err(lo: int, hi: int) -> str:
            return nb.xor_(
                nb.reduce_xor(keyed[lo:hi]),
                nb.xor_(
                    nb.linear_parity(expanded[lo:hi]),
                    nb.linear_parity(kslice[lo:hi]),
                ),
            )

        keyed = (nb.guard_word(exp_err(0, 6), keyed[:4])
                 + keyed[4:6]
                 + nb.guard_word(exp_err(6, 12), keyed[6:10])
                 + keyed[10:])
        s1 = nb.lookup(keyed[0:6], DES_S1, 4)
        s2 = nb.lookup(keyed[6:12], DES_S2, 4)
        sboxed = s1 + s2
        perm = [sboxed[(3 * i + 2) % 8] for i in range(8)]
        out_bits.extend(nb.xor_word(perm, left[8 * p:8 * p + 8]))
    nb.outputs(out_bits, "o")
    return nb.build()


# ----------------------------------------------------------------------
# OpenSPARC T1 block-flavored circuits
# ----------------------------------------------------------------------
def sparc_spu_like(scale: int = 1) -> Circuit:
    """Stream processing unit slice: rotate + popcount + parity, with
    the real popcount-LSB-equals-parity invariant as the checker."""
    w = 12 * scale
    nb = NetBuilder("sparc_spu")
    x = nb.inputs("x", w)
    rot = nb.inputs("rot", 2)
    y = nb.inputs("y", w)
    rotated = list(x)
    for k, sel in enumerate(rot):
        shift = 1 << k
        moved = rotated[-shift:] + rotated[:-shift]
        rotated = nb.mux_word(sel, moved, rotated)
    mixed = nb.xor_word(rotated, y)

    def popcount(bits: List[str]) -> List[str]:
        if len(bits) == 1:
            return [bits[0]]
        half = len(bits) // 2
        a = popcount(bits[:half])
        b = popcount(bits[half:])
        width = max(len(a), len(b)) + 1
        a = a + [nb.ZERO] * (width - len(a))
        b = b + [nb.ZERO] * (width - len(b))
        total, _ = nb.adder(a, b)
        return total

    count = popcount(mixed)
    parity = nb.reduce_xor(mixed)
    # Checkers: dedicated mini-popcounts over two disjoint 5-bit slices;
    # each LSB is that slice's parity (narrow so the undetectability
    # proofs stay cheap, disjoint so the clusters stay apart).
    err_a = nb.xor_(popcount(mixed[:5])[0], nb.reduce_xor(mixed[:5]))
    err_b = nb.xor_(
        popcount(mixed[6:11])[0], nb.reduce_xor(mixed[6:11])
    )
    guarded = (nb.guard_word(err_a, mixed[:5])
               + [mixed[5]]
               + nb.guard_word(err_b, mixed[6:11])
               + mixed[11:])
    nb.outputs(guarded, "m")
    nb.outputs(count, "cnt")
    nb.output(parity, "par")
    return nb.build()


def sparc_ffu_like(scale: int = 1) -> Circuit:
    """FP frontend slice: operand bypass + byte merge + checked adder."""
    w = 8 * scale
    nb = NetBuilder("sparc_ffu")
    rs1 = nb.inputs("rs1", w)
    rs2 = nb.inputs("rs2", w)
    fwd = nb.inputs("fwd", w)
    bypass1 = nb.input("byp1")
    bypass2 = nb.input("byp2")
    bmask = nb.inputs("bm", max(1, w // 4))
    op_a = nb.mux_word(bypass1, fwd, rs1)
    op_b = nb.mux_word(bypass2, fwd, rs2)
    merged: List[str] = []
    for i in range(w):
        sel = bmask[min(i // 4, len(bmask) - 1)]
        merged.append(nb.mux(sel, op_a[i], op_b[i]))
    logical = nb.xor_word(op_a, op_b)
    summed, carries = nb.adder_with_carries(op_a, op_b)
    err_lo = nb.adder_parity_check(op_a, op_b, summed, carries, width=4)
    err_hi = nb.adder_parity_check(
        op_a, op_b, summed, carries, width=4, lo=w // 2,
    )
    checked = (nb.guard_word(err_lo, summed[:w // 2 - 1])
               + [summed[w // 2 - 1]]
               + nb.guard_word(err_hi, summed[w // 2:]))
    use_sum = nb.input("use_sum")
    result = nb.mux_word(use_sum, checked, merged)
    nb.outputs(result, "o")
    nb.outputs(logical, "lg")
    nb.output(carries[-1], "cout")
    return nb.build()


def sparc_exu_like(scale: int = 1) -> Circuit:
    """Execution unit: ALU + barrel shifter + condition codes, with a
    parity-predicted adder."""
    w = 8 * scale
    nb = NetBuilder("sparc_exu")
    a = nb.inputs("a", w)
    b = nb.inputs("b", w)
    op = nb.inputs("op", 2)
    shamt = nb.inputs("sh", 3)
    do_shift = nb.input("do_shift")
    shift_dir = nb.input("dir")
    add_s, add_carries = nb.adder_with_carries(a, b)
    add_c = add_carries[-1]
    sub_s, sub_c = nb.subtractor(a, b)
    logic_and = nb.and_word(a, b)
    logic_xor = nb.xor_word(a, b)
    sel = nb.decoder(op)
    alu = nb.onehot_mux_word(sel, [add_s, sub_s, logic_and, logic_xor])
    shl = nb.shift_left(a, shamt)
    shr = nb.shift_right(a, shamt)
    shifted = nb.mux_word(shift_dir, shl, shr)
    result = nb.mux_word(do_shift, shifted, alu)
    err_lo = nb.adder_parity_check(a, b, add_s, add_carries, width=4)
    _, sub_carries = nb.adder_with_carries(a, nb.not_word(b), cin=nb.ONE)
    err_hi = nb.adder_parity_check(
        a, nb.not_word(b), sub_s, sub_carries, cin=nb.ONE,
        width=4, lo=w // 2 + 1,
    )
    k = w // 2
    result = (nb.guard_word(err_lo, result[:k])
              + [result[k]]
              + nb.guard_word(err_hi, result[k + 1:]))
    zero = nb.not_(nb.reduce_or(result))
    neg = result[-1]
    ovf = nb.and_(
        nb.xnor_(a[-1], b[-1]), nb.xor_(a[-1], add_s[-1])
    )
    nb.outputs(result, "r")
    nb.output(zero, "cc_z")
    nb.output(neg, "cc_n")
    nb.output(ovf, "cc_v")
    nb.output(nb.mux(sel[1], sub_c, add_c), "cc_c")
    return nb.build()


def sparc_ifu_like(scale: int = 1) -> Circuit:
    """Instruction fetch slice: PC+4 (parity-checked), branch target,
    taken logic, way select."""
    w = 10 * scale
    nb = NetBuilder("sparc_ifu")
    pc = nb.inputs("pc", w)
    offset = nb.inputs("off", w)
    rs = nb.inputs("rs", w)
    br_type = nb.inputs("bt", 2)
    cc_z = nb.input("cc_z")
    cc_n = nb.input("cc_n")
    four = nb.constant_word(4, w)
    seq, seq_carries = nb.adder_with_carries(pc, four)
    target, _ = nb.adder(pc, offset)
    sel = nb.decoder(br_type)  # never / eq / lt / always
    taken = nb.reduce_or([
        nb.and_(sel[1], cc_z),
        nb.and_(sel[2], cc_n),
        sel[3],
    ])
    use_reg = nb.input("use_reg")
    tgt = nb.mux_word(use_reg, rs, target)
    next_pc = nb.mux_word(taken, tgt, seq)
    err_seq = nb.adder_parity_check(pc, four, seq, seq_carries, width=4)
    _, tgt_carries = nb.adder_with_carries(pc, offset)
    err_tgt = nb.adder_parity_check(
        pc, offset, target, tgt_carries, width=4, lo=w // 2 + 1,
    )
    k = w // 2
    next_pc = (nb.guard_word(err_seq, next_pc[:k])
               + [next_pc[k]]
               + nb.guard_word(err_tgt, next_pc[k + 1:]))
    tag0 = nb.inputs("tag0", w // 2)
    tag1 = nb.inputs("tag1", w // 2)
    hit0 = nb.equals(tag0, next_pc[w // 2:])
    hit1 = nb.equals(tag1, next_pc[w // 2:])
    nb.outputs(next_pc, "npc")
    nb.output(hit0, "hit0")
    nb.output(nb.and_(hit1, nb.not_(hit0)), "hit1")
    nb.output(taken, "taken")
    return nb.build()


def sparc_tlu_like(scale: int = 1) -> Circuit:
    """Trap logic: masked priority resolution (one-hot checked) +
    vector generation."""
    n_traps = 8 * scale
    nb = NetBuilder("sparc_tlu")
    reqs = nb.inputs("trap", n_traps)
    mask = nb.inputs("mask", n_traps)
    enable = nb.input("en")
    eff = [nb.and_(r, nb.not_(m)) for r, m in zip(reqs, mask)]
    eff = [nb.and_(e, enable) for e in eff]
    grants = nb.priority_encoder(eff)
    half = n_traps // 2
    err_lo = nb.onehot_violation(grants[:half + 1])
    err_hi = nb.onehot_violation(grants[half:])
    vecs = [
        nb.constant_word(0x10 + 7 * i, 8) for i in range(n_traps)
    ]
    raw_vec = nb.onehot_mux_word(grants, vecs)
    vector = (nb.guard_word(err_lo, raw_vec[:4])
              + nb.guard_word(err_hi, raw_vec[4:]))
    any_trap = nb.reduce_or(grants)
    nb.outputs(grants, "g")
    nb.outputs(vector, "vec")
    nb.output(any_trap, "take")
    return nb.build()


def sparc_lsu_like(scale: int = 1) -> Circuit:
    """Load/store slice: alignment, byte enables, sign extension, with a
    shadow alignment shifter cross-checking the primary one."""
    w = 8 * scale
    nb = NetBuilder("sparc_lsu")
    addr = nb.inputs("adr", 4)
    size = nb.inputs("sz", 2)  # byte / half / word
    data = nb.inputs("d", w)
    signed = nb.input("sgn")
    sel = nb.decoder(addr[:2])
    size_sel = nb.decoder(size)
    be: List[str] = []
    for i in range(4):
        b = nb.and_(size_sel[0], sel[i])
        h = nb.and_(size_sel[1], sel[i & 2])
        wd = nb.or_(size_sel[2], size_sel[3])
        be.append(nb.reduce_or([b, h, wd]))
    aligned = nb.shift_right(data, addr[:2])
    # Shadow shifter with reversed stage order (same function).
    shadow = list(data)
    for k in (1, 0):
        shift = 1 << k
        moved = list(shadow[shift:]) + [nb.ZERO] * min(shift, len(shadow))
        shadow = nb.mux_word(addr[k], moved[:len(shadow)], shadow)
    mismatch = nb.xor_word(aligned, shadow)
    err_lo = nb.reduce_or(mismatch[:w // 2])
    err_hi = nb.reduce_or(mismatch[w // 2:])
    aligned = (nb.guard_word(err_lo, aligned[:w // 2 - 1])
               + [aligned[w // 2 - 1]]
               + nb.guard_word(err_hi, aligned[w // 2:]))
    sign_bit = nb.and_(signed, aligned[w // 2 - 1])
    extended = list(aligned[:w // 2]) + [
        nb.mux(size_sel[0], sign_bit, bit)
        for bit in aligned[w // 2:]
    ]
    misaligned = nb.or_(
        nb.and_(size_sel[1], addr[0]),
        nb.and_(wd, nb.reduce_or(addr[:2])),
    )
    nb.outputs(extended, "ld")
    nb.outputs(be, "be")
    nb.output(misaligned, "trap_ma")
    return nb.build()


def sparc_fpu_like(scale: int = 1) -> Circuit:
    """FP adder slice: exponent compare, mantissa align, parity-checked
    add, normalize."""
    em = 4  # exponent bits
    wm = 5 * scale  # mantissa bits
    nb = NetBuilder("sparc_fpu")
    ea = nb.inputs("ea", em)
    eb = nb.inputs("eb", em)
    ma = nb.inputs("ma", wm)
    mb = nb.inputs("mb", wm)
    sub = nb.input("sub")
    diff, _ = nb.subtractor(ea, eb)
    a_smaller = nb.less_than(ea, eb)
    ndiff, _ = nb.subtractor(eb, ea)
    amt = nb.mux_word(a_smaller, ndiff[:3], diff[:3])
    small = nb.mux_word(a_smaller, ma, mb)
    big = nb.mux_word(a_smaller, mb, ma)
    aligned = nb.shift_right(small, amt)
    op_b = nb.mux_word(sub, nb.not_word(aligned), aligned)
    total, carries = nb.adder_with_carries(big, op_b, cin=sub)
    err_add = nb.adder_parity_check(
        big, op_b, total, carries, cin=sub, width=4,
    )
    # Exponent-order consistency: a < b and a == b are exclusive.
    err_cmp = nb.and_(a_smaller, nb.equals(ea, eb))
    k = wm // 2
    total = (nb.guard_word(err_add, total[:k])
             + nb.guard_word(err_cmp, total[k:]))
    lead = nb.priority_encoder(list(reversed(total)))
    enc: List[str] = []
    for bit in range(3):
        terms = [
            lead[i] for i in range(len(lead)) if (i >> bit) & 1
        ]
        enc.append(nb.reduce_or(terms) if terms else nb.ZERO)
    normalized = nb.shift_left(total, enc)
    exp_big = nb.mux_word(a_smaller, eb, ea)
    nb.outputs(normalized, "m")
    nb.outputs(exp_big, "e")
    nb.output(carries[-1], "cout")
    nb.output(nb.reduce_or(total), "nonzero")
    return nb.build()


# ----------------------------------------------------------------------
BENCHMARKS: Dict[str, Callable[[int], Circuit]] = {
    "tv80": tv80_like,
    "systemcaes": systemcaes_like,
    "aes_core": aes_core_like,
    "wb_conmax": wb_conmax_like,
    "des_perf": des_perf_like,
    "sparc_spu": sparc_spu_like,
    "sparc_ffu": sparc_ffu_like,
    "sparc_exu": sparc_exu_like,
    "sparc_ifu": sparc_ifu_like,
    "sparc_tlu": sparc_tlu_like,
    "sparc_lsu": sparc_lsu_like,
    "sparc_fpu": sparc_fpu_like,
}


def build_benchmark(
    name: str,
    library: Library,
    scale: int = 1,
    optimize: bool = True,
) -> Circuit:
    """Generate a benchmark netlist, mapped and optimized on *library*."""
    try:
        generator = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None
    raw = generator(scale)
    if not optimize:
        return raw
    mapped = synthesize(raw, library, objective="area")
    mapped.name = name
    return mapped
