"""A structural netlist builder with word-level helpers.

Emits gates from the base cells (INV/AND/OR/XOR/MUX/NAND/NOR) of the
OSU-like library; the benchmark driver then runs ``synthesize()`` over
the result so the "original design" is a properly mapped, optimized
netlist, as the paper assumes ("C_all was already optimized by one or
more iterations of a standard IC design flow").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.netlist.circuit import CONST0, CONST1, Circuit


class NetBuilder:
    """Builds a :class:`Circuit` through boolean / word-level operations.

    All methods take and return net names.  Two-input operations emit one
    gate each; word helpers compose them.  Constants are the reserved
    nets ``CONST0``/``CONST1``.
    """

    ZERO = CONST0
    ONE = CONST1

    def __init__(self, name: str):
        self.circuit = Circuit(name)
        self._uid = 0
        self._outputs: List[str] = []

    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        return self.circuit.add_input(name)

    def inputs(self, prefix: str, n: int) -> List[str]:
        return [self.input(f"{prefix}{i}") for i in range(n)]

    def output(self, net: str, name: Optional[str] = None) -> str:
        """Mark *net* as a primary output (buffering pass-throughs)."""
        if name is not None and name != net:
            net = self._gate("BUFX2", {"A": net}, out=name)
        elif net in (CONST0, CONST1) or net in self.circuit.inputs:
            net = self._gate("BUFX2", {"A": net})
        if net in self._outputs:
            net = self._gate("BUFX2", {"A": net})
        self._outputs.append(net)
        return net

    def outputs(self, nets: Sequence[str], prefix: str) -> List[str]:
        return [
            self.output(net, f"{prefix}{i}") for i, net in enumerate(nets)
        ]

    def build(self) -> Circuit:
        self.circuit.set_outputs(self._outputs)
        self.circuit.validate()
        return self.circuit

    # ------------------------------------------------------------------
    def _gate(self, cell: str, pins: dict, out: Optional[str] = None) -> str:
        self._uid += 1
        out = out or f"n{self._uid}"
        self.circuit.add_gate(f"b{self._uid}", cell, pins, out)
        return out

    def not_(self, a: str) -> str:
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        return self._gate("INVX1", {"A": a})

    def and_(self, a: str, b: str) -> str:
        if CONST0 in (a, b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        return self._gate("AND2X1", {"A": a, "B": b})

    def or_(self, a: str, b: str) -> str:
        if CONST1 in (a, b):
            return CONST1
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        return self._gate("OR2X1", {"A": a, "B": b})

    def xor_(self, a: str, b: str) -> str:
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == CONST1:
            return self.not_(b)
        if b == CONST1:
            return self.not_(a)
        return self._gate("XOR2X1", {"A": a, "B": b})

    def nand_(self, a: str, b: str) -> str:
        return self.not_(self.and_(a, b))

    def nor_(self, a: str, b: str) -> str:
        return self.not_(self.or_(a, b))

    def xnor_(self, a: str, b: str) -> str:
        return self.not_(self.xor_(a, b))

    def mux(self, sel: str, when1: str, when0: str) -> str:
        """``sel ? when1 : when0`` (constant data folds to plain gates)."""
        if when1 == when0:
            return when1
        if sel == CONST0:
            return when0
        if sel == CONST1:
            return when1
        if when1 == CONST1 and when0 == CONST0:
            return sel
        if when1 == CONST0 and when0 == CONST1:
            return self.not_(sel)
        if when1 == CONST0:
            return self.and_(self.not_(sel), when0)
        if when1 == CONST1:
            return self.or_(sel, when0)
        if when0 == CONST0:
            return self.and_(sel, when1)
        if when0 == CONST1:
            return self.or_(self.not_(sel), when1)
        return self._gate("MUX2X1", {"A": when0, "B": when1, "S": sel})

    # ------------------------------------------------------------------
    # Word-level helpers (little-endian bit lists)
    # ------------------------------------------------------------------
    def and_word(self, a: Sequence[str], b: Sequence[str]) -> List[str]:
        return [self.and_(x, y) for x, y in zip(a, b)]

    def or_word(self, a: Sequence[str], b: Sequence[str]) -> List[str]:
        return [self.or_(x, y) for x, y in zip(a, b)]

    def xor_word(self, a: Sequence[str], b: Sequence[str]) -> List[str]:
        return [self.xor_(x, y) for x, y in zip(a, b)]

    def not_word(self, a: Sequence[str]) -> List[str]:
        return [self.not_(x) for x in a]

    def mux_word(
        self, sel: str, when1: Sequence[str], when0: Sequence[str]
    ) -> List[str]:
        return [self.mux(sel, x, y) for x, y in zip(when1, when0)]

    def constant_word(self, value: int, bits: int) -> List[str]:
        return [
            CONST1 if (value >> i) & 1 else CONST0 for i in range(bits)
        ]

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        s1 = self.xor_(a, b)
        total = self.xor_(s1, cin)
        carry = self.or_(self.and_(a, b), self.and_(s1, cin))
        return total, carry

    def adder(
        self, a: Sequence[str], b: Sequence[str], cin: str = CONST0
    ) -> Tuple[List[str], str]:
        """Ripple-carry adder; returns (sum bits, carry out)."""
        total, carries = self.adder_with_carries(a, b, cin)
        return total, carries[-1]

    def adder_with_carries(
        self, a: Sequence[str], b: Sequence[str], cin: str = CONST0
    ) -> Tuple[List[str], List[str]]:
        """Ripple-carry adder exposing every carry (for parity predict)."""
        total: List[str] = []
        carries: List[str] = []
        carry = cin
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            total.append(s)
            carries.append(carry)
        return total, carries

    def subtractor(
        self, a: Sequence[str], b: Sequence[str]
    ) -> Tuple[List[str], str]:
        """a - b in two's complement; returns (difference, borrow-free)."""
        return self.adder(a, self.not_word(b), cin=CONST1)

    def equals(self, a: Sequence[str], b: Sequence[str]) -> str:
        bits = [self.xnor_(x, y) for x, y in zip(a, b)]
        return self.reduce_and(bits)

    def less_than(self, a: Sequence[str], b: Sequence[str]) -> str:
        """Unsigned a < b."""
        lt = CONST0
        for x, y in zip(a, b):  # LSB to MSB; MSB decision dominates
            bit_lt = self.and_(self.not_(x), y)
            bit_eq = self.xnor_(x, y)
            lt = self.or_(bit_lt, self.and_(bit_eq, lt))
        return lt

    def reduce_and(self, bits: Sequence[str]) -> str:
        return self._reduce(self.and_, bits, CONST1)

    def reduce_or(self, bits: Sequence[str]) -> str:
        return self._reduce(self.or_, bits, CONST0)

    def reduce_xor(self, bits: Sequence[str]) -> str:
        return self._reduce(self.xor_, bits, CONST0)

    def _reduce(self, op, bits: Sequence[str], empty: str) -> str:
        items = list(bits)
        if not items:
            return empty
        while len(items) > 1:  # balanced tree
            nxt = [
                op(items[i], items[i + 1])
                for i in range(0, len(items) - 1, 2)
            ]
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def decoder(self, sel: Sequence[str]) -> List[str]:
        """n-bit select -> 2^n one-hot lines."""
        lines = [CONST1]
        for s in sel:
            ns = self.not_(s)
            lines = [self.and_(line, ns) for line in lines] + [
                self.and_(line, s) for line in lines
            ]
        return lines

    def priority_encoder(self, requests: Sequence[str]) -> List[str]:
        """One-hot grant to the lowest-index asserted request."""
        grants: List[str] = []
        none_before = CONST1
        for req in requests:
            grants.append(self.and_(req, none_before))
            none_before = self.and_(none_before, self.not_(req))
        return grants

    def onehot_mux_word(
        self, selects: Sequence[str], words: Sequence[Sequence[str]]
    ) -> List[str]:
        """OR of AND-gated words under one-hot selects."""
        width = len(words[0])
        out: List[str] = []
        for bit in range(width):
            terms = [
                self.and_(sel, word[bit])
                for sel, word in zip(selects, words)
            ]
            out.append(self.reduce_or(terms))
        return out

    def shift_left(
        self, word: Sequence[str], amount: Sequence[str]
    ) -> List[str]:
        """Barrel shifter: logical left shift by a bounded amount."""
        cur = list(word)
        for k, sel in enumerate(amount):
            shift = 1 << k
            shifted = [CONST0] * min(shift, len(cur)) + list(cur[:-shift])
            shifted = shifted[:len(cur)]
            cur = self.mux_word(sel, shifted, cur)
        return cur

    def shift_right(
        self, word: Sequence[str], amount: Sequence[str]
    ) -> List[str]:
        cur = list(word)
        for k, sel in enumerate(amount):
            shift = 1 << k
            shifted = list(cur[shift:]) + [CONST0] * min(shift, len(cur))
            shifted = shifted[:len(cur)]
            cur = self.mux_word(sel, shifted, cur)
        return cur

    # ------------------------------------------------------------------
    # Checker / error-handling structures (sources of block-level
    # undetectable faults, as in real designs with parity prediction)
    # ------------------------------------------------------------------
    def linear_parity(self, bits: Sequence[str]) -> str:
        """XOR fold in linear order (structurally unlike the balanced
        tree of :meth:`reduce_xor`, so duplicate parities don't merge)."""
        acc = CONST0
        for bit in bits:
            acc = self.xor_(acc, bit)
        return acc

    def adder_parity_check(
        self,
        a: Sequence[str],
        b: Sequence[str],
        total: Sequence[str],
        carries: Sequence[str],
        cin: str = CONST0,
        width: int = 5,
        lo: int = 0,
    ) -> str:
        """Adder parity predictor: s_i = a_i ^ b_i ^ c_{i-1}, so
        parity(s) ^ parity(a) ^ parity(b) ^ parity(c_in-vector) == 0 over
        any low slice of the adder.  The returned error signal is
        constant 0 in fault-free operation but not structurally provable
        so, exactly like real parity prediction logic.

        The check covers *width* bits starting at bit *lo* (byte/nibble
        parity, as real datapaths do): wide XOR identities are also
        hostile to CDCL reasoning, so narrow slices keep undetectability
        proofs cheap while preserving the redundancy structure.  Distinct
        slices give *independent* checkers whose error-handling cones form
        separate undetectable-fault clusters.
        """
        hi = min(lo + width, len(total))
        lo = max(0, min(lo, hi - 2))
        cin_vec = ([cin] + list(carries[:-1]))[lo:hi]
        predicted = self.xor_(
            self.xor_(
                self.linear_parity(a[lo:hi]), self.linear_parity(b[lo:hi])
            ),
            self.linear_parity(cin_vec),
        )
        actual = self.reduce_xor(total[lo:hi])
        return self.xor_(actual, predicted)

    def onehot_violation(self, lines: Sequence[str]) -> str:
        """Error signal: more than one of *lines* asserted.

        Fault-free priority-encoder grants are one-hot, so this is
        constant 0 in operation; pairs whose combined support is small
        enough to be proven constant are optimized away by synthesis,
        the remaining ones form the surviving checker."""
        terms = [
            self.and_(lines[i], lines[j])
            for i in range(len(lines))
            for j in range(i + 1, len(lines))
        ]
        return self.reduce_or(terms)

    def guard_word(
        self, err: str, word: Sequence[str], salt: int = 2
    ) -> List[str]:
        """Error-handling output stage: when *err* rises, switch the
        word to a dedicated safe pattern.  Because *err* never rises in
        the fault-free circuit, the fallback cone is unobservable — the
        realistic source of clustered undetectable faults the paper
        studies."""
        w = len(word)
        fallback = [
            self.xnor_(word[i], word[(i + salt) % w]) for i in range(w)
        ]
        return self.mux_word(err, fallback, word)

    def lookup(self, addr: Sequence[str], table: Sequence[int],
               out_bits: int) -> List[str]:
        """ROM lookup: mux tree over *table* entries (LSB-first address)."""
        if len(table) != 1 << len(addr):
            raise ValueError("table size must be 2**len(addr)")
        words = [self.constant_word(v, out_bits) for v in table]
        for sel in addr:
            words = [
                self.mux_word(sel, words[i + 1], words[i])
                for i in range(0, len(words), 2)
            ]
        return words[0]
