"""Benchmark circuit generators.

The paper evaluates on OpenCores circuits and OpenSPARC T1 logic blocks.
Neither RTL base is available offline, so this package generates
gate-level combinational blocks of the same *flavor* — crypto S-box
arrays, ALU/shifter datapaths, crossbar arbiters, priority/trap logic,
load-store alignment, floating-point slices — at Python-ATPG-tractable
sizes (see DESIGN.md for the substitution rationale).  All generators
are deterministic given their parameters.
"""

from repro.bench.builder import NetBuilder
from repro.bench.circuits import BENCHMARKS, build_benchmark

__all__ = ["NetBuilder", "BENCHMARKS", "build_benchmark"]
