"""Chaos fault-injection harness.

Drives the engine's instrumented seams (:mod:`repro.utils.seams`) with
deterministic, seeded failure patterns, so tests and the CI chaos job
can assert the *safety invariants* of every degradation path:

* an injected SAT abort must surface as an ABORTED verdict — never as a
  silent undetectability claim (the chaos run's undetectable set is a
  subset of the clean run's);
* a corrupted good-value cache entry must be caught by the integrity
  checksum and recomputed — results stay bit-identical to a clean run,
  with only ``EngineStats.cache_integrity_failures`` recording the
  repair;
* an exception raised mid-analysis must propagate (no half-analyzed
  state is ever returned) and, under the runner, become an explicit
  task failure in the journal.

Worker death is exercised end-to-end by the orchestrator's ``--kill-at``
SIGKILL injection plus resume (see ``tests/test_chaos.py`` and the
``orchestrator-crash-resume`` CI job) rather than through a seam.

Configuration comes from a :class:`ChaosConfig` — programmatically or
from the ``REPRO_CHAOS`` environment variable (``key=value`` pairs,
comma-separated), e.g.::

    REPRO_CHAOS="seed=7,corrupt_good_cache_every=5" pytest -q

All injection decisions are derived from the config's seed and
per-seam call counters, never from wall clock or global RNG state, so a
chaos run is exactly reproducible.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Mapping, Optional

from repro.netlist.simulator import set_cache_integrity
from repro.utils import seams


class ChaosError(RuntimeError):
    """The injected failure raised by the ``flow.analyze`` seam."""


@dataclass(frozen=True)
class ChaosConfig:
    """What to inject, and deterministically when.

    * ``seed`` — seeds the private RNG behind ``sat_abort_rate``;
    * ``sat_abort_rate`` — probability that any given per-fault SAT
      decision is forced to abort;
    * ``sat_abort_calls`` — explicit 0-based decide-call indices to
      abort (unioned with the rate; used by property tests to exercise
      arbitrary abort patterns);
    * ``corrupt_good_cache_every`` — corrupt every Nth good-value cache
      hit before it is served (0 disables).  Installing a corrupting
      injector force-enables cache integrity checking so the corruption
      is caught rather than silently served;
    * ``corrupt_shm_every`` — flip a bit in every Nth shared-memory
      good-value block after the parent checksums it and before the
      process workers attach (0 disables).  The workers' CRC
      verification must catch it: the parent rebuilds the block once
      from its pristine arrays (results stay bit-identical), and a
      persistently rotten block surfaces as an explicit
      :class:`~repro.faults.psim.SharedMemoryCorruption`;
    * ``fail_analyze_at`` — raise :class:`ChaosError` on the Nth
      ``flow.analyze`` call (1-based; 0 disables);
    * ``kill_atpg_shard`` — SIGKILL the worker process on the Nth
      ``atpg.shard`` firing (1-based; 0 disables), modelling a SAT
      worker dying mid-shard.  ``run_atpg`` must rerun the phase
      serially with the coded ``MC-FALLBACK-ATPG`` warning and an
      unchanged verdict partition.  The kill fires at most once per
      injector: the serial rerun must not be re-killed (and the serial
      phase never fires the seam anyway — it runs in the parent);
    * ``hang_shard_at`` — sleep ``hang_shard_s`` seconds on the Nth
      ``psim.shard_start`` / ``atpg.shard_start`` firing (1-based; 0
      disables), modelling a hung worker.  Under an active shard
      deadline the supervisor must reap the worker and re-run the lost
      shards (``MC-WORKER-HUNG`` / ``MC-SHARD-RETRY``); without one the
      dispatch blocks for the whole sleep — exactly the failure mode
      supervision exists for.  Like ``kill_atpg_shard`` the counter is
      per-process under fork-started pools, so rebuilt workers hang
      again on their own Nth shard; tests that want a one-shot hang
      register a flag-file handler directly;
    * ``slow_shard_every`` — sleep ``slow_shard_ms`` milliseconds on
      every Nth shard start (0 disables), modelling a slow-but-alive
      worker: its heartbeats keep advancing, so the supervisor must
      *not* reap it and results stay bit-identical;
    * ``torn_board_write_at`` — scribble a garbage value into the
      shard's own heartbeat word on the Nth shard start (1-based; 0
      disables), modelling a torn/partial shared-memory write.  The
      heartbeat row is advisory and outside the CRC-covered payload, so
      garbage beats may at most delay hang detection — verdicts and
      detect words must stay bit-identical.
    """

    seed: int = 0
    sat_abort_rate: float = 0.0
    sat_abort_calls: FrozenSet[int] = frozenset()
    corrupt_good_cache_every: int = 0
    corrupt_shm_every: int = 0
    fail_analyze_at: int = 0
    kill_atpg_shard: int = 0
    hang_shard_at: int = 0
    hang_shard_s: float = 3600.0
    slow_shard_every: int = 0
    slow_shard_ms: float = 50.0
    torn_board_write_at: int = 0

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["ChaosConfig"]:
        """Parse ``REPRO_CHAOS``; None when unset/empty.

        Format: comma-separated ``key=value`` pairs over the field
        names; ``sat_abort_calls`` takes colon-separated indices
        (``sat_abort_calls=0:3:7``).  Unknown keys are an error — a
        typo must not silently disable the intended chaos.
        """
        if environ is None:
            import os

            environ = os.environ
        spec = environ.get("REPRO_CHAOS", "").strip()
        if not spec:
            return None
        kwargs: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"REPRO_CHAOS: expected key=value, got {item!r}")
            key = key.strip()
            value = value.strip()
            if key in ("sat_abort_rate", "hang_shard_s", "slow_shard_ms"):
                kwargs[key] = float(value)
            elif key == "sat_abort_calls":
                kwargs[key] = frozenset(
                    int(tok) for tok in value.split(":") if tok
                )
            elif key in (
                "seed", "corrupt_good_cache_every", "corrupt_shm_every",
                "fail_analyze_at", "kill_atpg_shard", "hang_shard_at",
                "slow_shard_every", "torn_board_write_at",
            ):
                kwargs[key] = int(value)
            else:
                raise ValueError(f"REPRO_CHAOS: unknown key {key!r}")
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class ChaosCounters:
    """What the injector actually did (assertable by tests)."""

    decide_calls: int = 0
    aborts_injected: int = 0
    cache_hits_seen: int = 0
    corruptions_injected: int = 0
    shm_blocks_seen: int = 0
    shm_corruptions_injected: int = 0
    analyze_calls: int = 0
    failures_raised: int = 0
    # atpg.shard fires inside worker processes: with fork-started pools
    # these two count within each worker's inherited copy of the
    # injector, so the parent's instance stays at 0 — tests assert the
    # observable contract (MC-FALLBACK-ATPG + unchanged verdicts)
    # instead.
    atpg_shards_seen: int = 0
    workers_killed: int = 0
    # *.shard_start also fires inside the workers: same per-process
    # caveat as above — parent-side assertions go through the engine's
    # coded warnings and supervision counters instead.
    shard_starts_seen: int = 0
    hangs_injected: int = 0
    slowdowns_injected: int = 0
    torn_writes_injected: int = 0


class ChaosInjector:
    """Registers seam handlers implementing a :class:`ChaosConfig`.

    Use as a context manager (see :func:`chaos`) or call
    :meth:`install` / :meth:`uninstall` explicitly.  Not re-entrant:
    one injector owns the process-global seam registry at a time.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.counters = ChaosCounters()
        self._rng = random.Random(config.seed)
        self._prev_integrity: Optional[bool] = None
        self._installed = False

    # -- seam handlers --------------------------------------------------
    def _on_decide(self, fault: object = None, **_: object) -> Optional[str]:
        cfg = self.config
        idx = self.counters.decide_calls
        self.counters.decide_calls += 1
        abort = idx in cfg.sat_abort_calls
        if not abort and cfg.sat_abort_rate > 0.0:
            abort = self._rng.random() < cfg.sat_abort_rate
        if abort:
            self.counters.aborts_injected += 1
            return "abort"
        return None

    def _on_cache_hit(
        self, plan: object = None, batch_key: object = None, **_: object
    ) -> None:
        cfg = self.config
        self.counters.cache_hits_seen += 1
        if not cfg.corrupt_good_cache_every:
            return
        if self.counters.cache_hits_seen % cfg.corrupt_good_cache_every:
            return
        cached = plan.good_cache.get(batch_key)  # type: ignore[attr-defined]
        if not cached or len(cached[0]) == 0:
            return
        # Replace the entry with a bit-flipped *copy*: references handed
        # out on earlier hits must stay pristine (the corruption models
        # rot inside the cache, not retroactive damage to past results).
        first = cached[0]
        if hasattr(first, "dtype"):
            # Wide entry: tuple of (n_nets, words) uint64 arrays.
            rotten = tuple(frame.copy() for frame in cached)
            rotten[0][len(rotten[0]) // 2, rotten[0].shape[1] // 2] ^= 1
        else:
            # Event entry: tuple of per-net Python-int lists.
            rotten = tuple(list(vec) for vec in cached)
            rotten[0][len(rotten[0]) // 2] ^= 1
        plan.good_cache[batch_key] = rotten  # type: ignore[attr-defined]
        self.counters.corruptions_injected += 1

    def _on_shm_block(
        self, block: object = None, view: object = None, **_: object
    ) -> None:
        cfg = self.config
        self.counters.shm_blocks_seen += 1
        if not cfg.corrupt_shm_every:
            return
        if self.counters.shm_blocks_seen % cfg.corrupt_shm_every:
            return
        # The CRC is already recorded on the block, so this models rot
        # between the parent's write and a worker's read: every worker
        # must detect the mismatch on attach.
        view[view.shape[0] // 2, view.shape[1] // 2] ^= 1  # type: ignore[index]
        self.counters.shm_corruptions_injected += 1

    def _on_atpg_shard(
        self, shard: object = None, pid: object = None, **_: object
    ) -> None:
        cfg = self.config
        self.counters.atpg_shards_seen += 1
        if not cfg.kill_atpg_shard:
            return
        if self.counters.atpg_shards_seen != cfg.kill_atpg_shard:
            return
        # Running in the worker itself (fork-inherited handler): suicide
        # by SIGKILL models an OOM kill mid-shard.  The counter check is
        # per-process, i.e. each worker dies on its own Nth shard task.
        import os
        import signal

        self.counters.workers_killed += 1
        os.kill(os.getpid(), signal.SIGKILL)

    def _on_shard_start(
        self, shard: object = None, heartbeats: object = None, **_: object
    ) -> None:
        cfg = self.config
        self.counters.shard_starts_seen += 1
        idx = self.counters.shard_starts_seen
        if (
            cfg.torn_board_write_at
            and idx == cfg.torn_board_write_at
            and heartbeats is not None
        ):
            # Garbage into the shard's own heartbeat word: a torn write
            # can only make the supervisor *believe* in liveness (any
            # change counts as a beat), never corrupt a result — the
            # row sits outside the CRC-covered payload.
            heartbeats[shard] = 0xDEAD_BEEF_DEAD_BEEF  # type: ignore[index]
            self.counters.torn_writes_injected += 1
        if cfg.hang_shard_at and idx == cfg.hang_shard_at:
            self.counters.hangs_injected += 1
            time.sleep(cfg.hang_shard_s)
        elif cfg.slow_shard_every and idx % cfg.slow_shard_every == 0:
            self.counters.slowdowns_injected += 1
            time.sleep(cfg.slow_shard_ms / 1000.0)

    def _on_analyze(self, **_: object) -> None:
        cfg = self.config
        self.counters.analyze_calls += 1
        if cfg.fail_analyze_at and self.counters.analyze_calls == cfg.fail_analyze_at:
            self.counters.failures_raised += 1
            raise ChaosError(
                f"injected failure in analyze_design call "
                f"#{self.counters.analyze_calls}"
            )

    # -- lifecycle ------------------------------------------------------
    def install(self) -> "ChaosInjector":
        if self._installed:
            raise RuntimeError("chaos injector already installed")
        cfg = self.config
        if cfg.sat_abort_rate > 0.0 or cfg.sat_abort_calls:
            seams.register("atpg.decide", self._on_decide)
        if cfg.corrupt_good_cache_every:
            # Corrupting without verification would serve wrong values —
            # exactly the silent failure this harness exists to rule out.
            self._prev_integrity = set_cache_integrity(True)
            seams.register("fsim.good_cache_hit", self._on_cache_hit)
        if cfg.corrupt_shm_every:
            seams.register("fsim.shm_block", self._on_shm_block)
        if cfg.fail_analyze_at:
            seams.register("flow.analyze", self._on_analyze)
        if cfg.kill_atpg_shard:
            seams.register("atpg.shard", self._on_atpg_shard)
        if (cfg.hang_shard_at or cfg.slow_shard_every
                or cfg.torn_board_write_at):
            seams.register("psim.shard_start", self._on_shard_start)
            seams.register("atpg.shard_start", self._on_shard_start)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        seams.unregister("atpg.decide")
        seams.unregister("fsim.good_cache_hit")
        seams.unregister("fsim.shm_block")
        seams.unregister("flow.analyze")
        seams.unregister("atpg.shard")
        seams.unregister("psim.shard_start")
        seams.unregister("atpg.shard_start")
        if self._prev_integrity is not None:
            set_cache_integrity(self._prev_integrity)
            self._prev_integrity = None
        self._installed = False


@contextmanager
def chaos(config: ChaosConfig) -> Iterator[ChaosInjector]:
    """Install *config*'s injector for the duration of the block."""
    injector = ChaosInjector(config).install()
    try:
        yield injector
    finally:
        injector.uninstall()


def install_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[ChaosInjector]:
    """Install an injector from ``REPRO_CHAOS`` (None when unset).

    Used by the test suite's session fixture so the whole tier-1 suite
    can run under a fixed chaos pattern in CI; the caller owns the
    returned injector and should eventually :meth:`~ChaosInjector.
    uninstall` it.
    """
    config = ChaosConfig.from_env(environ)
    if config is None:
        return None
    return ChaosInjector(config).install()
