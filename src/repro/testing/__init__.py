"""Test-support harnesses (chaos fault injection).

Not imported by any production module — the engine only knows about the
neutral seam registry in :mod:`repro.utils.seams`; everything that
actually injects failures lives here and in the test suite.
"""

from repro.testing.chaos import (
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    chaos,
    install_from_env,
)

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "chaos",
    "install_from_env",
]
