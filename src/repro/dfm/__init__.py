"""DFM guideline engine.

The paper uses "19 guidelines in the *Via* category, 29 guidelines in the
*Metal* category, and 11 guidelines in the *Density* category" evaluated
by a commercial sign-off package.  We define parameterized geometric
guidelines of the same three families over our layout model, a checker
that reports violation sites, and the translation of those sites into
external logic faults (stuck-at + transition for likely opens, dominant
bridging pairs for likely shorts).

Cell-*internal* guideline flagging happens in :mod:`repro.library.defects`
(sites are enumerated per cell type); this package owns the external
(layout) side and the combined fault-set assembly.
"""

from repro.dfm.guidelines import (
    DENSITY,
    Guideline,
    METAL,
    VIA,
    all_guidelines,
)
from repro.dfm.checker import LayoutViolation, check_layout
from repro.dfm.translate import external_faults_from_violations, build_fault_set

__all__ = [
    "DENSITY",
    "Guideline",
    "METAL",
    "VIA",
    "all_guidelines",
    "LayoutViolation",
    "check_layout",
    "external_faults_from_violations",
    "build_fault_set",
]
