"""Parameterized DFM guideline definitions.

Each guideline is a geometric predicate over the layout with a *rule kind*
and thresholds.  The counts match the paper's setup: 19 Via, 29 Metal and
11 Density guidelines.  Thresholds are spread so that stricter guidelines
flag more sites — real decks behave the same way (recommended spacing and
redundancy levels beyond the mandatory design rules).

Rule kinds interpreted by :mod:`repro.dfm.checker`:

* ``isolated_via``   — a bend/stem via with at most ``t`` other vias within
  Chebyshev radius ``r`` (lonely vias are prone to partial voids) -> open.
* ``crowded_via``    — a via with at least ``t`` other vias within radius
  ``r`` (etch loading) -> open.
* ``via_near_metal`` — a via within distance 1 of another net's segment on
  the via's upper layer, with segment length at least ``t`` -> bridge.
* ``parallel_run``   — two same-layer segments of different nets on
  adjacent sub-tracks of the same channel with overlap >= ``t`` -> bridge.
* ``long_wire``      — a segment of length >= ``t`` (line-end / notch
  sensitivity accumulates with length) -> open.
* ``many_crossings`` — a segment crossed by >= ``t`` other-net segments of
  the orthogonal layer -> open (stress from crossing topology).
* ``density_low``    — a ``w`` x ``w`` window with metal density below
  ``lo``/100 (dishing risk) -> open on the window's nets.
* ``density_high``   — a window with density above ``hi``/100 (bridging
  risk) -> bridge between the window's closest net pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

VIA = "Via"
METAL = "Metal"
DENSITY = "Density"


@dataclass(frozen=True)
class Guideline:
    """One DFM guideline: id, category, rule kind and parameters."""

    gid: str
    category: str
    rule: str
    params: Dict[str, int]
    description: str


def all_guidelines() -> List[Guideline]:
    """The full deck: 19 Via + 29 Metal + 11 Density guidelines."""
    deck: List[Guideline] = []

    # ---- Via category (19) -------------------------------------------
    for k, (t, r) in enumerate(
        [(0, 4), (0, 5), (0, 6), (1, 6), (0, 7), (1, 7), (2, 7)], start=1
    ):
        deck.append(Guideline(
            f"VIA-{k:02d}", VIA, "isolated_via", {"t": t, "r": r},
            f"via with <= {t} neighbours within radius {r}",
        ))
    for k, (t, r) in enumerate(
        [(20, 2), (26, 2), (32, 2), (42, 3), (54, 3), (68, 3)], start=8
    ):
        deck.append(Guideline(
            f"VIA-{k:02d}", VIA, "crowded_via", {"t": t, "r": r},
            f"via with >= {t} neighbours within radius {r}",
        ))
    for k, t in enumerate([150, 130, 110, 92, 75, 60], start=14):
        deck.append(Guideline(
            f"VIA-{k:02d}", VIA, "via_near_metal", {"t": t},
            f"via adjacent to foreign metal of length >= {t}",
        ))

    # ---- Metal category (29) -----------------------------------------
    for k, t in enumerate(
        [96, 84, 74, 65, 57, 50, 44, 39, 35, 31, 28, 25, 22, 19, 17, 15],
        start=1,
    ):
        deck.append(Guideline(
            f"MET-{k:02d}", METAL, "parallel_run", {"t": t},
            f"adjacent-track parallel run >= {t}",
        ))
    for k, t in enumerate([130, 112, 96, 82, 69, 57, 46, 37], start=17):
        deck.append(Guideline(
            f"MET-{k:02d}", METAL, "long_wire", {"t": t},
            f"wire segment of length >= {t}",
        ))
    for k, t in enumerate([56, 46, 37, 29, 22], start=25):
        deck.append(Guideline(
            f"MET-{k:02d}", METAL, "many_crossings", {"t": t},
            f"segment crossed by >= {t} foreign wires",
        ))

    # ---- Density category (11) ---------------------------------------
    for k, (w, lo) in enumerate(
        [(8, 2), (8, 4), (12, 3), (12, 5), (16, 4), (16, 6)], start=1
    ):
        deck.append(Guideline(
            f"DEN-{k:02d}", DENSITY, "density_low", {"w": w, "lo": lo},
            f"{w}x{w} window with density < {lo}%",
        ))
    for k, (w, hi) in enumerate(
        [(8, 80), (8, 65), (12, 60), (12, 48), (16, 42)], start=7
    ):
        deck.append(Guideline(
            f"DEN-{k:02d}", DENSITY, "density_high", {"w": w, "hi": hi},
            f"{w}x{w} window with density > {hi}%",
        ))

    assert len([g for g in deck if g.category == VIA]) == 19
    assert len([g for g in deck if g.category == METAL]) == 29
    assert len([g for g in deck if g.category == DENSITY]) == 11
    return deck
