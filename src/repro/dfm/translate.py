"""Translation of DFM violations into gate-level logic faults.

Following Section II of the paper: "We obtain a set of faults F by
translating violations of DFM guidelines into likely shorts and opens
inside and outside cells.  We then translate the corresponding systematic
defects into related stuck-at faults, transition faults, bridging faults
and cell-aware faults modeled by UDFM."

External translation rules:

* likely **open** (via / long-wire / crossing-stress / low-density site)
  -> one stuck-at fault plus one transition fault at the site.  The
  polarity/direction is chosen deterministically per site (a floating
  node settles one way; which way depends on local topology we do not
  model, so a stable hash stands in for it).  Opens at a pin-access via
  affect only that branch; opens on the stem affect the whole net.
* likely **short** (parallel-run / via-near-metal / high-density site)
  -> two dominant bridging faults (each net as the victim).

Internal faults come from the per-cell defect enumeration
(:func:`repro.faults.sites.enumerate_internal_faults`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dfm.checker import BRIDGE, LayoutViolation, OPEN, check_layout
from repro.dfm.guidelines import Guideline
from repro.faults.model import (
    BridgingFault,
    Fault,
    StuckAtFault,
    TransitionFault,
    FALL,
    RISE,
)
from repro.faults.model import CellAwareFault
from repro.faults.sites import FaultSet, enumerate_internal_faults
from repro.library.osu018 import Library
from repro.netlist.circuit import CONST0, CONST1, Circuit
from repro.physical.layout import Layout
from repro.utils.observability import EngineStats


from repro.utils.hashing import stable_hash as _stable_hash


def external_faults_from_violations(
    circuit: Circuit, violations: Iterable[LayoutViolation]
) -> List[Fault]:
    """Translate layout violations into external faults on *circuit*."""
    faults: List[Fault] = []
    seen: set = set()
    for v in violations:
        if v.net in (CONST0, CONST1):
            continue
        x, y = v.location
        if v.kind == BRIDGE and v.other_net is not None:
            pair = "|".join(sorted((v.net, v.other_net)))
            site = f"{v.guideline}:{pair}:{x}:{y}"
        else:
            site = f"{v.guideline}:{v.net}:{x}:{y}"
        if site in seen:
            continue
        seen.add(site)
        if v.kind == OPEN:
            branch: Optional[Tuple[str, str]] = None
            if v.owner is not None and v.owner[1]:
                branch = v.owner
            sa_value = _stable_hash("pol:" + site) & 1
            slow_to = RISE if _stable_hash("dir:" + site) & 1 else FALL
            loc = f"{x}.{y}"
            faults.append(StuckAtFault(
                fault_id=f"sa{sa_value}:{v.net}@{loc}:{v.guideline}",
                guideline=v.guideline,
                net=v.net, value=sa_value, branch=branch,
            ))
            faults.append(TransitionFault(
                fault_id=f"tr-{slow_to}:{v.net}@{loc}:{v.guideline}",
                guideline=v.guideline,
                net=v.net, slow_to=slow_to, branch=branch,
            ))
        elif v.kind == BRIDGE:
            if v.other_net is None or v.other_net in (CONST0, CONST1):
                continue
            loc = f"{x}.{y}"
            # Dominant bridge: the stronger driver wins; which net
            # dominates depends on drive strengths we approximate with a
            # stable per-site hash, giving one victim per short site.
            a, b = sorted((v.net, v.other_net))
            if _stable_hash("dom:" + site) & 1:
                victim, aggressor = a, b
            else:
                victim, aggressor = b, a
            faults.append(BridgingFault(
                fault_id=f"br:{victim}<{aggressor}@{loc}:{v.guideline}",
                guideline=v.guideline,
                victim=victim, aggressor=aggressor,
            ))
    return faults


def build_fault_set(
    circuit: Circuit,
    library: Library,
    layout: Layout,
    guidelines: Optional[Sequence[Guideline]] = None,
    prev_fault_set: Optional[FaultSet] = None,
    prev_circuit: Optional[Circuit] = None,
    stats: Optional[EngineStats] = None,
) -> FaultSet:
    """Assemble the full DFM fault set F (internal + external).

    With *prev_fault_set*/*prev_circuit* (a functionally-equivalent
    earlier design differing only in a locally replaced region), the
    internal faults of gates that survive unchanged are carried over
    instead of re-enumerated; the result is identical either way because
    internal fault ids are deterministic in (gate, defect).  External
    faults are always re-derived: their sites embed layout coordinates
    and the whole placement shifts after a replacement.
    """
    fault_set = FaultSet()
    reuse: Optional[Dict[str, List[CellAwareFault]]] = None
    if prev_fault_set is not None and prev_circuit is not None:
        reuse = {}
        for fault in prev_fault_set.internal:
            new_gate = circuit.gates.get(fault.gate)
            old_gate = prev_circuit.gates.get(fault.gate)
            if (
                new_gate is not None
                and old_gate is not None
                and new_gate.cell == old_gate.cell
            ):
                reuse.setdefault(fault.gate, []).append(fault)
    fault_set.extend(
        enumerate_internal_faults(circuit, library, reuse=reuse, stats=stats)
    )
    violations = check_layout(layout, guidelines)
    external = external_faults_from_violations(circuit, violations)
    fault_set.extend(external)
    if stats is not None:
        stats.faults_extracted += len(external)
    return fault_set
