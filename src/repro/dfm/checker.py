"""DFM guideline checker over the layout geometry.

For every defect-prone *site* (via, segment, segment pair, density
window) the checker computes the relevant metric once and reports a
violation of the **most specific** guideline of the matching family —
the same way sign-off decks report the worst matching recommendation —
so one physical site yields at most one violation per family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dfm.guidelines import Guideline, all_guidelines
from repro.physical.layout import Layout, M2, RouteSegment, Via
from repro.physical.routing import subtrack

OPEN = "open"
BRIDGE = "bridge"


@dataclass(frozen=True)
class LayoutViolation:
    """One DFM violation site in the layout."""

    guideline: str
    kind: str  # OPEN | BRIDGE
    net: str
    other_net: Optional[str]
    location: Tuple[int, int]
    owner: Optional[Tuple[str, str]]  # (gate, pin) for pin-via opens


def check_layout(
    layout: Layout, guidelines: Optional[Sequence[Guideline]] = None
) -> List[LayoutViolation]:
    """Evaluate the guideline deck on *layout*; return all violations."""
    deck = list(guidelines) if guidelines is not None else all_guidelines()
    by_rule: Dict[str, List[Guideline]] = {}
    for g in deck:
        by_rule.setdefault(g.rule, []).append(g)

    violations: List[LayoutViolation] = []
    h_by_row: Dict[int, List[RouteSegment]] = {}
    v_by_col: Dict[int, List[RouteSegment]] = {}
    for seg in layout.segments:
        if seg.horizontal:
            h_by_row.setdefault(seg.y1, []).append(seg)
        else:
            v_by_col.setdefault(seg.x1, []).append(seg)
    via_grid: Dict[Tuple[int, int], int] = {}
    for via in layout.vias:
        via_grid[(via.x, via.y)] = via_grid.get((via.x, via.y), 0) + 1

    def neighbours(via: Via, r: int) -> int:
        count = 0
        for dx in range(-r, r + 1):
            for dy in range(-r, r + 1):
                count += via_grid.get((via.x + dx, via.y + dy), 0)
        return count - 1  # exclude the via itself

    # ---- via rules -----------------------------------------------------
    iso = by_rule.get("isolated_via", [])
    crowd = by_rule.get("crowded_via", [])
    near = by_rule.get("via_near_metal", [])
    for via in layout.vias:
        ncache: Dict[int, int] = {}

        def ncnt(r: int) -> int:
            if r not in ncache:
                ncache[r] = neighbours(via, r)
            return ncache[r]

        hit = _strictest(
            iso, key=lambda g: (g.params["t"], g.params["r"]),
            pred=lambda g: ncnt(g.params["r"]) <= g.params["t"],
            prefer_smallest=True,
        )
        if hit:
            violations.append(LayoutViolation(
                hit.gid, OPEN, via.net, None, (via.x, via.y), via.owner,
            ))
        hit = _strictest(
            crowd, key=lambda g: g.params["t"],
            pred=lambda g: ncnt(g.params["r"]) >= g.params["t"],
            prefer_smallest=False,
        )
        if hit:
            violations.append(LayoutViolation(
                hit.gid, OPEN, via.net, None, (via.x, via.y), via.owner,
            ))
        if near:
            foreign_len, foreign_net = _foreign_metal(
                via, h_by_row, v_by_col
            )
            hit = _strictest(
                near, key=lambda g: g.params["t"],
                pred=lambda g: foreign_len >= g.params["t"],
                prefer_smallest=False,
            )
            if hit and foreign_net is not None:
                violations.append(LayoutViolation(
                    hit.gid, BRIDGE, via.net, foreign_net,
                    (via.x, via.y), None,
                ))

    # ---- metal rules ---------------------------------------------------
    prun = by_rule.get("parallel_run", [])
    if prun:
        for pair, overlap, loc in _parallel_pairs(h_by_row, v_by_col):
            hit = _strictest(
                prun, key=lambda g: g.params["t"],
                pred=lambda g: overlap >= g.params["t"],
                prefer_smallest=False,
            )
            if hit:
                violations.append(LayoutViolation(
                    hit.gid, BRIDGE, pair[0], pair[1], loc, None,
                ))
    lwire = by_rule.get("long_wire", [])
    xings = by_rule.get("many_crossings", [])
    for seg in layout.segments:
        hit = _strictest(
            lwire, key=lambda g: g.params["t"],
            pred=lambda g: seg.length >= g.params["t"],
            prefer_smallest=False,
        )
        if hit:
            violations.append(LayoutViolation(
                hit.gid, OPEN, seg.net, None, (seg.x1, seg.y1), None,
            ))
        if xings:
            n_cross = _crossings(seg, h_by_row, v_by_col)
            hit = _strictest(
                xings, key=lambda g: g.params["t"],
                pred=lambda g: n_cross >= g.params["t"],
                prefer_smallest=False,
            )
            if hit:
                violations.append(LayoutViolation(
                    hit.gid, OPEN, seg.net, None, (seg.x1, seg.y1), None,
                ))

    # ---- density rules ---------------------------------------------------
    dlow = by_rule.get("density_low", [])
    dhigh = by_rule.get("density_high", [])
    for w in sorted({g.params["w"] for g in dlow + dhigh}):
        for (wx, wy), length_by_net in _windows(layout, w).items():
            total = sum(length_by_net.values())
            density = total / float(w * w)
            nets = sorted(
                length_by_net, key=lambda n: (-length_by_net[n], n)
            )
            hit = _strictest(
                [g for g in dlow if g.params["w"] == w],
                key=lambda g: g.params["lo"],
                pred=lambda g: density * 100.0 < g.params["lo"],
                prefer_smallest=True,
            )
            if hit and nets:
                for net in nets[:2]:
                    violations.append(LayoutViolation(
                        hit.gid, OPEN, net, None, (wx, wy), None,
                    ))
            hit = _strictest(
                [g for g in dhigh if g.params["w"] == w],
                key=lambda g: g.params["hi"],
                pred=lambda g: density * 100.0 > g.params["hi"],
                prefer_smallest=False,
            )
            if hit and len(nets) >= 2:
                violations.append(LayoutViolation(
                    hit.gid, BRIDGE, nets[0], nets[1], (wx, wy), None,
                ))
    return violations


def _strictest(guidelines, key, pred, prefer_smallest):
    """The most specific guideline whose predicate holds, or None."""
    best = None
    for g in guidelines:
        if not pred(g):
            continue
        if best is None:
            best = g
        elif prefer_smallest and key(g) < key(best):
            best = g
        elif not prefer_smallest and key(g) > key(best):
            best = g
    return best


def _foreign_metal(
    via: Via,
    h_by_row: Dict[int, List[RouteSegment]],
    v_by_col: Dict[int, List[RouteSegment]],
) -> Tuple[int, Optional[str]]:
    """Longest other-net segment on the via's upper layer within 1 track."""
    best_len, best_net = 0, None
    if via.upper == M2:
        for y in (via.y - 1, via.y, via.y + 1):
            for seg in h_by_row.get(y, ()):
                if seg.net == via.net:
                    continue
                if seg.x1 - 1 <= via.x <= seg.x2 + 1 and seg.length > best_len:
                    best_len, best_net = seg.length, seg.net
    else:
        for x in (via.x - 1, via.x, via.x + 1):
            for seg in v_by_col.get(x, ()):
                if seg.net == via.net:
                    continue
                if seg.y1 - 1 <= via.y <= seg.y2 + 1 and seg.length > best_len:
                    best_len, best_net = seg.length, seg.net
    return best_len, best_net


def _parallel_pairs(
    h_by_row: Dict[int, List[RouteSegment]],
    v_by_col: Dict[int, List[RouteSegment]],
):
    """Yield ((netA, netB), overlap, location) for adjacent-track runs.

    Each unordered net pair is reported once per channel with its maximum
    overlap; sub-tracks within a channel must differ by at most 1 for the
    nets to be adjacent.
    """
    for y, segs in sorted(h_by_row.items()):
        best: Dict[Tuple[str, str], Tuple[int, Tuple[int, int]]] = {}
        ordered = sorted(segs, key=lambda s: (s.x1, s.x2, s.net))
        for i, a in enumerate(ordered):
            sa = subtrack(a.net, True)
            for b in ordered[i + 1:]:
                if b.x1 > a.x2:
                    break
                if b.net == a.net:
                    continue
                if abs(subtrack(b.net, True) - sa) > 1:
                    continue
                overlap = min(a.x2, b.x2) - b.x1
                if overlap <= 0:
                    continue
                key = tuple(sorted((a.net, b.net)))
                if key not in best or overlap > best[key][0]:
                    best[key] = (overlap, (b.x1, y))
        for (na, nb), (overlap, loc) in sorted(best.items()):
            yield (na, nb), overlap, loc
    for x, segs in sorted(v_by_col.items()):
        best = {}
        ordered = sorted(segs, key=lambda s: (s.y1, s.y2, s.net))
        for i, a in enumerate(ordered):
            sa = subtrack(a.net, False)
            for b in ordered[i + 1:]:
                if b.y1 > a.y2:
                    break
                if b.net == a.net:
                    continue
                if abs(subtrack(b.net, False) - sa) > 1:
                    continue
                overlap = min(a.y2, b.y2) - b.y1
                if overlap <= 0:
                    continue
                key = tuple(sorted((a.net, b.net)))
                if key not in best or overlap > best[key][0]:
                    best[key] = (overlap, (x, b.y1))
        for (na, nb), (overlap, loc) in sorted(best.items()):
            yield (na, nb), overlap, loc


def _crossings(
    seg: RouteSegment,
    h_by_row: Dict[int, List[RouteSegment]],
    v_by_col: Dict[int, List[RouteSegment]],
) -> int:
    """Number of foreign orthogonal segments crossing *seg*."""
    count = 0
    if seg.horizontal:
        for x in range(seg.x1, seg.x2 + 1):
            for other in v_by_col.get(x, ()):
                if other.net != seg.net and other.y1 <= seg.y1 <= other.y2:
                    count += 1
    else:
        for y in range(seg.y1, seg.y2 + 1):
            for other in h_by_row.get(y, ()):
                if other.net != seg.net and other.x1 <= seg.x1 <= other.x2:
                    count += 1
    return count


def _windows(layout: Layout, w: int) -> Dict[Tuple[int, int], Dict[str, int]]:
    """Per-window wirelength by net, tiling the die with w x w windows."""
    out: Dict[Tuple[int, int], Dict[str, int]] = {}
    for seg in layout.segments:
        if seg.horizontal:
            y = seg.y1
            for x in range(seg.x1, seg.x2 + 1):
                key = (x // w, y // w)
                bucket = out.setdefault(key, {})
                bucket[seg.net] = bucket.get(seg.net, 0) + 1
        else:
            x = seg.x1
            for y in range(seg.y1, seg.y2 + 1):
                key = (x // w, y // w)
                bucket = out.setdefault(key, {})
                bucket[seg.net] = bucket.get(seg.net, 0) + 1
    return out
