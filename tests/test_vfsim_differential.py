"""Differential tests: the wide numpy backend vs the event backend.

The wide backend (:mod:`repro.faults.vfsim`) must be *bit-identical* to
the event backend — not just same detected/undetected flags, but the
same detect words: bit *i* of fault *f*'s word set by exactly the same
pattern pairs.  Bit-identity is structural (both backends share the
compiled plan's topological order, pin indices and evaluators), and this
suite locks it in:

* on random mapped circuits with faults of every model, across batch
  widths from a single pair up to several 64-bit words;
* on every bundled benchmark circuit for seeds {0, 1, 2};
* end-to-end through ``run_atpg`` — same classification, same tests,
  same coverage for equal ``batch_size``;
* through the ``detected_by_patterns`` capacity-chunked wrapper and
  the ``REPRO_SIM_BACKEND`` environment dispatch.
"""

from __future__ import annotations

import pytest

from repro.atpg.engine import run_atpg
from repro.bench.circuits import BENCHMARKS, build_benchmark
from repro.faults.fsim import (
    PatternBatch,
    detected_by_patterns,
    fault_simulate,
)
from repro.faults.vfsim import wide_fault_simulate
from repro.utils.observability import EngineStats
from tests.conftest import mixed_fault_list, random_mapped_circuit

# Batch widths spanning the interesting boundaries: a single pair, a
# partial word, exactly one word, a word boundary + 1, several words.
WIDTHS = [1, 17, 64, 65, 200]

# Benchmark circuits are expensive to synthesize; build each once for
# the whole module run.
_BENCH_CACHE = {}


def _bench(name, library):
    circuit = _BENCH_CACHE.get(name)
    if circuit is None:
        circuit = build_benchmark(name, library)
        _BENCH_CACHE[name] = circuit
    return circuit


def _assert_identical(circuit, cells, faults, batch):
    event = fault_simulate(circuit, cells, faults, batch, backend="event")
    wide = fault_simulate(circuit, cells, faults, batch, backend="wide")
    assert event == wide
    return event


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("width", WIDTHS)
def test_wide_matches_event_all_models(cells, library, seed, width):
    circuit = random_mapped_circuit(cells, seed=seed)
    faults = mixed_fault_list(circuit, library, seed=seed)
    batch = PatternBatch.random(circuit, width, seed=seed * 1000 + width)
    words = _assert_identical(circuit, cells, faults, batch)
    if width >= 64:
        assert any(words)  # the suite must exercise real detections


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_wide_matches_event_on_benchmarks(cells, library, name, seed):
    circuit = _bench(name, library)
    faults = mixed_fault_list(circuit, library, seed=seed, per_kind=6)
    batch = PatternBatch.random(circuit, 200, seed=seed)
    _assert_identical(circuit, cells, faults, batch)


@pytest.mark.parametrize("seed", [0, 1])
def test_run_atpg_backend_bit_identity(cells, library, seed):
    """Equal batch_size ⇒ the whole ATPG result matches across backends."""
    circuit = random_mapped_circuit(cells, seed=seed)
    faults = mixed_fault_list(circuit, library, seed=seed)
    event = run_atpg(
        circuit, cells, faults, seed=seed, batch_size=64, backend="event"
    )
    wide = run_atpg(
        circuit, cells, faults, seed=seed, batch_size=64, backend="wide"
    )
    assert event.detected == wide.detected
    assert event.undetectable == wide.undetectable
    assert event.aborted == wide.aborted
    assert event.tests == wide.tests
    assert event.coverage == wide.coverage
    assert wide.stats.wide_batches > 0
    assert event.stats.wide_batches == 0


def test_detected_by_patterns_chunks_at_wide_capacity(
    cells, library, monkeypatch
):
    """A long pair list rides few wide passes, same flags as event."""
    monkeypatch.setenv("REPRO_SIM_WORDS", "2")  # capacity 128
    circuit = random_mapped_circuit(cells, seed=4)
    faults = mixed_fault_list(circuit, library, seed=4)
    gen = PatternBatch.random(circuit, 300, seed=11)
    pairs = [
        (
            {pi: (gen.frame1[pi] >> i) & 1 for pi in circuit.inputs},
            {pi: (gen.frame2[pi] >> i) & 1 for pi in circuit.inputs},
        )
        for i in range(300)
    ]
    event = detected_by_patterns(circuit, cells, faults, pairs, backend="event")
    stats = EngineStats()
    wide = detected_by_patterns(
        circuit, cells, faults, pairs, backend="wide", stats=stats
    )
    assert event == wide
    assert stats.wide_batches == 3  # ceil(300 / 128)
    assert stats.words_per_batch == 2


def test_env_dispatch_selects_wide_backend(cells, library, monkeypatch):
    """REPRO_SIM_BACKEND=wide reroutes fault_simulate without call changes."""
    circuit = random_mapped_circuit(cells, seed=5)
    faults = mixed_fault_list(circuit, library, seed=5)
    batch = PatternBatch.random(circuit, 64, seed=5)
    baseline = fault_simulate(circuit, cells, faults, batch)

    monkeypatch.setenv("REPRO_SIM_BACKEND", "wide")
    stats = EngineStats()
    rerouted = fault_simulate(circuit, cells, faults, batch, stats=stats)
    assert rerouted == baseline
    assert stats.wide_batches == 1

    monkeypatch.setenv("REPRO_SIM_BACKEND", "sideways")
    with pytest.raises(ValueError, match="unknown simulation backend"):
        fault_simulate(circuit, cells, faults, batch)


def test_wide_word_sizing_and_validation(cells, library):
    circuit = random_mapped_circuit(cells, seed=6)
    faults = mixed_fault_list(circuit, library, seed=6)
    batch = PatternBatch.random(circuit, 100, seed=6)
    # Explicit oversizing is allowed (extra words are masked out) ...
    narrow = wide_fault_simulate(circuit, cells, faults, batch, words=2)
    padded = wide_fault_simulate(circuit, cells, faults, batch, words=5)
    assert narrow == padded
    # ... but undersizing is an explicit error, not silent truncation.
    with pytest.raises(ValueError, match="100"):
        wide_fault_simulate(circuit, cells, faults, batch, words=1)


@pytest.mark.parametrize(
    "batch_size,backend",
    [(0, "event"), (-3, "wide"), (65, "event"), (4097, "wide")],
)
def test_run_atpg_rejects_bad_batch_size(cells, library, batch_size, backend):
    circuit = random_mapped_circuit(cells, seed=7)
    faults = mixed_fault_list(circuit, library, seed=7, per_kind=2)
    with pytest.raises(ValueError, match="batch_size"):
        run_atpg(
            circuit, cells, faults, batch_size=batch_size, backend=backend
        )
