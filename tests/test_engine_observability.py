"""Engine observability counters and the compile-count regression.

The original hot path recompiled a cell evaluator for every gate popped
off the propagation heap; ``test_compile_count_stays_bounded`` pins the
fix by asserting the compile count is O(#distinct cells) for the first
batch and zero afterwards, no matter how many faults or events a batch
propagates.
"""

from __future__ import annotations

import pytest

import repro.netlist.simulator as sim
from repro.atpg.engine import run_atpg
from repro.core.metrics import engine_row
from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.sites import enumerate_internal_faults
from repro.utils.observability import EngineStats
from tests.conftest import mixed_fault_list, random_mapped_circuit


def test_compile_count_stays_bounded(cells, monkeypatch):
    circuit = random_mapped_circuit(cells, seed=90)
    faults = mixed_fault_list(circuit, seed=9)
    distinct = {
        (len(cells[g.cell].input_pins), cells[g.cell].tt)
        for g in circuit.gates.values()
    }
    sim.clear_compiled_cache()
    calls = []
    real = sim.compile_cell_eval

    def counting(n_inputs, tt):
        calls.append((n_inputs, tt))
        return real(n_inputs, tt)

    monkeypatch.setattr(sim, "compile_cell_eval", counting)
    stats = EngineStats()
    batch = PatternBatch.random(circuit, 32, seed=1)
    fault_simulate(circuit, cells, faults, batch, stats=stats)
    # First batch: one compile per distinct (n_inputs, truth table) —
    # never per gate, per fault, or per propagated event.
    assert 0 < len(calls) <= len(distinct)
    assert stats.eval_compiles == len(calls)
    assert stats.events_propagated > len(distinct)  # plenty of pops happened

    first = len(calls)
    for seed in (2, 3, 4):
        batch = PatternBatch.random(circuit, 32, seed=seed)
        fault_simulate(circuit, cells, faults, batch, stats=stats)
    assert len(calls) == first  # later batches reuse the cached plan
    assert stats.plan_builds == 1
    assert stats.plan_cache_hits == 3


def test_good_value_cache(cells):
    circuit = random_mapped_circuit(cells, seed=91)
    faults = mixed_fault_list(circuit, seed=9, per_kind=4)
    batch = PatternBatch.random(circuit, 32, seed=4)
    stats = EngineStats()
    fault_simulate(circuit, cells, faults, batch, stats=stats)
    assert stats.good_simulations == 2  # both frames simulated once
    assert stats.good_cache_hits == 0
    fault_simulate(circuit, cells, faults, batch, stats=stats)
    assert stats.good_simulations == 2  # repeat batch served from cache
    assert stats.good_cache_hits == 2
    assert stats.batches == 2


def test_good_cache_eviction_keeps_results_correct(cells):
    circuit = random_mapped_circuit(cells, n_gates=30, seed=92)
    faults = mixed_fault_list(circuit, seed=2, per_kind=3)
    batches = [
        PatternBatch.random(circuit, 16, seed=s)
        for s in range(sim.CompiledCircuit.GOOD_CACHE_SIZE + 4)
    ]
    before = [fault_simulate(circuit, cells, faults, b) for b in batches]
    # Cycle through again: early batches were evicted and re-simulate.
    after = [fault_simulate(circuit, cells, faults, b) for b in batches]
    assert after == before


def test_run_atpg_populates_stats(adder4, cells, library):
    faults = enumerate_internal_faults(adder4, library)
    # Skip the random phase so the SAT phase has real work left.
    result = run_atpg(adder4, cells, faults, seed=1, workers=2,
                      random_rounds=0)
    stats = result.stats
    assert stats.faults_simulated > 0
    assert stats.events_propagated > 0
    assert stats.batches > 0
    assert stats.good_simulations > 0
    assert stats.sat_calls == result.sat_calls > 0
    assert stats.sat_propagations >= stats.sat_conflicts >= 0
    assert stats.sat_propagations > 0
    for phase in ("atpg.random", "atpg.sat", "atpg.compaction"):
        assert stats.phase_seconds.get(phase, -1.0) >= 0.0
    # Re-running with inherited tests exercises the initial-tests phase.
    again = run_atpg(adder4, cells, faults, seed=1, workers=2,
                     initial_tests=result.tests)
    assert again.stats.phase_seconds.get("atpg.initial_tests", -1.0) >= 0.0
    assert again.undetectable == result.undetectable


def test_stats_merge_and_as_dict():
    a = EngineStats(faults_simulated=3, sat_calls=1)
    a.add_phase("x", 0.5)
    b = EngineStats(faults_simulated=4, events_propagated=7)
    b.add_phase("x", 0.25)
    b.add_phase("y", 1.0)
    a.merge(b)
    assert a.faults_simulated == 7
    assert a.events_propagated == 7
    assert a.phase_seconds == {"x": 0.75, "y": 1.0}
    d = a.as_dict()
    assert d["faults_simulated"] == 7
    assert d["phase_seconds"]["y"] == 1.0


def test_engine_row_flattens_counters(library, cells, adder4):
    from repro.core.flow import analyze_design

    state = analyze_design(adder4, library, workers=2)
    row = engine_row("adder4", state)
    assert row["Circuit"] == "adder4"
    assert row["Gates"] == len(adder4)
    assert row["F"] == state.n_faults
    assert row["FaultsSim"] > 0
    assert row["SatProps"] >= 0
    assert row["t[atpg.random]"] >= 0.0
    assert row["t[pdesign]"] >= 0.0
    assert set(state.timings) == {
        "pdesign", "fault_extraction", "atpg", "clustering"}
