"""Netlist linting and hardened parse-error reporting.

Covers the structural linter (:mod:`repro.netlist.validate`), the
located error messages of :func:`repro.netlist.io.parse_netlist`, and
the ``repro.runner check --netlist`` front end that gates campaigns on
clean circuits.
"""

from __future__ import annotations

import pytest

from repro.netlist import (
    Circuit,
    NetlistError,
    lint_circuit,
    lint_netlist_text,
    parse_netlist,
)
from repro.netlist.validate import FANOUT_WARN_THRESHOLD
from repro.runner.__main__ import main as runner_main

GOOD = """\
circuit good
input a b
output z
gate u1 NAND2X1 A=a B=b > y
gate u2 INVX1 A=y > z
"""

UNDRIVEN = """\
circuit bad
input a
output z
gate u1 NAND2X1 A=a B=miss > z
"""

LOOP = """\
circuit loop
input a
output z
gate u1 NAND2X1 A=a B=w2 > w1
gate u2 NAND2X1 A=a B=w1 > w2
gate u3 INVX1 A=w1 > z
"""


class TestParseErrors:
    def test_bad_pin_spec_names_file_and_line(self):
        text = GOOD.replace("A=a", "Aa")
        with pytest.raises(NetlistError, match=r"mine\.nl:4: .*'Aa'"):
            parse_netlist(text, path="mine.nl")

    def test_default_path_label(self):
        with pytest.raises(NetlistError, match=r"<netlist>:1: unknown"):
            parse_netlist("bogus directive\n")

    def test_statement_before_header_located(self):
        with pytest.raises(NetlistError, match=r"x\.nl:1: statement before"):
            parse_netlist("input a\n", path="x.nl")

    def test_duplicate_gate_located(self):
        text = GOOD + "gate u1 INVX1 A=z > q\n"
        with pytest.raises(NetlistError, match=r"dup\.nl:6: duplicate gate u1"):
            parse_netlist(text, path="dup.nl")

    def test_multi_driven_net_located(self):
        text = GOOD + "gate u3 INVX1 A=a > y\n"
        with pytest.raises(
            NetlistError, match=r"multi\.nl:6: net y already driven by u1"
        ):
            parse_netlist(text, path="multi.nl")

    def test_undriven_net_blames_gate_line(self):
        with pytest.raises(
            NetlistError, match=r"bad\.nl:4: gate u1 pin B: net miss undriven"
        ):
            parse_netlist(UNDRIVEN, path="bad.nl")

    def test_cycle_reported_with_location(self):
        with pytest.raises(NetlistError, match=r"loop\.nl.*cycle"):
            parse_netlist(LOOP, path="loop.nl")

    def test_duplicate_output_blames_declaration_line(self):
        text = GOOD.replace("output z", "output z\noutput z")
        with pytest.raises(NetlistError, match=r"o\.nl:4: duplicate output z"):
            parse_netlist(text, path="o.nl")

    def test_good_netlist_still_parses(self):
        circuit = parse_netlist(GOOD, path="good.nl")
        assert sorted(circuit.gates) == ["u1", "u2"]


class TestParseErrorCodes:
    """parse_netlist failures carry machine-readable code/path/line
    attributes alongside the located message (PR 6 bugfix)."""

    def _raise(self, text, path):
        with pytest.raises(NetlistError) as excinfo:
            parse_netlist(text, path=path)
        return excinfo.value

    def test_multi_driven_net_coded(self):
        err = self._raise(GOOD + "gate u3 INVX1 A=a > y\n", "multi.nl")
        assert err.code == "multi-driven-net"
        assert err.path == "multi.nl"
        assert err.line == 6

    def test_undeclared_fanin_coded(self):
        err = self._raise(UNDRIVEN, "bad.nl")
        assert err.code == "undriven-net"
        assert err.path == "bad.nl"
        assert err.line == 4

    def test_cycle_coded(self):
        err = self._raise(LOOP, "loop.nl")
        assert err.code == "combinational-loop"
        assert err.path == "loop.nl"

    def test_floating_output_coded(self):
        text = GOOD.replace("output z", "output z ghost")
        err = self._raise(text, "f.nl")
        assert err.code == "floating-output"

    def test_syntax_error_coded(self):
        err = self._raise(GOOD.replace("A=a", "Aa"), "s.nl")
        assert err.code == "syntax"
        assert err.line == 4

    def test_diagnostic_conversion(self):
        err = self._raise(UNDRIVEN, "bad.nl")
        diag = err.diagnostic()
        assert diag.code == "undriven-net"
        assert diag.severity == "error"
        assert diag.path == "bad.nl"
        assert diag.line == 4
        assert "miss" in diag.message


class TestLintCircuit:
    def test_clean_circuit_ok(self, cells):
        circuit = parse_netlist(GOOD)
        report = lint_circuit(circuit, cells=cells)
        assert report.ok
        assert report.diagnostics == []
        assert "clean" in report.render()

    def test_undriven_net_diagnostic(self):
        c = Circuit("c")
        c.add_input("a")
        c.add_gate("u1", "NAND2X1", {"A": "a", "B": "miss"}, "z")
        c.set_outputs(["z"])
        report = lint_circuit(c)
        assert not report.ok
        (diag,) = report.by_code("undriven-net")
        assert diag.net == "miss"
        assert diag.gate == "u1"

    def test_floating_output_diagnostic(self):
        c = Circuit("c")
        c.add_input("a")
        c.add_gate("u1", "INVX1", {"A": "a"}, "y")
        c.set_outputs(["y", "ghost"])
        report = lint_circuit(c)
        (diag,) = report.by_code("floating-output")
        assert diag.net == "ghost"

    def test_combinational_loop_diagnostic(self):
        c = Circuit("c")
        c.add_input("a")
        c.add_gate("u1", "NAND2X1", {"A": "a", "B": "w2"}, "w1")
        c.add_gate("u2", "NAND2X1", {"A": "a", "B": "w1"}, "w2")
        c.add_gate("u3", "INVX1", {"A": "w1"}, "z")
        c.set_outputs(["z"])
        # validate() raises; the linter reports and keeps going.
        with pytest.raises(NetlistError):
            c.validate()
        report = lint_circuit(c)
        (diag,) = report.by_code("combinational-loop")
        assert diag.gate in ("u1", "u2")
        assert "u1" in diag.message and "u2" in diag.message
        assert "u3" not in diag.message

    def test_duplicate_pin_net_is_not_a_loop(self):
        # Regression: both pins on the same net used to leave the gate
        # "stuck" in the Kahn pass and crash the cycle finder.
        c = Circuit("c")
        c.add_input("a")
        c.add_gate("u1", "AND2X1", {"A": "a", "B": "a"}, "y")
        c.add_gate("u2", "AND2X1", {"A": "y", "B": "y"}, "z")
        c.set_outputs(["z"])
        report = lint_circuit(c)
        assert report.ok
        assert not report.by_code("combinational-loop")

    def test_unknown_cell_and_bad_pins(self, cells):
        c = Circuit("c")
        c.add_input("a")
        c.add_gate("u1", "NOSUCHX1", {"A": "a"}, "w")
        c.add_gate("u2", "INVX1", {"IN": "w"}, "z")
        c.set_outputs(["z"])
        report = lint_circuit(c, cells=cells)
        assert {d.code for d in report.errors} == {"unknown-cell", "bad-pins"}

    def test_warnings_do_not_fail(self):
        c = Circuit("c")
        c.add_input("a")
        c.add_input("unused")
        c.add_gate("u1", "INVX1", {"A": "a"}, "z")
        c.add_gate("u2", "INVX1", {"A": "a"}, "dead")
        c.set_outputs(["z"])
        report = lint_circuit(c)
        assert report.ok
        assert {d.code for d in report.warnings} == {
            "dangling-net", "unused-input",
        }

    def test_fanout_anomaly_warning(self):
        c = Circuit("c")
        c.add_input("a")
        for i in range(FANOUT_WARN_THRESHOLD + 1):
            c.add_gate(f"u{i}", "INVX1", {"A": "a"}, f"w{i}")
        c.set_outputs([f"w{i}" for i in range(FANOUT_WARN_THRESHOLD + 1)])
        report = lint_circuit(c)
        (diag,) = report.by_code("fanout-anomaly")
        assert diag.net == "a"
        assert report.ok


class TestLintNetlistText:
    def test_collects_all_problems_in_one_pass(self):
        text = (
            "circuit messy\n"
            "input a\n"
            "output z q\n"
            "gate u1 NAND2X1 A=a Bb > w\n"      # bad pin spec
            "gate u2 INVX1 A=a > y\n"
            "gate u3 INVX1 A=a > y\n"           # multi-driven y
            "gate u4 INVX1 A=nowhere > z\n"     # undriven net
        )
        circuit, report = lint_netlist_text(text, path="messy.nl")
        assert circuit is not None
        codes = report.codes()
        assert {"syntax", "multi-driven-net", "undriven-net",
                "floating-output"} <= codes
        multi = report.by_code("multi-driven-net")[0]
        assert multi.net == "y" and multi.line == 6
        undriven = report.by_code("undriven-net")[0]
        assert undriven.net == "nowhere" and undriven.line == 7

    def test_no_header_returns_none(self):
        circuit, report = lint_netlist_text("input a\n")
        assert circuit is None
        assert not report.ok

    def test_clean_text_roundtrip(self, cells):
        circuit, report = lint_netlist_text(GOOD, cells=cells)
        assert report.ok and circuit is not None
        circuit.validate()


class TestRunnerCheckNetlist:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_clean_netlist_passes(self, tmp_path, capsys):
        path = self._write(tmp_path, "good.nl", GOOD)
        assert runner_main(["check", "--netlist", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_undriven_net_rejected_with_location(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.nl", UNDRIVEN)
        assert runner_main(["check", "--netlist", path]) == 1
        out = capsys.readouterr().out
        assert f"{path}:4" in out
        assert "[undriven-net]" in out
        assert "'miss'" in out

    def test_combinational_loop_rejected_with_location(self, tmp_path, capsys):
        path = self._write(tmp_path, "loop.nl", LOOP)
        assert runner_main(["check", "--netlist", path]) == 1
        out = capsys.readouterr().out
        assert "[combinational-loop]" in out
        # Anchored at one of the two gates on the cycle.
        assert f"{path}:4" in out or f"{path}:5" in out
        assert "w1" in out

    def test_check_without_args_errors(self, capsys):
        assert runner_main(["check"]) == 2
        assert "run_id" in capsys.readouterr().err


class TestPreflight:
    def test_preflight_accepts_paper_campaign(self):
        from repro.runner.tasks import paper_campaign, preflight_campaign

        campaign = paper_campaign(["sparc_tlu"], "pf", tables=(1,))
        assert preflight_campaign(campaign) == []

    def test_preflight_reports_unbuildable_circuit(self):
        from repro.runner.model import CampaignSpec, TaskSpec
        from repro.runner.tasks import preflight_campaign

        campaign = CampaignSpec(run_id="pf2", tasks=[
            TaskSpec("analyze:full:nope", "analyze",
                     {"circuit": "nope", "variant": "full"}),
        ])
        problems = preflight_campaign(campaign)
        assert len(problems) == 1
        assert "analyze:full:nope" in problems[0]
        assert "nope" in problems[0]
