"""Tests for the Section III-C backtracking procedure (driven by a mock
attempt function, so the control flow is exercised deterministically)."""

from __future__ import annotations

import math

from repro.core import backtrack_resynthesis


class _Recorder:
    """Mock attempt function that records the replacement sets tried."""

    def __init__(self, outcomes):
        # outcomes: callable(replacement_set) -> status
        self.outcomes = outcomes
        self.calls = []

    def __call__(self, replacement):
        self.calls.append(frozenset(replacement))
        status = self.outcomes(replacement)
        return status, ("STATE" if status == "accepted" else None)


def test_accepts_first_constraint_clean_config():
    base = set("abcdefghi")
    g_i = list("abcdefghi")  # n=9, group=3

    def outcomes(repl):
        # Constraints clear once at most 6 gates are replaced; accept then.
        return "accepted" if len(repl) <= 6 else "constraints"

    rec = _Recorder(outcomes)
    result = backtrack_resynthesis(base, g_i, rec)
    assert result == "STATE"
    # First call: one group of sqrt(9)=3 removed -> 6 replaced -> accepted.
    assert len(rec.calls) == 1
    assert len(rec.calls[0]) == 6


def test_returns_gates_one_by_one_on_rejection():
    base = set("abcdefghi")
    g_i = list("abcdefghi")
    accepted_at = {7}  # accept only when exactly 7 gates are replaced

    def outcomes(repl):
        if len(repl) in accepted_at:
            return "accepted"
        if len(repl) >= 8:
            return "constraints"
        return "rejected"

    rec = _Recorder(outcomes)
    result = backtrack_resynthesis(base, g_i, rec)
    assert result == "STATE"
    # Path: 6 (rejected) -> return one gate -> 7 (accepted).
    assert [len(c) for c in rec.calls] == [6, 7]


def test_gives_up_when_exhausted():
    base = set("abcd")
    g_i = list("abcd")  # group = 2

    rec = _Recorder(lambda repl: "constraints")
    assert backtrack_resynthesis(base, g_i, rec) is None
    # Groups of 2 removed until G_i empty: replacement sizes 2 then 0.
    assert [len(c) for c in rec.calls] == [2, 0]


def test_synthfail_aborts():
    base = set("abcdef")
    g_i = list("abcdef")
    rec = _Recorder(lambda repl: "synthfail")
    assert backtrack_resynthesis(base, g_i, rec) is None
    assert len(rec.calls) == 1


def test_empty_gi_returns_none():
    assert backtrack_resynthesis(set("ab"), [], lambda r: ("accepted", 1)) is None


def test_return_phase_stops_on_constraint_violation():
    base = set("abcdefghijklmnop")  # 16 gates, group = 4
    g_i = list("abcdefghijklmnop")
    seen = []

    def outcomes(repl):
        seen.append(len(repl))
        if len(repl) > 12:
            return "constraints"
        if len(repl) == 12:
            return "rejected"  # triggers the return-one-by-one phase
        return "rejected"

    # Returning a gate moves 12 -> 13 -> constraints -> resume groups.
    rec = _Recorder(outcomes)
    result = backtrack_resynthesis(base, g_i, rec)
    assert result is None  # nothing ever accepted
    assert 13 in seen  # the return phase ran
    assert 0 in seen  # and the search reached the empty replacement set


def test_group_size_is_sqrt_n():
    base = set(range(25))
    g_i = list(range(25))
    sizes = []

    def outcomes(repl):
        sizes.append(len(repl))
        return "constraints"

    backtrack_resynthesis(base, g_i, outcomes_wrap(outcomes))
    # sqrt(25) = 5: replacement shrinks by 5 each step.
    assert sizes == [20, 15, 10, 5, 0]


def outcomes_wrap(fn):
    def attempt(repl):
        status = fn(repl)
        return status, None

    return attempt
