"""Unit tests for the layout data model and routing geometry details."""

from __future__ import annotations

import pytest

from repro.physical.layout import Layout, M2, M3, PlacedGate, RouteSegment, Via
from repro.physical.routing import CHANNEL_TRACKS, subtrack


class TestPlacedGate:
    def test_pin_x_is_center(self):
        g = PlacedGate("g", "NAND2X1", x=10, y=2, width=4)
        assert g.pin_x == 12

    def test_width_one(self):
        g = PlacedGate("g", "INVX1", x=0, y=0, width=1)
        assert g.pin_x == 0


class TestRouteSegment:
    def test_length_and_orientation(self):
        h = RouteSegment("n", M2, 3, 5, 9, 5)
        v = RouteSegment("n", M3, 3, 1, 3, 7)
        assert h.length == 6 and h.horizontal
        assert v.length == 6 and not v.horizontal


class TestLayout:
    def _layout(self):
        lay = Layout(die_width=20, die_rows=4)
        lay.gates["a"] = PlacedGate("a", "INVX1", 0, 0, 2)
        lay.gates["b"] = PlacedGate("b", "NAND2X1", 5, 0, 3)
        lay.segments.append(RouteSegment("n1", M2, 1, 0, 6, 0))
        lay.segments.append(RouteSegment("n1", M3, 6, 0, 6, 2))
        lay.segments.append(RouteSegment("n2", M2, 0, 1, 4, 1))
        lay.vias.append(Via("n1", 6, 0, M2, M3))
        return lay

    def test_net_length(self):
        lay = self._layout()
        assert lay.net_length("n1") == 7
        assert lay.net_length("n2") == 4
        assert lay.wirelength() == 11

    def test_utilization(self):
        lay = self._layout()
        assert lay.utilization() == pytest.approx(5 / 80)

    def test_row_occupancy(self):
        lay = self._layout()
        assert lay.row_occupancy() == [5, 0, 0, 0]

    def test_legal(self):
        assert self._layout().check_legal() == []

    def test_overlap_detected(self):
        lay = self._layout()
        lay.gates["c"] = PlacedGate("c", "INVX1", 1, 0, 2)
        assert any("overlap" in p for p in lay.check_legal())

    def test_out_of_die_detected(self):
        lay = self._layout()
        lay.gates["c"] = PlacedGate("c", "INVX1", 19, 0, 4)
        assert any("outside" in p or "span" in p for p in lay.check_legal())
        lay2 = self._layout()
        lay2.gates["d"] = PlacedGate("d", "INVX1", 0, 9, 1)
        assert lay2.check_legal()


class TestSubtrack:
    def test_in_range_and_deterministic(self):
        for net in ("a", "net42", "m_17"):
            for horizontal in (True, False):
                s = subtrack(net, horizontal)
                assert 0 <= s < CHANNEL_TRACKS
                assert s == subtrack(net, horizontal)

    def test_orientation_changes_hash(self):
        nets = [f"n{i}" for i in range(50)]
        assert any(
            subtrack(n, True) != subtrack(n, False) for n in nets
        )
