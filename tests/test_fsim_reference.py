"""Differential tests: bit-parallel fault simulation vs the naive oracle.

``repro.faults.reference`` re-simulates the whole circuit per fault and
per pattern with scalar values and direct truth-table lookups, sharing no
code with the optimized engine.  Every test here packs random pattern
pairs into a :class:`PatternBatch`, runs both simulators, and requires
the detect words to be *bit-identical* — not just detected/undetected
flags, but which pattern detects which fault.
"""

from __future__ import annotations

import random

import pytest

from repro.faults.fsim import PatternBatch, fault_simulate
from repro.faults.model import (
    FALL,
    RISE,
    BridgingFault,
    CellAwareFault,
    StuckAtFault,
    TransitionFault,
)
from repro.faults.reference import reference_fault_simulate
from repro.faults.sites import enumerate_internal_faults
from repro.library.defects import DYNAMIC, STATIC, CellDefect
from tests.conftest import mixed_fault_list, random_mapped_circuit

N_PAIRS = 24


def _check(circuit, cells, faults, seed=0, n=N_PAIRS, workers=1):
    batch = PatternBatch.random(circuit, n, seed=seed + 1000)
    got = fault_simulate(circuit, cells, faults, batch, workers=workers)
    want = reference_fault_simulate(circuit, cells, faults, batch)
    assert got == want
    return got


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_stuck_at_matches_reference(cells, seed):
    circuit = random_mapped_circuit(cells, seed=seed)
    rng = random.Random(seed)
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    faults = []
    for net in rng.sample(nets, 12):
        faults.append(StuckAtFault(f"sa0:{net}", "g", net=net, value=0))
        faults.append(StuckAtFault(f"sa1:{net}", "g", net=net, value=1))
    for gname in rng.sample(sorted(circuit.gates), 12):
        gate = circuit.gates[gname]
        pin = rng.choice(sorted(gate.pins))
        faults.append(StuckAtFault(
            f"sab:{gname}.{pin}", "g", net=gate.pins[pin],
            value=rng.randint(0, 1), branch=(gname, pin),
        ))
    words = _check(circuit, cells, faults, seed=seed)
    assert any(words)  # the suite must exercise real detections


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_transition_matches_reference(cells, seed):
    circuit = random_mapped_circuit(cells, seed=seed + 10)
    rng = random.Random(seed)
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    faults = []
    for net in rng.sample(nets, 12):
        faults.append(TransitionFault(f"r:{net}", "g", net=net, slow_to=RISE))
        faults.append(TransitionFault(f"f:{net}", "g", net=net, slow_to=FALL))
    for gname in rng.sample(sorted(circuit.gates), 8):
        gate = circuit.gates[gname]
        pin = rng.choice(sorted(gate.pins))
        faults.append(TransitionFault(
            f"tb:{gname}.{pin}", "g", net=gate.pins[pin],
            slow_to=rng.choice([RISE, FALL]), branch=(gname, pin),
        ))
    words = _check(circuit, cells, faults, seed=seed)
    assert any(words)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bridge_matches_reference(cells, seed):
    circuit = random_mapped_circuit(cells, seed=seed + 20)
    rng = random.Random(seed)
    nets = list(circuit.inputs) + [g.output for g in circuit.gates.values()]
    faults = []
    for k in range(20):
        victim, aggressor = rng.sample(nets, 2)
        faults.append(BridgingFault(
            f"br{k}", "g", victim=victim, aggressor=aggressor))
    words = _check(circuit, cells, faults, seed=seed)
    assert any(words)


@pytest.mark.parametrize("seed", [0, 1])
def test_cell_aware_matches_reference(cells, library, seed):
    circuit = random_mapped_circuit(cells, n_gates=40, seed=seed + 30)
    rng = random.Random(seed)
    internal = enumerate_internal_faults(circuit, library)
    faults = rng.sample(internal, min(60, len(internal)))
    kinds = {f.defect.kind for f in faults}
    assert kinds == {STATIC, DYNAMIC}  # both semantics exercised
    words = _check(circuit, cells, faults, seed=seed)
    assert any(words)


def test_cell_aware_dynamic_retention(tiny_circuit, cells):
    """Handcrafted dynamic defect: frame-2 floats, frame-1 sets the value.

    The NAND2 output floats at minterm 1 (A=1, B=0) and is driven to the
    faulty value 0 at minterm 0.  A pair initializing at minterm 0 then
    testing at minterm 1 must detect (retained 0 vs good 1); a pair whose
    frame 1 lands on the floating minterm itself leaves the output
    undriven and must give no credit.
    """
    defect = CellDefect(
        cell="NAND2X1", defect_id="crafted", mechanism="contact-open",
        kind=DYNAMIC, faulty=(0, None, None, None),
        floating=frozenset({1}), guideline="VIA-01",
    )
    fault = CellAwareFault("ca:u1:crafted", "VIA-01", gate="u1", defect=defect)
    pairs = [
        ({"a": 0, "b": 0}, {"a": 1, "b": 0}),  # driven init -> detect
        ({"a": 1, "b": 0}, {"a": 1, "b": 0}),  # floating init -> no credit
        ({"a": 1, "b": 1}, {"a": 1, "b": 0}),  # init minterm 3: faulty None
        ({"a": 0, "b": 0}, {"a": 0, "b": 1}),  # frame 2 driven to good
    ]
    batch = PatternBatch.from_pairs(tiny_circuit, pairs)
    got = fault_simulate(tiny_circuit, cells, [fault], batch)
    want = reference_fault_simulate(tiny_circuit, cells, [fault], batch)
    assert got == want == [0b0001]


def test_cell_aware_static_no_credit_for_unknown(tiny_circuit, cells):
    """Static defect minterms with unknown (None) response never detect."""
    defect = CellDefect(
        cell="NAND2X1", defect_id="unknown", mechanism="bridge",
        kind=STATIC, faulty=(None, None, None, None),
        floating=frozenset(), guideline="MET-01",
    )
    fault = CellAwareFault("ca:u1:unknown", "MET-01", gate="u1", defect=defect)
    batch = PatternBatch.random(tiny_circuit, 16, seed=3)
    got = fault_simulate(tiny_circuit, cells, [fault], batch)
    want = reference_fault_simulate(tiny_circuit, cells, [fault], batch)
    assert got == want == [0]


def test_stale_branch_never_detects(cells):
    """Branch faults whose (gate, pin) no longer matches give 0.

    Resynthesis rewires gates while inherited fault lists survive, so the
    engine must treat a branch pointing at a deleted gate — or at a pin
    now connected to a different net — as undetectable by simulation
    (the ``ok=False`` path of ``_branch_overrides``).
    """
    circuit = random_mapped_circuit(cells, seed=5)
    gname = next(iter(circuit.gates))
    gate = circuit.gates[gname]
    pin = sorted(gate.pins)[0]
    other_net = next(n for n in circuit.inputs if n != gate.pins[pin])
    faults = [
        # gate does not exist
        StuckAtFault("stale1", "g", net=gate.pins[pin], value=0,
                     branch=("no_such_gate", pin)),
        # pin exists but is connected to a different net than the fault's
        StuckAtFault("stale2", "g", net=other_net, value=1,
                     branch=(gname, pin)),
        TransitionFault("stale3", "g", net=other_net, slow_to=RISE,
                        branch=(gname, pin)),
    ]
    words = _check(circuit, cells, faults, seed=5)
    assert words == [0, 0, 0]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_all_models_mixed_matches_reference(cells, library, seed):
    """One batch, every fault model at once — serial and parallel."""
    circuit = random_mapped_circuit(cells, n_gates=50, seed=seed + 40)
    faults = mixed_fault_list(circuit, library=library, seed=seed)
    words = _check(circuit, cells, faults, seed=seed)
    parallel = _check(circuit, cells, faults, seed=seed, workers=3)
    assert parallel == words
    assert any(words)
