"""Tests for the Section II clustering machinery."""

from __future__ import annotations

import pytest

from repro.core import ClusterReport, are_adjacent, cluster_undetectable
from repro.faults import CellAwareFault, StuckAtFault
from repro.netlist import Circuit


@pytest.fixture()
def chain5(library):
    """g1 -> g2 -> g3 -> g4 -> g5 inverter chain."""
    c = Circuit("chain5")
    c.add_input("a")
    prev = "a"
    for i in range(1, 6):
        c.add_gate(f"g{i}", "INVX1", {"A": prev}, f"w{i}")
        prev = f"w{i}"
    c.set_outputs([prev])
    return c


def _internal(gate, library, idx=0):
    defect = library["INVX1"].internal_defects()[idx]
    return CellAwareFault(
        f"ca:{gate}:{defect.defect_id}", defect.guideline,
        gate=gate, defect=defect,
    )


class TestAdjacency:
    def test_same_gate_adjacent(self, chain5, library):
        fa = _internal("g2", library)
        fb = StuckAtFault("sa0:w2", "VIA-01", net="w2", value=0)
        assert are_adjacent(fa, fb, chain5)

    def test_driver_load_adjacent(self, chain5, library):
        fa = _internal("g1", library)
        fb = _internal("g2", library)
        assert are_adjacent(fa, fb, chain5)

    def test_distance_two_not_adjacent(self, chain5, library):
        fa = _internal("g1", library)
        fb = _internal("g3", library)
        assert not are_adjacent(fa, fb, chain5)

    def test_fig1_only_direct_drive_counts(self, cells):
        """Fig. 1 of the paper: g1 and g2 are adjacent only when one
        directly drives the other — sharing a fanin does not count."""
        c = Circuit("fig1")
        c.add_input("x")
        c.add_input("y")
        # (a)-style: g1 and g2 share the input x but neither drives the
        # other.
        c.add_gate("g1", "INVX1", {"A": "x"}, "p")
        c.add_gate("g2", "NAND2X1", {"A": "x", "B": "y"}, "q")
        # (c)-style: g3 is directly driven by g1.
        c.add_gate("g3", "INVX1", {"A": "p"}, "r")
        c.set_outputs(["q", "r"])
        f1 = StuckAtFault("f1", "VIA-01", net="p", value=0,
                          branch=("g3", "A"))
        f_g1 = StuckAtFault("fg1", "VIA-01", net="x", value=0,
                            branch=("g1", "A"))
        f_g2 = StuckAtFault("fg2", "VIA-01", net="y", value=0,
                            branch=("g2", "A"))
        assert not are_adjacent(f_g1, f_g2, c)  # share fanin only
        assert are_adjacent(f_g1, f1, c)  # g1 drives g3


class TestClusterPartition:
    def test_chain_forms_one_cluster(self, chain5, library):
        faults = [_internal(f"g{i}", library) for i in (1, 2, 3)]
        report = cluster_undetectable(chain5, faults)
        assert len(report.clusters) == 1
        assert report.smax == sorted(faults, key=lambda f: f.fault_id)

    def test_gap_splits_clusters(self, chain5, library):
        faults = [_internal(f"g{i}", library) for i in (1, 2, 4)]
        report = cluster_undetectable(chain5, faults)
        assert sorted(len(c) for c in report.clusters) == [1, 2]

    def test_stem_fault_bridges_gates(self, chain5, library):
        # g1 and g3 are not adjacent, but a stem fault on w2 corresponds
        # to both g2 (driver) and g3 (load), gluing everything together.
        faults = [
            _internal("g1", library),
            StuckAtFault("sa0:w2", "VIA-01", net="w2", value=0),
            _internal("g3", library),
        ]
        report = cluster_undetectable(chain5, faults)
        assert len(report.clusters) == 1

    def test_gmax_is_union_of_smax_gates(self, chain5, library):
        faults = [_internal(f"g{i}", library) for i in (1, 2)]
        faults.append(_internal("g5", library))
        report = cluster_undetectable(chain5, faults)
        assert report.gmax == {"g1", "g2"}
        assert report.gates_u == {"g1", "g2", "g5"}

    def test_empty_fault_list(self, chain5):
        report = cluster_undetectable(chain5, [])
        assert report.clusters == []
        assert report.smax == []
        assert report.gmax == set()
        assert report.n_undetectable == 0

    def test_sizes_sorted_desc(self, chain5, library):
        faults = [_internal(f"g{i}", library) for i in (1, 2, 4)]
        report = cluster_undetectable(chain5, faults)
        assert report.sizes() == sorted(report.sizes(), reverse=True)

    def test_smax_internal_subset(self, chain5, library):
        faults = [
            _internal("g1", library),
            StuckAtFault("sa0:w1", "VIA-01", net="w1", value=0),
        ]
        report = cluster_undetectable(chain5, faults)
        internal = report.smax_internal()
        assert all(f.origin == "internal" for f in internal)
        assert len(internal) == 1

    def test_incremental_empty_undetectable_set(self, chain5, library):
        """Regression: the incremental update with an empty U must return
        an empty partition (and skip the dirty-zone walk) regardless of
        what the previous report held — e.g. after a resynthesis step
        whose new state detected or aborted every previously
        undetectable fault."""
        from repro.core import cluster_undetectable_incremental

        faults = [_internal(f"g{i}", library) for i in (1, 2, 4)]
        prev = cluster_undetectable(chain5, faults)
        assert prev.clusters  # the previous state had clusters to drop
        report = cluster_undetectable_incremental(
            chain5.clone(), [], chain5, prev,
        )
        assert report.clusters == []
        assert report.fault_gates == {}
        assert report.smax == []
        assert report.gmax == set()
        # Matches the from-scratch result exactly.
        scratch = cluster_undetectable(chain5, [])
        assert report.clusters == scratch.clusters

    def test_deterministic_order(self, chain5, library):
        faults = [_internal(f"g{i}", library) for i in (1, 2, 4, 5)]
        r1 = cluster_undetectable(chain5, faults)
        r2 = cluster_undetectable(chain5, list(reversed(faults)))
        assert [
            [f.fault_id for f in c] for c in r1.clusters
        ] == [
            [f.fault_id for f in c] for c in r2.clusters
        ]
