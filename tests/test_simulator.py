"""Tests for the bit-parallel logic simulator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import CONST0, CONST1, Circuit, simulate, simulate_patterns
from repro.netlist.simulator import compile_cell_eval


class TestCompileCellEval:
    def test_inverter(self):
        fn = compile_cell_eval(1, 0b01)
        assert fn(0b1010, 0b1111) == 0b0101

    def test_nand2(self):
        fn = compile_cell_eval(2, 0b0111)
        a, b, mask = 0b1100, 0b1010, 0b1111
        assert fn(a, b, mask) == (~(a & b)) & mask

    def test_constant_cells(self):
        assert compile_cell_eval(0, 0b1)(0b111) == 0b111
        assert compile_cell_eval(0, 0b0)(0b111) == 0

    def test_out_of_range_tt_raises(self):
        with pytest.raises(ValueError):
            compile_cell_eval(1, 0b10000)

    @given(st.integers(1, 4), st.data())
    @settings(max_examples=60)
    def test_matches_truth_table(self, n, data):
        tt = data.draw(st.integers(0, (1 << (1 << n)) - 1))
        fn = compile_cell_eval(n, tt)
        # Evaluate all minterms at once: input i gets its standard pattern.
        size = 1 << n
        mask = (1 << size) - 1
        ins = []
        for i in range(n):
            word = 0
            for m in range(size):
                if (m >> i) & 1:
                    word |= 1 << m
            ins.append(word)
        assert fn(*ins, mask) == tt


class TestSimulate:
    def test_adder_matches_arithmetic(self, adder4, cells):
        rng = random.Random(1)
        for _ in range(40):
            a, b = rng.randrange(16), rng.randrange(16)
            pat = {}
            for i in range(4):
                pat[f"a{i}"] = (a >> i) & 1
                pat[f"b{i}"] = (b >> i) & 1
            (res,) = simulate_patterns(adder4, cells, [pat])
            got = sum(res[f"s{i}"] << i for i in range(4))
            got += res["cout"] << 4
            assert got == a + b

    def test_constants_available(self, cells):
        c = Circuit("k")
        c.add_input("a")
        c.add_gate("g", "AND2X1", {"A": "a", "B": CONST1}, "y")
        c.add_gate("h", "OR2X1", {"A": "a", "B": CONST0}, "z")
        c.set_outputs(["y", "z"])
        vals = simulate(c, cells, {"a": 0b10}, 0b11)
        assert vals["y"] == 0b10
        assert vals["z"] == 0b10

    def test_missing_pi_raises(self, tiny_circuit, cells):
        from repro.netlist import NetlistError

        with pytest.raises(NetlistError):
            simulate(tiny_circuit, cells, {"a": 1}, 1)

    def test_parallel_equals_scalar(self, adder4, cells):
        rng = random.Random(7)
        pats = [
            {pi: rng.getrandbits(1) for pi in adder4.inputs}
            for _ in range(63)
        ]
        batch = simulate_patterns(adder4, cells, pats)
        for pat, res in zip(pats, batch):
            (single,) = simulate_patterns(adder4, cells, [pat])
            for po in adder4.outputs:
                assert single[po] == res[po]

    def test_empty_pattern_list(self, adder4, cells):
        assert simulate_patterns(adder4, cells, []) == []


class TestGoodCacheThreadSafety:
    """The per-plan good-value LRU is shared by speculation threads."""

    def test_concurrent_good_values(self, adder4, cells):
        import threading

        from repro.netlist.simulator import CompiledCircuit

        plan = CompiledCircuit.get(adder4, cells)
        rng = random.Random(11)
        mask = (1 << 32) - 1
        # More distinct keys than the cache holds, so the threads race
        # lookups, inserts, recency updates, and evictions against each
        # other.
        n_keys = plan.GOOD_CACHE_SIZE * 2
        frames_by_key = {
            ("k", i): [
                {pi: rng.getrandbits(32) for pi in adder4.inputs}
                for _ in range(2)
            ]
            for i in range(n_keys)
        }
        expected = {
            key: tuple(plan.simulate_values(f, mask) for f in frames)
            for key, frames in frames_by_key.items()
        }
        plan.good_cache.clear()
        errors = []

        def hammer(seed):
            local = random.Random(seed)
            keys = list(frames_by_key)
            for _ in range(200):
                key = keys[local.randrange(n_keys)]
                try:
                    got = plan.good_values(key, frames_by_key[key], mask)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                if got != expected[key]:
                    errors.append((key, got))
                    return

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(plan.good_cache) <= plan.GOOD_CACHE_SIZE
        # Cached entries still hold correct vectors after the storm.
        for key, cached in plan.good_cache.items():
            assert cached == expected[key]
