"""Tests for the bit-parallel logic simulator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import CONST0, CONST1, Circuit, simulate, simulate_patterns
from repro.netlist.simulator import compile_cell_eval


class TestCompileCellEval:
    def test_inverter(self):
        fn = compile_cell_eval(1, 0b01)
        assert fn(0b1010, 0b1111) == 0b0101

    def test_nand2(self):
        fn = compile_cell_eval(2, 0b0111)
        a, b, mask = 0b1100, 0b1010, 0b1111
        assert fn(a, b, mask) == (~(a & b)) & mask

    def test_constant_cells(self):
        assert compile_cell_eval(0, 0b1)(0b111) == 0b111
        assert compile_cell_eval(0, 0b0)(0b111) == 0

    def test_out_of_range_tt_raises(self):
        with pytest.raises(ValueError):
            compile_cell_eval(1, 0b10000)

    @given(st.integers(1, 4), st.data())
    @settings(max_examples=60)
    def test_matches_truth_table(self, n, data):
        tt = data.draw(st.integers(0, (1 << (1 << n)) - 1))
        fn = compile_cell_eval(n, tt)
        # Evaluate all minterms at once: input i gets its standard pattern.
        size = 1 << n
        mask = (1 << size) - 1
        ins = []
        for i in range(n):
            word = 0
            for m in range(size):
                if (m >> i) & 1:
                    word |= 1 << m
            ins.append(word)
        assert fn(*ins, mask) == tt


class TestSimulate:
    def test_adder_matches_arithmetic(self, adder4, cells):
        rng = random.Random(1)
        for _ in range(40):
            a, b = rng.randrange(16), rng.randrange(16)
            pat = {}
            for i in range(4):
                pat[f"a{i}"] = (a >> i) & 1
                pat[f"b{i}"] = (b >> i) & 1
            (res,) = simulate_patterns(adder4, cells, [pat])
            got = sum(res[f"s{i}"] << i for i in range(4))
            got += res["cout"] << 4
            assert got == a + b

    def test_constants_available(self, cells):
        c = Circuit("k")
        c.add_input("a")
        c.add_gate("g", "AND2X1", {"A": "a", "B": CONST1}, "y")
        c.add_gate("h", "OR2X1", {"A": "a", "B": CONST0}, "z")
        c.set_outputs(["y", "z"])
        vals = simulate(c, cells, {"a": 0b10}, 0b11)
        assert vals["y"] == 0b10
        assert vals["z"] == 0b10

    def test_missing_pi_raises(self, tiny_circuit, cells):
        from repro.netlist import NetlistError

        with pytest.raises(NetlistError):
            simulate(tiny_circuit, cells, {"a": 1}, 1)

    def test_parallel_equals_scalar(self, adder4, cells):
        rng = random.Random(7)
        pats = [
            {pi: rng.getrandbits(1) for pi in adder4.inputs}
            for _ in range(63)
        ]
        batch = simulate_patterns(adder4, cells, pats)
        for pat, res in zip(pats, batch):
            (single,) = simulate_patterns(adder4, cells, [pat])
            for po in adder4.outputs:
                assert single[po] == res[po]

    def test_empty_pattern_list(self, adder4, cells):
        assert simulate_patterns(adder4, cells, []) == []
