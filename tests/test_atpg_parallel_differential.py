"""Differential tests: site-sharded parallel SAT phase vs the serial scan.

The parallel deterministic phase (:mod:`repro.atpg.patpg`) must leave
the verdict partition untouched: exact SAT decisions are schedule-
independent, so DETECTED / UNDETECTABLE / ABORTED from a process run is
bit-identical to the serial scan for unbudgeted runs on every bundled
benchmark circuit, and the UNDETECTABLE set stays identical under a
budget generous enough for every UNSAT proof to complete.  Under a
*tight* budget only the conservative containments are guaranteed (the
abort schedule is legitimately different across shards) — those are
asserted separately.  The suite also locks the ``REPRO_ATPG_EXEC``
environment dispatch, the flow-level undetectable counts through
``analyze_design``, and the chaos-injected SAT-worker-death fallback
(``MC-FALLBACK-ATPG`` + unchanged verdicts).

Every ATPG run here uses ``random_rounds=0`` so all representatives
reach the deterministic phase — otherwise the random phase drops most
faults and the parallel path (which needs a minimum number of SAT
candidates) would never engage on these small benchmarks.

The worker count is environment-overridable like the PR 6 suite: the CI
multicore leg re-runs this file with ``REPRO_SIM_WORKERS=2`` and ``=4``.
"""

from __future__ import annotations

import os

import pytest

from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import run_atpg
from repro.atpg.patpg import CODE_FALLBACK_ATPG, MIN_PARALLEL_SAT_FAULTS
from repro.bench.circuits import BENCHMARKS, build_benchmark
from repro.core.flow import analyze_design
from repro.testing.chaos import ChaosConfig, chaos
from repro.utils.observability import EngineStats
from tests.conftest import mixed_fault_list

WORKERS = int(os.environ.get("REPRO_SIM_WORKERS", "0")) or 3

_BENCH_CACHE = {}


def _bench(name, library):
    circuit = _BENCH_CACHE.get(name)
    if circuit is None:
        circuit = build_benchmark(name, library)
        _BENCH_CACHE[name] = circuit
    return circuit


def _fell_back(stats: EngineStats) -> bool:
    return any(CODE_FALLBACK_ATPG in w for w in stats.warnings)


def _run(circuit, cells, faults, seed, exec_mode, workers=1, budget=None):
    return run_atpg(
        circuit, cells, faults, seed=seed, random_rounds=0,
        exec_mode=exec_mode, workers=workers, budget=budget,
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_partition_identity_on_benchmarks(cells, library, name, seed):
    """Unbudgeted: bit-identical verdict partition on every benchmark."""
    circuit = _bench(name, library)
    faults = mixed_fault_list(circuit, library, seed=seed, per_kind=6)
    serial = _run(circuit, cells, faults, seed, "serial")
    proc = _run(circuit, cells, faults, seed, "process", workers=WORKERS)
    assert proc.detected == serial.detected
    assert proc.undetectable == serial.undetectable
    assert proc.aborted == serial.aborted == set()
    assert proc.approximate is serial.approximate is False
    assert proc.coverage == serial.coverage
    assert serial.stats.sat_shards == 0
    if proc.stats.sat_shards:  # the parallel phase actually ran here
        assert proc.stats.sat_workers == WORKERS
    else:  # fell back (e.g. no shared memory): it must have said so
        assert _fell_back(proc.stats)


def test_generous_budget_identical_undetectable(cells, library):
    """Every UNSAT proof completes ⇒ identical UNDETECTABLE either way."""
    circuit = _bench("sparc_exu", library)
    faults = mixed_fault_list(circuit, library, seed=0, per_kind=6)
    budget = AtpgBudget(conflict_budget=200_000)
    serial = _run(circuit, cells, faults, 0, "serial", budget=budget)
    proc = _run(
        circuit, cells, faults, 0, "process", workers=WORKERS, budget=budget
    )
    assert proc.undetectable == serial.undetectable
    assert proc.detected == serial.detected
    assert proc.aborted == serial.aborted == set()


def test_tight_budget_stays_conservative(cells, library):
    """Aborts may differ across shards, but never corrupt a verdict.

    Against the unbudgeted (exact) serial run: everything the budgeted
    parallel run *proves* must agree with the exact answer, and aborted
    faults are never counted undetectable.
    """
    circuit = _bench("sparc_ffu", library)
    faults = mixed_fault_list(circuit, library, seed=1, per_kind=6)
    exact = _run(circuit, cells, faults, 1, "serial")
    budget = AtpgBudget(conflict_budget=1, decision_budget=4)
    proc = _run(
        circuit, cells, faults, 1, "process", workers=WORKERS, budget=budget
    )
    assert proc.undetectable <= exact.undetectable
    assert proc.detected <= exact.detected
    assert not (proc.aborted & proc.undetectable)
    assert not (proc.aborted & proc.detected)
    assert (
        len(proc.detected) + len(proc.undetectable) + len(proc.aborted)
        == proc.n_faults
    )


@pytest.mark.parametrize("name", ["sparc_tlu", "wb_conmax"])
def test_analyze_design_undetectable_counts(library, name):
    """Flow-level U is execution-mode-independent."""
    serial_state = analyze_design(
        _bench(name, library), library, exec_mode="serial",
    )
    proc_state = analyze_design(
        build_benchmark(name, library), library,
        workers=WORKERS, exec_mode="process",
    )
    assert (
        len(proc_state.atpg.undetectable)
        == len(serial_state.atpg.undetectable)
    )
    assert proc_state.atpg.detected == serial_state.atpg.detected
    assert proc_state.atpg.undetectable == serial_state.atpg.undetectable


def test_env_dispatch_atpg_exec(cells, library, monkeypatch):
    """REPRO_ATPG_EXEC reroutes the SAT phase without call-site changes."""
    circuit = _bench("sparc_lsu", library)
    faults = mixed_fault_list(circuit, library, seed=0, per_kind=6)
    assert len(faults) >= MIN_PARALLEL_SAT_FAULTS
    baseline = _run(circuit, cells, faults, 0, "serial")

    monkeypatch.setenv("REPRO_ATPG_EXEC", "process")
    monkeypatch.setenv("REPRO_SIM_WORKERS", str(WORKERS))
    rerouted = run_atpg(circuit, cells, faults, seed=0, random_rounds=0)
    assert rerouted.detected == baseline.detected
    assert rerouted.undetectable == baseline.undetectable
    assert rerouted.stats.sat_shards > 0 or _fell_back(rerouted.stats)

    monkeypatch.setenv("REPRO_ATPG_EXEC", "sideways")
    with pytest.raises(ValueError):
        run_atpg(circuit, cells, faults, seed=0, random_rounds=0)


def test_atpg_exec_overrides_sim_exec(cells, library, monkeypatch):
    """REPRO_ATPG_EXEC=serial pins the SAT phase even when simulation
    batches run in process mode via REPRO_SIM_EXEC."""
    circuit = _bench("sparc_lsu", library)
    faults = mixed_fault_list(circuit, library, seed=0, per_kind=6)
    monkeypatch.setenv("REPRO_SIM_EXEC", "process")
    monkeypatch.setenv("REPRO_ATPG_EXEC", "serial")
    monkeypatch.setenv("REPRO_SIM_WORKERS", str(WORKERS))
    result = run_atpg(circuit, cells, faults, seed=0, random_rounds=0)
    assert result.stats.sat_shards == 0
    assert not _fell_back(result.stats)


def test_sat_exec_defaults_to_sim_exec(cells, library, monkeypatch):
    """With only REPRO_SIM_EXEC=process set, the SAT phase shards too."""
    circuit = _bench("sparc_lsu", library)
    faults = mixed_fault_list(circuit, library, seed=0, per_kind=6)
    monkeypatch.delenv("REPRO_ATPG_EXEC", raising=False)
    monkeypatch.setenv("REPRO_SIM_EXEC", "process")
    monkeypatch.setenv("REPRO_SIM_WORKERS", str(WORKERS))
    result = run_atpg(circuit, cells, faults, seed=0, random_rounds=0)
    assert result.stats.sat_shards > 0 or result.stats.warnings


def test_effort_counters_surface(cells, library):
    """sat_learned/restarts/lemmas land on stats in both execution modes."""
    circuit = _bench("sparc_tlu", library)
    faults = mixed_fault_list(circuit, library, seed=2, per_kind=6)
    serial = _run(circuit, cells, faults, 2, "serial")
    assert serial.stats.sat_learned > 0
    assert serial.stats.sat_lemmas_reused > 0
    proc = _run(circuit, cells, faults, 2, "process", workers=WORKERS)
    if proc.stats.sat_shards:
        assert proc.stats.sat_learned > 0
        assert proc.stats.sat_lemmas_reused >= 0
        assert proc.stats.sat_calls == proc.sat_calls


def test_chaos_kill_atpg_shard_falls_back_serially(cells, library):
    """A SAT worker SIGKILLed mid-shard ⇒ coded fallback, verdicts intact.

    The circuit is built fresh (not from the module cache) so the worker
    pool forks *after* the chaos handler installs and inherits it.
    """
    circuit = build_benchmark("sparc_tlu", library)
    faults = mixed_fault_list(circuit, library, seed=0, per_kind=6)
    serial = _run(circuit, cells, faults, 0, "serial")
    with chaos(ChaosConfig(kill_atpg_shard=1)):
        proc = _run(circuit, cells, faults, 0, "process", workers=WORKERS)
    assert _fell_back(proc.stats), proc.stats.warnings
    assert proc.detected == serial.detected
    assert proc.undetectable == serial.undetectable
    assert proc.aborted == serial.aborted == set()
