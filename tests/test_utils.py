"""Unit tests for repro.utils (union-find, rng, tables)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.utils import UnionFind, format_table, make_rng


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert not uf.connected("a", "b")
        assert uf.set_size("a") == 1

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.set_size("a") == 2

    def test_lazy_add_on_find(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)

    def test_groups_sorted_largest_first(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        groups = uf.groups()
        assert sorted(len(g) for g in groups) == [1, 2, 3]
        assert len(groups[0]) == 3

    def test_union_returns_root(self):
        uf = UnionFind()
        root = uf.union("a", "b")
        assert root in ("a", "b")
        assert uf.find("a") == root

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert uf.set_size("b") == 2

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30))))
    def test_matches_naive_partition(self, pairs):
        uf = UnionFind(range(31))
        naive = {i: {i} for i in range(31)}
        for a, b in pairs:
            uf.union(a, b)
            merged = naive[a] | naive[b]
            for item in merged:
                naive[item] = merged
        for a in range(31):
            for b in range(0, 31, 7):
                assert uf.connected(a, b) == (b in naive[a])


class TestRng:
    def test_deterministic_int_seed(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_deterministic_str_seed(self):
        assert make_rng("hello").random() == make_rng("hello").random()

    def test_different_seeds_differ(self):
        assert make_rng("a").random() != make_rng("b").random()

    def test_independent_streams(self):
        a = make_rng(1)
        b = make_rng(1)
        a.random()  # advancing one stream must not affect the other
        assert b.random() == make_rng(1).random()


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["x", "yy"], [[1, 2], [10, 20]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("yy")

    def test_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.14" in out
        assert "3.1416" not in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
