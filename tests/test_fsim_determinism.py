"""Determinism guarantees of the parallel engine.

The worker count is a throughput knob, never a semantics knob: detect
words, ATPG classification, generated tests, and coverage must be
byte-identical between ``workers=1`` and ``workers=4`` for a fixed seed.
Also pins the 64-pattern word-boundary behaviour of
``detected_by_patterns``.
"""

from __future__ import annotations

import random

import pytest

from repro.atpg.engine import run_atpg
from repro.faults.fsim import PatternBatch, detected_by_patterns, fault_simulate
from repro.faults.reference import reference_detect_words
from repro.faults.sites import enumerate_internal_faults
from repro.utils.observability import EngineStats
from tests.conftest import mixed_fault_list, random_mapped_circuit


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fault_simulate_workers_bit_identical(cells, library, seed):
    circuit = random_mapped_circuit(cells, seed=seed + 50)
    faults = mixed_fault_list(circuit, library=library, seed=seed)
    batch = PatternBatch.random(circuit, 48, seed=seed)
    serial = fault_simulate(circuit, cells, faults, batch, workers=1)
    stats = EngineStats()
    parallel = fault_simulate(
        circuit, cells, faults, batch, workers=4, stats=stats)
    assert parallel == serial
    assert stats.parallel_chunks > 1  # the parallel path actually ran
    assert any(serial)


def test_parallel_events_match_serial(cells, library):
    """Worker views merge their event counts back losslessly."""
    circuit = random_mapped_circuit(cells, seed=60)
    faults = mixed_fault_list(circuit, library=library, seed=6)
    batch = PatternBatch.random(circuit, 32, seed=6)
    s1, s4 = EngineStats(), EngineStats()
    fault_simulate(circuit, cells, faults, batch, workers=1, stats=s1)
    fault_simulate(circuit, cells, faults, batch, workers=4, stats=s4)
    assert s4.events_propagated == s1.events_propagated
    assert s4.faults_simulated == s1.faults_simulated == len(faults)


@pytest.mark.parametrize("n_pairs", [63, 64, 65])
def test_detected_by_patterns_word_boundary(cells, library, n_pairs):
    """Pair counts straddling the 64-bit packing boundary stay exact."""
    circuit = random_mapped_circuit(cells, n_gates=40, seed=70)
    faults = mixed_fault_list(circuit, library=library, seed=7, per_kind=5)
    rng = random.Random(n_pairs)
    pairs = [
        (
            {pi: rng.randint(0, 1) for pi in circuit.inputs},
            {pi: rng.randint(0, 1) for pi in circuit.inputs},
        )
        for _ in range(n_pairs)
    ]
    flags = detected_by_patterns(circuit, cells, faults, pairs)
    parallel = detected_by_patterns(
        circuit, cells, faults, pairs, workers=4)
    words = reference_detect_words(circuit, cells, faults, pairs)
    assert flags == parallel == [w != 0 for w in words]
    assert any(flags) and not all(flags)


def test_run_atpg_workers_byte_identical(adder4, cells, library):
    """Full ATPG: tests, classification, coverage identical across workers."""
    faults = enumerate_internal_faults(adder4, library)
    faults += mixed_fault_list(adder4, seed=8, per_kind=4)
    serial = run_atpg(adder4, cells, faults, seed=3, workers=1)
    parallel = run_atpg(adder4, cells, faults, seed=3, workers=4)
    assert parallel.tests == serial.tests
    assert parallel.detected == serial.detected
    assert parallel.undetectable == serial.undetectable
    assert parallel.coverage == serial.coverage
    assert parallel.sat_calls == serial.sat_calls
    assert serial.detected  # non-degenerate run


def test_all_stats_counters_identical_serial_vs_parallel(cells, library):
    """Worker count must not change any effort counter.

    Per-chunk counters are accumulated in worker-local views and merged
    once at join, so workers=4 reports exactly the counters workers=1
    does.  Excluded by design: ``parallel_chunks`` (counts the chunks
    themselves) and the eval-cache temperature split (the compiled-eval
    lru_cache is process-wide, so hits vs. misses depend on what ran
    earlier — their *sum* must still match), plus wall-clock phases.
    """
    def run(workers):
        # Fresh circuit object per run: both runs start with a cold
        # compiled plan and a cold good-value cache.
        circuit = random_mapped_circuit(cells, seed=55)
        faults = mixed_fault_list(circuit, library=library, seed=5)
        batch = PatternBatch.random(circuit, 48, seed=5)
        stats = EngineStats()
        out = fault_simulate(
            circuit, cells, faults, batch, workers=workers, stats=stats)
        return out, stats.as_dict()

    out1, serial = run(1)
    out4, parallel = run(4)
    assert out4 == out1
    assert parallel["parallel_chunks"] > 1
    volatile = {
        "parallel_chunks", "phase_seconds",
        "eval_cache_hits", "eval_cache_misses",
    }
    assert (
        serial["eval_cache_hits"] + serial["eval_cache_misses"]
        == parallel["eval_cache_hits"] + parallel["eval_cache_misses"]
    )
    for key in serial:
        if key in volatile:
            continue
        assert parallel[key] == serial[key], key
