"""Cross-checks of the incremental ATPG engine against the standalone
encoder and against exhaustive search — both must agree exactly."""

from __future__ import annotations

import pytest

from repro.atpg import DetectionEncoder
from repro.atpg.incremental import IncrementalAtpg
from repro.faults import (
    BridgingFault,
    StuckAtFault,
    TransitionFault,
    detected_by_patterns,
    enumerate_internal_faults,
    collapse_faults,
)
from repro.faults.model import FALL, RISE


def _external_faults(circuit):
    faults = []
    nets = sorted(circuit.internal_nets()) + list(circuit.inputs)
    for net in nets:
        for value in (0, 1):
            faults.append(StuckAtFault(
                f"sa{value}:{net}", "VIA-01", net=net, value=value
            ))
        for slow_to in (RISE, FALL):
            faults.append(TransitionFault(
                f"tr:{net}:{slow_to}", "VIA-01", net=net, slow_to=slow_to
            ))
        # Branch variants for every load of the net.
        for gname, pin in sorted(circuit.loads(net)):
            faults.append(StuckAtFault(
                f"sa0:{net}:{gname}.{pin}", "VIA-01",
                net=net, value=0, branch=(gname, pin),
            ))
    inner = sorted(circuit.internal_nets())
    for a, b in zip(inner, inner[1:]):
        faults.append(BridgingFault(
            f"br:{a}<{b}", "MET-01", victim=a, aggressor=b
        ))
    return faults


@pytest.mark.parametrize("fixture_name", ["adder4", "tiny_circuit"])
def test_incremental_matches_standalone(fixture_name, request, cells, library):
    circuit = request.getfixturevalue(fixture_name)
    faults = _external_faults(circuit)
    faults.extend(
        collapse_faults(enumerate_internal_faults(circuit, library))
    )
    standalone = DetectionEncoder(circuit, cells)
    incremental = IncrementalAtpg(circuit, cells)
    faults.sort(key=lambda f: (incremental._site_net(f) or "", f.fault_id))
    for fault in faults:
        want = standalone.encode(fault).solve()
        got, pair = incremental.decide(fault)
        assert got == want, fault.fault_id
        if got:
            assert detected_by_patterns(
                circuit, cells, [fault], [pair]
            ) == [True], fault.fault_id


def test_interleaved_sites_still_exact(adder4, cells, library):
    """Out-of-site-order processing re-encodes cones but stays exact."""
    faults = _external_faults(adder4)[:40]
    standalone = DetectionEncoder(adder4, cells)
    incremental = IncrementalAtpg(adder4, cells)
    # Deliberately NOT grouped by site.
    for fault in faults:
        want = standalone.encode(fault).solve()
        got, _pair = incremental.decide(fault)
        assert got == want, fault.fault_id


def test_redundant_checker_region(cells, library):
    """A guard structure like the benchmarks': the incremental engine
    must prove the fallback cone undetectable."""
    from repro.bench.builder import NetBuilder

    nb = NetBuilder("guarded")
    a = nb.inputs("a", 6)
    b = nb.inputs("b", 6)
    total, carries = nb.adder_with_carries(a, b)
    err = nb.adder_parity_check(a, b, total, carries)
    guarded = nb.guard_word(err, total)
    nb.outputs(guarded, "y")
    circuit = nb.build()

    # err stuck-at-0 must be undetectable (err is constant 0).
    err_net = None
    for gate in circuit:
        if gate.cell == "MUX2X1":
            err_net = gate.pins["S"]
            break
    assert err_net is not None
    fault = StuckAtFault("sa0:err", "VIA-01", net=err_net, value=0)
    incremental = IncrementalAtpg(circuit, cells)
    got, _ = incremental.decide(fault)
    assert got is False
    # err stuck-at-1 forces the fallback everywhere: detectable.
    fault1 = StuckAtFault("sa1:err", "VIA-01", net=err_net, value=1)
    got1, pair = incremental.decide(fault1)
    assert got1 is True
    assert detected_by_patterns(circuit, cells, [fault1], [pair]) == [True]
