"""Three-valued ATPG verdicts under resource budgets.

The contracts locked in here:

* with the default unlimited budget, the governed engine is bit-identical
  to the ungoverned one (same verdicts, same tests, empty abort bucket);
* under any budget — or any injected abort pattern — the three buckets
  partition the fault set, the undetectable set is a subset of the clean
  run's (an abort never turns into an undetectability claim), and the
  abort shows up in the stats/degradation records instead of silently
  skewing U;
* exceeding the global abort tolerance flags the run approximate.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import AtpgBudget, run_atpg
from repro.atpg.budget import (
    ABORTED,
    DEFAULT_ABORT_FRACTION,
    DETECTED,
    UNDETECTABLE,
    verdict_name,
)
from repro.library import osu018_library
from repro.testing import ChaosConfig, chaos
from tests.conftest import mixed_fault_list, random_mapped_circuit


@lru_cache(maxsize=None)
def _scenario():
    """A dead-logic-rich circuit, its faults, and the clean ATPG run."""
    library = osu018_library()
    cells = {c.name: c for c in library}
    circuit = random_mapped_circuit(cells, n_pi=6, n_gates=24, n_po=6, seed=3)
    faults = tuple(mixed_fault_list(circuit, library, seed=3, per_kind=6))
    clean = run_atpg(circuit, cells, list(faults), seed=5, random_rounds=2)
    return circuit, cells, faults, clean


def _assert_partition(result, faults):
    all_ids = {f.fault_id for f in faults}
    assert result.detected | result.undetectable | result.aborted == all_ids
    assert not result.detected & result.undetectable
    assert not result.detected & result.aborted
    assert not result.undetectable & result.aborted


class TestBudget:
    def test_default_is_unlimited(self):
        budget = AtpgBudget()
        assert budget.unlimited
        assert budget.abort_fraction == DEFAULT_ABORT_FRACTION

    def test_from_env_unset_is_unlimited(self):
        assert AtpgBudget.from_env({}).unlimited

    def test_from_env_reads_all_knobs(self):
        budget = AtpgBudget.from_env({
            "REPRO_ATPG_DEADLINE_MS": "250",
            "REPRO_ATPG_CONFLICT_BUDGET": "1000",
            "REPRO_ATPG_DECISION_BUDGET": "5000",
            "REPRO_ATPG_ABORT_FRACTION": "0.25",
        })
        assert budget.deadline_ms == 250.0
        assert budget.conflict_budget == 1000
        assert budget.decision_budget == 5000
        assert budget.abort_fraction == 0.25
        assert not budget.unlimited

    def test_verdict_names(self):
        assert verdict_name(True) == DETECTED
        assert verdict_name(False) == UNDETECTABLE
        assert verdict_name(None) == ABORTED


class TestUnlimitedIdentity:
    def test_huge_budget_bit_identical_to_unlimited(self):
        """Acceptance: with budgets effectively disabled, nothing changes."""
        circuit, cells, faults, clean = _scenario()
        roomy = AtpgBudget(
            deadline_ms=1e9, conflict_budget=10**9, decision_budget=10**9,
        )
        governed = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
            budget=roomy,
        )
        assert governed.detected == clean.detected
        assert governed.undetectable == clean.undetectable
        assert governed.aborted == set() == clean.aborted
        assert governed.tests == clean.tests
        assert not governed.approximate
        assert governed.stats.sat_aborts == 0
        assert governed.stats.degradations == []

    def test_clean_run_has_no_abort_artifacts(self):
        _circuit, _cells, faults, clean = _scenario()
        _assert_partition(clean, faults)
        assert clean.aborted == set()
        assert clean.coverage == clean.coverage_lower_bound


class TestBudgetedRun:
    def test_zero_decision_budget_aborts_conservatively(self):
        circuit, cells, faults, clean = _scenario()
        starved = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
            budget=AtpgBudget(decision_budget=0),
        )
        _assert_partition(starved, faults)
        # Aborts are never laundered into undetectability proofs.
        assert starved.undetectable <= clean.undetectable
        assert starved.coverage_lower_bound <= starved.coverage
        if starved.aborted:
            assert starved.stats.sat_aborts > 0
            assert starved.stats.verdicts_aborted > 0
            assert starved.stats.degradations, (
                "aborts must leave an explicit degradation record"
            )
            assert starved.approximate == (
                len(starved.aborted)
                > DEFAULT_ABORT_FRACTION * starved.n_faults
            )

    def test_approximate_flag_tracks_tolerance(self):
        circuit, cells, faults, _clean = _scenario()
        strict = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
            budget=AtpgBudget(decision_budget=0, abort_fraction=0.0),
        )
        lax = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
            budget=AtpgBudget(decision_budget=0, abort_fraction=1.0),
        )
        # Same aborts either way; only the tolerance flag differs.
        assert strict.aborted == lax.aborted
        if strict.aborted:
            assert strict.approximate
            assert not lax.approximate

    def test_budget_from_environment_is_honored(self, monkeypatch):
        circuit, cells, faults, _clean = _scenario()
        monkeypatch.setenv("REPRO_ATPG_DECISION_BUDGET", "0")
        via_env = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
        )
        monkeypatch.delenv("REPRO_ATPG_DECISION_BUDGET")
        explicit = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
            budget=AtpgBudget(decision_budget=0),
        )
        assert via_env.aborted == explicit.aborted
        assert via_env.undetectable == explicit.undetectable

    def test_verdict_of(self):
        circuit, cells, faults, _clean = _scenario()
        result = run_atpg(
            circuit, cells, list(faults), seed=5, random_rounds=2,
            budget=AtpgBudget(decision_budget=0),
        )
        for fault in faults:
            verdict = result.verdict_of(fault.fault_id)
            assert verdict in (DETECTED, UNDETECTABLE, ABORTED)
        assert result.verdict_of("no-such-fault") is None


class TestAbortPatternProperty:
    """Satellite: any injected abort pattern stays conservative."""

    @given(pattern=st.frozensets(
        st.integers(min_value=0, max_value=63), max_size=16,
    ))
    @settings(max_examples=15, deadline=None)
    def test_any_abort_pattern_is_conservative(self, pattern):
        circuit, cells, faults, clean = _scenario()
        with chaos(ChaosConfig(sat_abort_calls=pattern)) as injector:
            result = run_atpg(
                circuit, cells, list(faults), seed=5, random_rounds=2,
            )
        # detected + undetectable + aborted is always a partition of F.
        _assert_partition(result, faults)
        # |U| under aborts is a lower bound of the clean run's |U| —
        # element-wise, not just by count.
        assert result.undetectable <= clean.undetectable
        assert len(result.undetectable) <= len(clean.undetectable)
        # Every injected abort is accounted for: either upgraded to
        # detected by a later test or surfaced in the abort bucket.
        if injector.counters.aborts_injected == 0:
            assert result.aborted == set()
            assert result.undetectable == clean.undetectable
            assert result.detected == clean.detected
        if result.aborted:
            assert result.stats.degradations


@pytest.mark.parametrize("deadline_ms", [0.0])
def test_zero_deadline_still_partitions(deadline_ms):
    """An instantly-expired deadline must degrade, never crash or lie."""
    circuit, cells, faults, clean = _scenario()
    result = run_atpg(
        circuit, cells, list(faults), seed=5, random_rounds=2,
        budget=AtpgBudget(deadline_ms=deadline_ms),
    )
    _assert_partition(result, faults)
    assert result.undetectable <= clean.undetectable
