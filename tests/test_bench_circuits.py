"""Tests for the benchmark circuit generators."""

from __future__ import annotations

import random

import pytest

from repro.bench import BENCHMARKS, NetBuilder, build_benchmark
from repro.bench.circuits import DES_S1, DES_S2, PRESENT_SBOX
from repro.netlist import simulate_patterns


class TestBuilderPrimitives:
    def test_adder_semantics(self, cells):
        nb = NetBuilder("t")
        a = nb.inputs("a", 5)
        b = nb.inputs("b", 5)
        total, cout = nb.adder(a, b)
        nb.outputs(total, "s")
        nb.output(cout, "c")
        c = nb.build()
        rng = random.Random(0)
        for _ in range(30):
            x, y = rng.randrange(32), rng.randrange(32)
            pat = {f"a{i}": (x >> i) & 1 for i in range(5)}
            pat.update({f"b{i}": (y >> i) & 1 for i in range(5)})
            (res,) = simulate_patterns(c, cells, [pat])
            got = sum(res[f"s{i}"] << i for i in range(5)) + (res["c"] << 5)
            assert got == x + y

    def test_subtractor(self, cells):
        nb = NetBuilder("t")
        a = nb.inputs("a", 4)
        b = nb.inputs("b", 4)
        diff, _ = nb.subtractor(a, b)
        nb.outputs(diff, "d")
        c = nb.build()
        for x, y in [(9, 3), (3, 9), (15, 15), (0, 1)]:
            pat = {f"a{i}": (x >> i) & 1 for i in range(4)}
            pat.update({f"b{i}": (y >> i) & 1 for i in range(4)})
            (res,) = simulate_patterns(c, cells, [pat])
            got = sum(res[f"d{i}"] << i for i in range(4))
            assert got == (x - y) % 16

    def test_decoder_onehot(self, cells):
        nb = NetBuilder("t")
        sel = nb.inputs("s", 3)
        lines = nb.decoder(sel)
        nb.outputs(lines, "d")
        c = nb.build()
        for v in range(8):
            pat = {f"s{i}": (v >> i) & 1 for i in range(3)}
            (res,) = simulate_patterns(c, cells, [pat])
            assert [res[f"d{i}"] for i in range(8)] == [
                1 if i == v else 0 for i in range(8)
            ]

    def test_priority_encoder(self, cells):
        nb = NetBuilder("t")
        reqs = nb.inputs("r", 4)
        grants = nb.priority_encoder(reqs)
        nb.outputs(grants, "g")
        c = nb.build()
        for v in range(16):
            pat = {f"r{i}": (v >> i) & 1 for i in range(4)}
            (res,) = simulate_patterns(c, cells, [pat])
            got = [res[f"g{i}"] for i in range(4)]
            expect = [0, 0, 0, 0]
            for i in range(4):
                if (v >> i) & 1:
                    expect[i] = 1
                    break
            assert got == expect

    def test_lookup_matches_table(self, cells):
        nb = NetBuilder("t")
        addr = nb.inputs("a", 4)
        out = nb.lookup(addr, PRESENT_SBOX, 4)
        nb.outputs(out, "y")
        c = nb.build()
        for v in range(16):
            pat = {f"a{i}": (v >> i) & 1 for i in range(4)}
            (res,) = simulate_patterns(c, cells, [pat])
            got = sum(res[f"y{i}"] << i for i in range(4))
            assert got == PRESENT_SBOX[v]

    def test_lookup_size_mismatch(self):
        nb = NetBuilder("t")
        addr = nb.inputs("a", 3)
        with pytest.raises(ValueError):
            nb.lookup(addr, PRESENT_SBOX, 4)  # 16 entries for 3 bits

    def test_shifters(self, cells):
        nb = NetBuilder("t")
        w = nb.inputs("w", 8)
        amt = nb.inputs("k", 3)
        left = nb.shift_left(w, amt)
        right = nb.shift_right(w, amt)
        nb.outputs(left, "l")
        nb.outputs(right, "r")
        c = nb.build()
        rng = random.Random(2)
        for _ in range(25):
            x, k = rng.randrange(256), rng.randrange(8)
            pat = {f"w{i}": (x >> i) & 1 for i in range(8)}
            pat.update({f"k{i}": (k >> i) & 1 for i in range(3)})
            (res,) = simulate_patterns(c, cells, [pat])
            l = sum(res[f"l{i}"] << i for i in range(8))
            r = sum(res[f"r{i}"] << i for i in range(8))
            assert l == (x << k) & 0xFF
            assert r == x >> k

    def test_checker_signals_are_silent(self, cells):
        """Every checker err signal must be 0 in fault-free operation."""
        nb = NetBuilder("t")
        a = nb.inputs("a", 6)
        b = nb.inputs("b", 6)
        total, carries = nb.adder_with_carries(a, b)
        err = nb.adder_parity_check(a, b, total, carries)
        nb.output(err, "err")
        c = nb.build()
        rng = random.Random(3)
        pats = [
            {pi: rng.getrandbits(1) for pi in c.inputs} for _ in range(200)
        ]
        for res in simulate_patterns(c, cells, pats):
            assert res["err"] == 0

    def test_guard_word_transparent_when_quiet(self, cells):
        from repro.netlist.circuit import CONST0

        nb = NetBuilder("t")
        w = nb.inputs("w", 6)
        out = nb.guard_word(CONST0, w)
        nb.outputs(out, "y")
        c = nb.build()
        rng = random.Random(4)
        pats = [
            {pi: rng.getrandbits(1) for pi in c.inputs} for _ in range(50)
        ]
        for pat, res in zip(pats, simulate_patterns(c, cells, pats)):
            for i in range(6):
                assert res[f"y{i}"] == pat[f"w{i}"]


class TestDesTables:
    def test_des_sbox_known_values(self):
        # S1(000000) = 14, S1(111111): row=3, col=15 -> 13.
        assert DES_S1[0] == 14
        assert DES_S1[0b111111] == 13
        assert DES_S2[0] == 15

    def test_des_tables_are_permutation_rows(self):
        for table in (DES_S1, DES_S2):
            assert len(table) == 64
            assert all(0 <= v < 16 for v in table)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_builds_and_validates(self, name, library):
        raw = build_benchmark(name, library, optimize=False)
        raw.validate()
        assert len(raw) > 20
        assert raw.inputs and raw.outputs

    @pytest.mark.parametrize("name", ["sparc_tlu", "sparc_lsu", "wb_conmax"])
    def test_mapping_preserves_function(self, name, library, cells):
        raw = build_benchmark(name, library, optimize=False)
        mapped = build_benchmark(name, library)
        rng = random.Random(8)
        pats = [
            {pi: rng.getrandbits(1) for pi in raw.inputs}
            for _ in range(128)
        ]
        r0 = simulate_patterns(raw, cells, pats)
        r1 = simulate_patterns(mapped, cells, pats)
        for x, y in zip(r0, r1):
            for po in raw.outputs:
                assert x[po] == y[po]

    def test_scale_grows_circuit(self, library):
        s1 = build_benchmark("sparc_exu", library, scale=1, optimize=False)
        s2 = build_benchmark("sparc_exu", library, scale=2, optimize=False)
        assert len(s2) > len(s1) * 1.5

    def test_deterministic(self, library):
        a = build_benchmark("tv80", library)
        b = build_benchmark("tv80", library)
        from repro.netlist import write_netlist

        assert write_netlist(a) == write_netlist(b)

    def test_unknown_name_raises(self, library):
        with pytest.raises(KeyError):
            build_benchmark("nonesuch", library)
